package meta

import (
	"encoding/binary"
	"fmt"
	"math"

	"pressio/internal/core"
)

// Option keys the shape-transform meta-compressors own.
const (
	keyTransposeAxes = "transpose:axes"
	keyResizeDims    = "resize:dims"
	keySampleStride  = "sample:stride"
	keyQuantizerStep = "linear_quantizer:step"
)

func init() {
	core.RegisterCompressor("transpose", func() core.CompressorPlugin {
		return &transpose{child: newChild("transpose", "sz_threadsafe")}
	})
	core.RegisterCompressor("resize", func() core.CompressorPlugin {
		return &resize{child: newChild("resize", "zfp")}
	})
	core.RegisterCompressor("sample", func() core.CompressorPlugin {
		return &sample{child: newChild("sample", "sz_threadsafe"), stride: 2}
	})
	core.RegisterCompressor("delta_encoding", func() core.CompressorPlugin {
		return &deltaMeta{child: newChild("delta_encoding", "flate")}
	})
	core.RegisterCompressor("linear_quantizer", func() core.CompressorPlugin {
		return &linQuant{child: newChild("linear_quantizer", "shuffle"), step: 1e-4}
	})
}

// Transpose permutes the data of a tensor into C-order layout under the
// permuted dims. perm[i] gives the source axis for destination axis i.
func Transpose(d *core.Data, perm []uint64) (*core.Data, error) {
	dims := d.Dims()
	if len(perm) != len(dims) {
		return nil, fmt.Errorf("%w: perm rank %d vs data rank %d", core.ErrInvalidDims, len(perm), len(dims))
	}
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p >= uint64(len(perm)) || seen[p] {
			return nil, fmt.Errorf("%w: invalid permutation %v", core.ErrInvalidOption, perm)
		}
		seen[p] = true
	}
	outDims := make([]uint64, len(dims))
	for i, p := range perm {
		outDims[i] = dims[p]
	}
	out := core.NewData(d.DType(), outDims...)
	elem := uint64(d.DType().Size())
	src := d.Bytes()
	dst := out.Bytes()
	// Walk destination indices in order; gather from the source.
	n := d.Len()
	rank := len(dims)
	idx := make([]uint64, rank)
	srcIdx := make([]uint64, rank)
	for lin := uint64(0); lin < n; lin++ {
		for i := 0; i < rank; i++ {
			srcIdx[perm[i]] = idx[i]
		}
		srcLin := uint64(0)
		for i := 0; i < rank; i++ {
			srcLin = srcLin*dims[i] + srcIdx[i]
		}
		copy(dst[lin*elem:(lin+1)*elem], src[srcLin*elem:(srcLin+1)*elem])
		for i := rank - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < outDims[i] {
				break
			}
			idx[i] = 0
		}
	}
	return out, nil
}

// invertPerm returns the inverse permutation.
func invertPerm(perm []uint64) []uint64 {
	inv := make([]uint64, len(perm))
	for i, p := range perm {
		inv[p] = uint64(i)
	}
	return inv
}

// transpose applies a multi-dimensional transpose before compression and
// undoes it after decompression.
type transpose struct {
	child
	perm []uint64
}

const transposeMagic = "MTR1"

func (p *transpose) Prefix() string  { return "transpose" }
func (p *transpose) Version() string { return Version }

func (p *transpose) Options() *core.Options {
	o := core.NewOptions()
	permData := core.NewData(core.DTypeUint64, uint64(len(p.perm)))
	copy(permData.Uint64s(), p.perm)
	o.Set(keyTransposeAxes, core.NewOption(permData))
	p.describe(o)
	return o
}

func (p *transpose) SetOptions(o *core.Options) error {
	if d, err := o.GetData(keyTransposeAxes); err == nil {
		if d.DType() != core.DTypeUint64 {
			return fmt.Errorf("%w: transpose:axes must be uint64 data", core.ErrInvalidOption)
		}
		p.perm = append([]uint64(nil), d.Uint64s()...)
	}
	return p.applyOptions(o)
}

func (p *transpose) CheckOptions(o *core.Options) error {
	clone := transpose{child: p.child.clone(), perm: append([]uint64(nil), p.perm...)}
	return clone.SetOptions(o)
}

func (p *transpose) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetySerialized, "stable", Version, false)
}

func (p *transpose) CompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	perm := p.perm
	if len(perm) == 0 {
		// Default: reverse the axes.
		perm = make([]uint64, in.NumDims())
		for i := range perm {
			perm[i] = uint64(in.NumDims() - 1 - i)
		}
	}
	tr, err := Transpose(in, perm)
	if err != nil {
		return err
	}
	inner, err := core.Compress(comp, tr)
	if err != nil {
		return err
	}
	var buf []byte
	buf = append(buf, transposeMagic...)
	buf = append(buf, byte(len(perm)))
	for _, v := range perm {
		buf = binary.AppendUvarint(buf, v)
	}
	for _, v := range tr.Dims() {
		buf = binary.AppendUvarint(buf, v)
	}
	buf = append(buf, byte(tr.DType()))
	buf = append(buf, inner.Bytes()...)
	out.Become(core.NewBytes(buf))
	return nil
}

func (p *transpose) DecompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	b := in.Bytes()
	if len(b) < 5 || string(b[:4]) != transposeMagic {
		return ErrCorrupt
	}
	rank := int(b[4])
	if rank == 0 || rank > 16 {
		return ErrCorrupt
	}
	pos := 5
	perm := make([]uint64, rank)
	for i := range perm {
		v, sz := binary.Uvarint(b[pos:])
		if sz <= 0 || v >= uint64(rank) {
			return ErrCorrupt
		}
		perm[i] = v
		pos += sz
	}
	trDims := make([]uint64, rank)
	for i := range trDims {
		v, sz := binary.Uvarint(b[pos:])
		if sz <= 0 || v == 0 {
			return ErrCorrupt
		}
		trDims[i] = v
		pos += sz
	}
	if pos >= len(b) {
		return ErrCorrupt
	}
	dtype := core.DType(b[pos])
	pos++
	dec, err := core.Decompress(comp, core.NewBytes(b[pos:]), dtype, trDims...)
	if err != nil {
		return err
	}
	if dec.NumDims() != rank {
		if err := dec.Reshape(trDims...); err != nil {
			return err
		}
	}
	back, err := Transpose(dec, invertPerm(perm))
	if err != nil {
		return err
	}
	out.Become(back)
	return nil
}

func (p *transpose) Clone() core.CompressorPlugin {
	return &transpose{child: p.child.clone(), perm: append([]uint64(nil), p.perm...)}
}

// resize reinterprets the dimensions without touching values — useful when
// a compressor benefits from being told a different shape, e.g. an A×B×1
// dataset handed to the zfp-family codec as A×B (the §V padding
// experiment).
type resize struct {
	child
	newDims []uint64
}

const resizeMagic = "MRS1"

func (p *resize) Prefix() string  { return "resize" }
func (p *resize) Version() string { return Version }

func (p *resize) Options() *core.Options {
	o := core.NewOptions()
	dimsData := core.NewData(core.DTypeUint64, uint64(len(p.newDims)))
	copy(dimsData.Uint64s(), p.newDims)
	o.Set(keyResizeDims, core.NewOption(dimsData))
	p.describe(o)
	return o
}

func (p *resize) SetOptions(o *core.Options) error {
	if d, err := o.GetData(keyResizeDims); err == nil {
		if d.DType() != core.DTypeUint64 {
			return fmt.Errorf("%w: resize:dims must be uint64 data", core.ErrInvalidOption)
		}
		p.newDims = append([]uint64(nil), d.Uint64s()...)
	}
	return p.applyOptions(o)
}

func (p *resize) CheckOptions(o *core.Options) error {
	clone := resize{child: p.child.clone(), newDims: append([]uint64(nil), p.newDims...)}
	return clone.SetOptions(o)
}

func (p *resize) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetySerialized, "stable", Version, false)
}

func (p *resize) CompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	work := in
	if len(p.newDims) > 0 {
		work = in.Clone()
		if err := work.Reshape(p.newDims...); err != nil {
			return err
		}
	}
	inner, err := core.Compress(comp, work)
	if err != nil {
		return err
	}
	var buf []byte
	buf = append(buf, resizeMagic...)
	buf = append(buf, byte(in.NumDims()))
	for _, d := range in.Dims() {
		buf = binary.AppendUvarint(buf, d)
	}
	buf = append(buf, byte(work.NumDims()))
	for _, d := range work.Dims() {
		buf = binary.AppendUvarint(buf, d)
	}
	buf = append(buf, byte(in.DType()))
	buf = append(buf, inner.Bytes()...)
	out.Become(core.NewBytes(buf))
	return nil
}

func (p *resize) DecompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	b := in.Bytes()
	if len(b) < 5 || string(b[:4]) != resizeMagic {
		return ErrCorrupt
	}
	pos := 4
	readDims := func() ([]uint64, error) {
		if pos >= len(b) {
			return nil, ErrCorrupt
		}
		rank := int(b[pos])
		pos++
		if rank == 0 || rank > 16 {
			return nil, ErrCorrupt
		}
		dims := make([]uint64, rank)
		for i := range dims {
			v, sz := binary.Uvarint(b[pos:])
			if sz <= 0 || v == 0 {
				return nil, ErrCorrupt
			}
			dims[i] = v
			pos += sz
		}
		return dims, nil
	}
	origDims, err := readDims()
	if err != nil {
		return err
	}
	workDims, err := readDims()
	if err != nil {
		return err
	}
	if pos >= len(b) {
		return ErrCorrupt
	}
	dtype := core.DType(b[pos])
	pos++
	dec, err := core.Decompress(comp, core.NewBytes(b[pos:]), dtype, workDims...)
	if err != nil {
		return err
	}
	if err := dec.Reshape(origDims...); err != nil {
		return err
	}
	out.Become(dec)
	return nil
}

func (p *resize) Clone() core.CompressorPlugin {
	return &resize{child: p.child.clone(), newDims: append([]uint64(nil), p.newDims...)}
}

// sample compresses a strided subsample of the input — the data-sampling
// meta-compressor used for quick quality surveys. Decompression returns the
// sample (shape divided by the stride along the slowest dimension).
type sample struct {
	child
	stride uint64
}

func (p *sample) Prefix() string  { return "sample" }
func (p *sample) Version() string { return Version }

func (p *sample) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keySampleStride, p.stride)
	p.describe(o)
	return o
}

func (p *sample) SetOptions(o *core.Options) error {
	if v, err := o.GetUint64(keySampleStride); err == nil {
		if v == 0 {
			return fmt.Errorf("%w: sample:stride must be >= 1", core.ErrInvalidOption)
		}
		p.stride = v
	}
	return p.applyOptions(o)
}

func (p *sample) CheckOptions(o *core.Options) error {
	clone := sample{child: p.child.clone(), stride: p.stride}
	return clone.SetOptions(o)
}

func (p *sample) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetySerialized, "stable", Version, false)
}

func (p *sample) CompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	dims := in.Dims()
	if len(dims) == 0 {
		return fmt.Errorf("sample: %w", core.ErrInvalidDims)
	}
	rows := (dims[0] + p.stride - 1) / p.stride
	rowBytes := uint64(in.DType().Size())
	for _, d := range dims[1:] {
		rowBytes *= d
	}
	sampDims := append([]uint64{rows}, dims[1:]...)
	samp := core.NewData(in.DType(), sampDims...)
	for r := uint64(0); r < rows; r++ {
		src := r * p.stride * rowBytes
		copy(samp.Bytes()[r*rowBytes:(r+1)*rowBytes], in.Bytes()[src:src+rowBytes])
	}
	inner, err := core.Compress(comp, samp)
	if err != nil {
		return err
	}
	out.Become(inner)
	return nil
}

func (p *sample) DecompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	return comp.Decompress(in, out)
}

func (p *sample) Clone() core.CompressorPlugin {
	return &sample{child: p.child.clone(), stride: p.stride}
}

// deltaMeta applies a delta-encoding preprocessing step (in float64 space)
// before the child compressor and integrates after decompression. With a
// lossless child the transform is exactly invertible.
type deltaMeta struct {
	child
}

const deltaMagic = "MDL1"

func (p *deltaMeta) Prefix() string  { return "delta_encoding" }
func (p *deltaMeta) Version() string { return Version }

func (p *deltaMeta) Options() *core.Options {
	o := core.NewOptions()
	p.describe(o)
	return o
}

func (p *deltaMeta) SetOptions(o *core.Options) error { return p.applyOptions(o) }

func (p *deltaMeta) CheckOptions(o *core.Options) error {
	clone := deltaMeta{child: p.child.clone()}
	return clone.SetOptions(o)
}

func (p *deltaMeta) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetySerialized, "experimental", Version, false)
}

func (p *deltaMeta) CompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	if in.DType() != core.DTypeFloat64 && in.DType() != core.DTypeFloat32 &&
		in.DType() != core.DTypeInt64 && in.DType() != core.DTypeInt32 {
		return fmt.Errorf("%w: delta_encoding supports numeric 32/64-bit types", core.ErrInvalidDType)
	}
	work := in.Clone()
	switch in.DType() {
	case core.DTypeFloat64:
		deltaForward(work.Float64s())
	case core.DTypeFloat32:
		deltaForward(work.Float32s())
	case core.DTypeInt64:
		deltaForward(work.Int64s())
	case core.DTypeInt32:
		deltaForward(work.Int32s())
	}
	inner, err := core.Compress(comp, work)
	if err != nil {
		return err
	}
	var buf []byte
	buf = append(buf, deltaMagic...)
	buf = append(buf, byte(in.DType()))
	buf = append(buf, byte(in.NumDims()))
	for _, d := range in.Dims() {
		buf = binary.AppendUvarint(buf, d)
	}
	buf = append(buf, inner.Bytes()...)
	out.Become(core.NewBytes(buf))
	return nil
}

func deltaForward[T int32 | int64 | float32 | float64](v []T) {
	for i := len(v) - 1; i > 0; i-- {
		v[i] -= v[i-1]
	}
}

func deltaInverse[T int32 | int64 | float32 | float64](v []T) {
	for i := 1; i < len(v); i++ {
		v[i] += v[i-1]
	}
}

func (p *deltaMeta) DecompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	b := in.Bytes()
	if len(b) < 6 || string(b[:4]) != deltaMagic {
		return ErrCorrupt
	}
	dtype := core.DType(b[4])
	rank := int(b[5])
	if rank == 0 || rank > 16 || dtype.Size() == 0 {
		return ErrCorrupt
	}
	pos := 6
	dims := make([]uint64, rank)
	total := uint64(1)
	for i := range dims {
		v, sz := binary.Uvarint(b[pos:])
		if sz <= 0 || v == 0 || v > 1<<40 {
			return ErrCorrupt
		}
		dims[i] = v
		// Overflow-safe running product: reject before multiplying so a
		// wrapped uint64 can never sneak past the shape bound.
		if total > (1<<44)/v {
			return ErrCorrupt
		}
		total *= v
		pos += sz
	}
	// A lossless child expands by at most ~three decimal orders of
	// magnitude, so a header whose declared shape dwarfs the embedded
	// stream is a decompression bomb, not a valid product of
	// CompressImpl — reject it before allocating the output.
	if total*uint64(dtype.Size()) > (uint64(len(b)-pos)+2)*4096 {
		return ErrCorrupt
	}
	dec, err := core.Decompress(comp, core.NewBytes(b[pos:]), dtype, dims...)
	if err != nil {
		return err
	}
	if dec.DType() != dtype || dec.Len() != total {
		// A corrupt inner stream can make the child hand back an opaque
		// byte buffer of the wrong size; the typed views below would panic.
		return ErrCorrupt
	}
	switch dtype {
	case core.DTypeFloat64:
		deltaInverse(dec.Float64s())
	case core.DTypeFloat32:
		deltaInverse(dec.Float32s())
	case core.DTypeInt64:
		deltaInverse(dec.Int64s())
	case core.DTypeInt32:
		deltaInverse(dec.Int32s())
	default:
		return ErrCorrupt
	}
	out.Become(dec)
	return nil
}

func (p *deltaMeta) Clone() core.CompressorPlugin {
	return &deltaMeta{child: p.child.clone()}
}

// linQuant performs linear-scaling quantization to int64 codes followed by
// a (typically lossless) child compressor; the absolute error bound is
// step/2. It demonstrates composing a compressor out of functional stages
// — quantization plus encoding — as §IV-D describes.
type linQuant struct {
	child
	step float64
}

const linQuantMagic = "MLQ1"

func (p *linQuant) Prefix() string  { return "linear_quantizer" }
func (p *linQuant) Version() string { return Version }

func (p *linQuant) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keyQuantizerStep, p.step)
	o.SetValue(core.KeyAbs, p.step/2)
	p.describe(o)
	return o
}

func (p *linQuant) SetOptions(o *core.Options) error {
	if v, err := o.GetFloat64(core.KeyAbs); err == nil {
		p.step = 2 * v
	}
	if v, err := o.GetFloat64(keyQuantizerStep); err == nil {
		p.step = v
	}
	if p.step <= 0 || math.IsNaN(p.step) || math.IsInf(p.step, 0) {
		return fmt.Errorf("%w: linear_quantizer:step must be positive", core.ErrInvalidOption)
	}
	return p.applyOptions(o)
}

func (p *linQuant) CheckOptions(o *core.Options) error {
	clone := linQuant{child: p.child.clone(), step: p.step}
	return clone.SetOptions(o)
}

func (p *linQuant) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetySerialized, "stable", Version, false)
}

func (p *linQuant) CompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	if !in.DType().Numeric() {
		return fmt.Errorf("%w: linear_quantizer needs numeric data", core.ErrInvalidDType)
	}
	vals := in.AsFloat64s()
	var payload []byte
	payload = binary.AppendUvarint(payload, uint64(len(vals)))
	for _, v := range vals {
		q := int64(math.Floor(v/p.step + 0.5))
		payload = binary.AppendVarint(payload, q)
	}
	inner, err := core.Compress(comp, core.NewBytes(payload))
	if err != nil {
		return err
	}
	var buf []byte
	buf = append(buf, linQuantMagic...)
	buf = append(buf, byte(in.DType()))
	buf = append(buf, byte(in.NumDims()))
	for _, d := range in.Dims() {
		buf = binary.AppendUvarint(buf, d)
	}
	buf = binary.AppendUvarint(buf, math.Float64bits(p.step))
	buf = append(buf, inner.Bytes()...)
	out.Become(core.NewBytes(buf))
	return nil
}

func (p *linQuant) DecompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	b := in.Bytes()
	if len(b) < 6 || string(b[:4]) != linQuantMagic {
		return ErrCorrupt
	}
	dtype := core.DType(b[4])
	rank := int(b[5])
	if rank == 0 || rank > 16 || !dtype.Numeric() {
		return ErrCorrupt
	}
	pos := 6
	dims := make([]uint64, rank)
	total := uint64(1)
	for i := range dims {
		v, sz := binary.Uvarint(b[pos:])
		if sz <= 0 || v == 0 || v > 1<<40 {
			return ErrCorrupt
		}
		dims[i] = v
		// Overflow-safe running product: reject before multiplying so a
		// wrapped uint64 can never sneak past the shape bound.
		if total > (1<<44)/v {
			return ErrCorrupt
		}
		total *= v
		pos += sz
	}
	stepBits, sz := binary.Uvarint(b[pos:])
	if sz <= 0 {
		return ErrCorrupt
	}
	pos += sz
	step := math.Float64frombits(stepBits)
	if step <= 0 || math.IsNaN(step) || math.IsInf(step, 0) {
		return ErrCorrupt
	}
	decPayload := core.NewEmpty(core.DTypeByte, 0)
	if err := comp.Decompress(core.NewBytes(b[pos:]), decPayload); err != nil {
		return err
	}
	payload := decPayload.Bytes()
	count, sz := binary.Uvarint(payload)
	if sz <= 0 || count > uint64(len(payload)) {
		return ErrCorrupt
	}
	if count != total {
		// Corruption can desynchronize the embedded code count from the
		// declared shape; FromFloat64s would panic on the mismatch.
		return ErrCorrupt
	}
	off := sz
	vals := make([]float64, count)
	for i := range vals {
		q, sz := binary.Varint(payload[off:])
		if sz <= 0 {
			return ErrCorrupt
		}
		off += sz
		vals[i] = float64(q) * step
	}
	d64 := core.FromFloat64s(vals, dims...)
	if dtype == core.DTypeFloat64 {
		out.Become(d64)
		return nil
	}
	cast, err := d64.CastTo(dtype)
	if err != nil {
		return err
	}
	out.Become(cast)
	return nil
}

func (p *linQuant) Clone() core.CompressorPlugin {
	return &linQuant{child: p.child.clone(), step: p.step}
}
