package meta

import (
	"testing"

	"pressio/internal/core"
)

// tallyMetric counts hook invocations; its Clone starts from zero, so any
// count that lands on the prototype's instance proves state was shared
// rather than cloned per worker.
type tallyMetric struct {
	begins, ends int
}

func (m *tallyMetric) Prefix() string                            { return "tally" }
func (m *tallyMetric) Options() *core.Options                    { return core.NewOptions() }
func (m *tallyMetric) SetOptions(*core.Options) error            { return nil }
func (m *tallyMetric) BeginCompress(in *core.Data)               { m.begins++ }
func (m *tallyMetric) EndCompress(in, out *core.Data, e error)   { m.ends++ }
func (m *tallyMetric) BeginDecompress(in *core.Data)             { m.begins++ }
func (m *tallyMetric) EndDecompress(in, out *core.Data, e error) { m.ends++ }
func (m *tallyMetric) Clone() core.Metric                        { return &tallyMetric{} }

func (m *tallyMetric) Results() *core.Options {
	return core.NewOptions().
		SetValue("tally:begins", int32(m.begins)).
		SetValue("tally:ends", int32(m.ends))
}

func manyBufs(n int) []*core.Data {
	bufs := make([]*core.Data, n)
	for i := range bufs {
		bufs[i] = smooth([]uint64{64, 32}, int64(100+i))
	}
	return bufs
}

func TestCompressManyClonesMetricPerWorker(t *testing.T) {
	proto, err := core.NewCompressor("noop")
	if err != nil {
		t.Fatal(err)
	}
	tally := &tallyMetric{}
	proto.SetMetrics(tally)
	bufs := manyBufs(8)
	_, merged, err := CompressManyWithMetrics(proto, bufs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The prototype's own metric must be untouched: every worker ran a
	// clone with fresh state.
	if tally.begins != 0 || tally.ends != 0 {
		t.Fatalf("prototype metric mutated: begins=%d ends=%d", tally.begins, tally.ends)
	}
	// Static partitioning over 2 workers gives each exactly 4 buffers, and
	// the merge (worker order) must reflect a worker's tally, not zero.
	begins, err := merged.GetInt32("tally:begins")
	if err != nil || begins != 4 {
		t.Fatalf("merged tally:begins = %d (%v), want 4", begins, err)
	}
}

func TestCompressManyWithMetricsDeterministicMerge(t *testing.T) {
	bufs := manyBufs(7)
	run := func() string {
		proto, err := core.NewCompressor("noop")
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.NewMetrics("size", "time")
		if err != nil {
			t.Fatal(err)
		}
		proto.SetMetrics(m)
		_, merged, err := CompressManyWithMetrics(proto, bufs, 3)
		if err != nil {
			t.Fatal(err)
		}
		// Strip wall-clock values: determinism is about which worker's
		// state wins each key, not about timing itself.
		merged.Delete("time:compress")
		merged.Delete("time:decompress")
		return merged.String()
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("merge not deterministic:\nrun0: %s\nrun%d: %s", first, i+1, got)
		}
	}
}

func TestDecompressManyWithMetricsMerges(t *testing.T) {
	proto, err := core.NewCompressor("noop")
	if err != nil {
		t.Fatal(err)
	}
	bufs := manyBufs(6)
	comps, err := CompressMany(proto, bufs, 2)
	if err != nil {
		t.Fatal(err)
	}
	tally := &tallyMetric{}
	proto.SetMetrics(tally)
	hints := make([]*core.Data, len(bufs))
	for i, b := range bufs {
		hints[i] = core.NewEmpty(b.DType(), b.Dims()...)
	}
	outs, merged, err := DecompressManyWithMetrics(proto, comps, hints, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(bufs) {
		t.Fatalf("got %d outputs", len(outs))
	}
	for i := range outs {
		if outs[i].ByteLen() != bufs[i].ByteLen() {
			t.Fatalf("buffer %d: %d bytes, want %d", i, outs[i].ByteLen(), bufs[i].ByteLen())
		}
	}
	if tally.begins != 0 {
		t.Fatal("prototype metric mutated during DecompressMany")
	}
	// 6 buffers over 3 workers: each worker decompresses exactly 2.
	begins, err := merged.GetInt32("tally:begins")
	if err != nil || begins != 2 {
		t.Fatalf("merged tally:begins = %d (%v), want 2", begins, err)
	}
}

func TestCompressManySingleThreadSafety(t *testing.T) {
	// "sz" (global-config flavor) declares single: the batch must still
	// complete correctly through the serial path, with metrics merged from
	// the one worker clone.
	proto, err := core.NewCompressor("sz")
	if err != nil {
		t.Fatal(err)
	}
	tally := &tallyMetric{}
	proto.SetMetrics(tally)
	bufs := manyBufs(3)
	comps, merged, err := CompressManyWithMetrics(proto, bufs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("got %d streams", len(comps))
	}
	begins, err := merged.GetInt32("tally:begins")
	if err != nil || begins != 3 {
		t.Fatalf("merged tally:begins = %d (%v), want 3", begins, err)
	}
}
