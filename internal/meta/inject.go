package meta

import (
	"fmt"
	"math"
	"math/rand"

	"pressio/internal/core"
)

// Option keys the injector and switch meta-compressors own.
const (
	keyFaultFaults       = "fault_injector:faults"
	keyFaultSeed         = "fault_injector:seed"
	keyNoiseDistribution = "noise_injector:distribution"
	keyNoiseScale        = "noise_injector:scale"
	keyNoiseSeed         = "noise_injector:seed"
	keySwitchActive      = "switch:active"
)

func init() {
	core.RegisterCompressor("fault_injector", func() core.CompressorPlugin {
		return &faultInjector{child: newChild("fault_injector", "sz_threadsafe"), nFaults: 1}
	})
	core.RegisterCompressor("noise_injector", func() core.CompressorPlugin {
		return &noiseInjector{child: newChild("noise_injector", "sz_threadsafe"), dist: "gaussian", scale: 1e-3}
	})
	core.RegisterCompressor("switch", func() core.CompressorPlugin {
		return &switchMeta{active: "sz_threadsafe"}
	})
}

// faultInjector compresses with its child and then flips bits in the
// compressed stream — the building block of fuzz-style resilience testing
// of decompressors (the paper's Fault Injector).
type faultInjector struct {
	child
	nFaults uint64
	seed    int64
}

func (p *faultInjector) Prefix() string  { return "fault_injector" }
func (p *faultInjector) Version() string { return Version }

func (p *faultInjector) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keyFaultFaults, p.nFaults)
	o.SetValue(keyFaultSeed, p.seed)
	p.describe(o)
	return o
}

func (p *faultInjector) SetOptions(o *core.Options) error {
	if v, err := o.GetUint64(keyFaultFaults); err == nil {
		p.nFaults = v
	}
	if v, err := o.GetInt64(keyFaultSeed); err == nil {
		p.seed = v
	}
	return p.applyOptions(o)
}

func (p *faultInjector) CheckOptions(o *core.Options) error {
	clone := faultInjector{child: p.child.clone(), nFaults: p.nFaults, seed: p.seed}
	return clone.SetOptions(o)
}

func (p *faultInjector) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetySerialized, "experimental", Version, false)
}

func (p *faultInjector) CompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	inner, err := core.Compress(comp, in)
	if err != nil {
		return err
	}
	buf := append([]byte(nil), inner.Bytes()...)
	rng := rand.New(rand.NewSource(p.seed))
	for i := uint64(0); i < p.nFaults && len(buf) > 0; i++ {
		bit := rng.Intn(len(buf) * 8)
		buf[bit/8] ^= 1 << (bit % 8)
	}
	out.Become(core.NewBytes(buf))
	return nil
}

func (p *faultInjector) DecompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	return comp.Decompress(in, out)
}

func (p *faultInjector) Clone() core.CompressorPlugin {
	return &faultInjector{child: p.child.clone(), nFaults: p.nFaults, seed: p.seed}
}

// noiseInjector adds random noise to each input element before handing the
// data to the child compressor — the Random Error Injector, used to study
// how compressors respond to measurement noise.
type noiseInjector struct {
	child
	dist  string // "gaussian" or "uniform"
	scale float64
	seed  int64
}

func (p *noiseInjector) Prefix() string  { return "noise_injector" }
func (p *noiseInjector) Version() string { return Version }

func (p *noiseInjector) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keyNoiseDistribution, p.dist)
	o.SetValue(keyNoiseScale, p.scale)
	o.SetValue(keyNoiseSeed, p.seed)
	p.describe(o)
	return o
}

func (p *noiseInjector) SetOptions(o *core.Options) error {
	if v, err := o.GetString(keyNoiseDistribution); err == nil {
		if v != "gaussian" && v != "uniform" {
			return fmt.Errorf("%w: noise distribution %q", core.ErrInvalidOption, v)
		}
		p.dist = v
	}
	if v, err := o.GetFloat64(keyNoiseScale); err == nil {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("%w: noise scale %v", core.ErrInvalidOption, v)
		}
		p.scale = v
	}
	if v, err := o.GetInt64(keyNoiseSeed); err == nil {
		p.seed = v
	}
	return p.applyOptions(o)
}

func (p *noiseInjector) CheckOptions(o *core.Options) error {
	clone := noiseInjector{child: p.child.clone(), dist: p.dist, scale: p.scale, seed: p.seed}
	return clone.SetOptions(o)
}

func (p *noiseInjector) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetySerialized, "experimental", Version, false)
}

func (p *noiseInjector) CompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	work := in.Clone()
	rng := rand.New(rand.NewSource(p.seed))
	noise := func() float64 {
		if p.dist == "uniform" {
			return (rng.Float64()*2 - 1) * p.scale
		}
		return rng.NormFloat64() * p.scale
	}
	switch in.DType() {
	case core.DTypeFloat32:
		v := work.Float32s()
		for i := range v {
			v[i] += float32(noise())
		}
	case core.DTypeFloat64:
		v := work.Float64s()
		for i := range v {
			v[i] += noise()
		}
	default:
		return fmt.Errorf("%w: noise_injector needs floating point data", core.ErrInvalidDType)
	}
	inner, err := core.Compress(comp, work)
	if err != nil {
		return err
	}
	out.Become(inner)
	return nil
}

func (p *noiseInjector) DecompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	return comp.Decompress(in, out)
}

func (p *noiseInjector) Clone() core.CompressorPlugin {
	return &noiseInjector{child: p.child.clone(), dist: p.dist, scale: p.scale, seed: p.seed}
}

// switchMeta dispatches to one of several child compressors selected at
// runtime by the keySwitchActive option, which is how optimizers search
// across compressor *types* with a single configuration knob.
type switchMeta struct {
	active string
	pool   map[string]*core.Compressor
	saved  *core.Options
}

func (p *switchMeta) Prefix() string  { return "switch" }
func (p *switchMeta) Version() string { return Version }

func (p *switchMeta) current() (*core.Compressor, error) {
	if p.pool == nil {
		p.pool = map[string]*core.Compressor{}
	}
	if c, ok := p.pool[p.active]; ok {
		return c, nil
	}
	c, err := core.NewCompressor(p.active)
	if err != nil {
		return nil, err
	}
	if p.saved != nil {
		if err := c.SetOptions(p.saved); err != nil {
			return nil, err
		}
	}
	p.pool[p.active] = c
	return c, nil
}

func (p *switchMeta) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keySwitchActive, p.active)
	if c, err := p.current(); err == nil {
		o.Merge(c.Options())
	}
	return o
}

func (p *switchMeta) SetOptions(o *core.Options) error {
	if v, err := o.GetString(keySwitchActive); err == nil {
		p.active = v
	}
	if p.saved == nil {
		p.saved = core.NewOptions()
	}
	p.saved.Merge(o)
	for _, c := range p.pool {
		if err := c.SetOptions(o); err != nil {
			return err
		}
	}
	return nil
}

func (p *switchMeta) CheckOptions(o *core.Options) error {
	if v, err := o.GetString(keySwitchActive); err == nil {
		if _, err := core.NewCompressor(v); err != nil {
			return err
		}
	}
	return nil
}

func (p *switchMeta) Configuration() *core.Options {
	cfg := core.StandardConfiguration(core.ThreadSafetySerialized, "stable", Version, false)
	cfg.SetValue("switch:known", core.SupportedCompressors())
	return cfg
}

func (p *switchMeta) CompressImpl(in, out *core.Data) error {
	c, err := p.current()
	if err != nil {
		return err
	}
	return c.Compress(in, out)
}

func (p *switchMeta) DecompressImpl(in, out *core.Data) error {
	c, err := p.current()
	if err != nil {
		return err
	}
	return c.Decompress(in, out)
}

func (p *switchMeta) Clone() core.CompressorPlugin {
	clone := &switchMeta{active: p.active}
	if p.saved != nil {
		clone.saved = p.saved.Clone()
	}
	return clone
}
