package meta

import (
	"math"
	"math/rand"
	"testing"

	"pressio/internal/core"
	_ "pressio/internal/fpzip"
)

func sparseField(n int, density float64, seed int64) *core.Data {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float32, n)
	for i := range vals {
		if rng.Float64() < density {
			vals[i] = float32(5 + rng.NormFloat64())
		}
	}
	return core.FromFloat32s(vals, uint64(n))
}

func TestSparseRoundTripPreservesBoundAndZeros(t *testing.T) {
	in := sparseField(5000, 0.1, 1)
	c, err := core.NewCompressor("sparse")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetOptions(core.NewOptions().
		SetValue("sparse:compressor", "sz_threadsafe").
		SetValue(core.KeyAbs, 0.01)); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec.Float32s() {
		orig := in.Float32s()[i]
		if orig == 0 {
			if v != 0 {
				t.Fatalf("elem %d: background not exactly zero: %v", i, v)
			}
			continue
		}
		if math.Abs(float64(v-orig)) > 0.01 {
			t.Fatalf("elem %d: bound violated", i)
		}
	}
}

func TestSparseBeatsLosslessChildOnNoisyBackground(t *testing.T) {
	// Where masking genuinely wins: a lossless child (here fpzip in
	// lossless mode) must store background noise bit-exactly, while the
	// sparse wrapper discards anything below the threshold — detector
	// data with a noise floor is the classic case (SZ's ExaFEL mode).
	rng := rand.New(rand.NewSource(3))
	vals := make([]float32, 4096)
	for i := range vals {
		if rng.Float64() < 0.08 {
			vals[i] = float32(100 + 10*rng.NormFloat64()) // signal
		} else {
			vals[i] = float32(1e-4 * rng.NormFloat64()) // noise floor
		}
	}
	in := core.FromFloat32s(vals, 64, 64)

	dense, _ := core.NewCompressor("fpzip")
	denseOut, err := core.Compress(dense, in)
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := core.NewCompressor("sparse")
	if err := sp.SetOptions(core.NewOptions().
		SetValue("sparse:compressor", "fpzip").
		SetValue("sparse:threshold", 1e-3)); err != nil {
		t.Fatal(err)
	}
	sparseOut, err := core.Compress(sp, in)
	if err != nil {
		t.Fatal(err)
	}
	if sparseOut.ByteLen()*2 >= denseOut.ByteLen() {
		t.Fatalf("sparse+lossless should beat dense lossless by 2x+ here: %d vs %d",
			sparseOut.ByteLen(), denseOut.ByteLen())
	}
	// Reconstruction: signal is bit-exact (lossless child), background is
	// exactly zero, and no error exceeds the threshold.
	dec, err := core.Decompress(sp, sparseOut, core.DTypeFloat32, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec.Float32s() {
		if math.Abs(float64(vals[i])) > 1e-3 {
			if v != vals[i] {
				t.Fatalf("elem %d: signal not bit-exact", i)
			}
		} else if v != 0 {
			t.Fatalf("elem %d: background not zeroed", i)
		}
	}
}

func TestSparseAllZero(t *testing.T) {
	in := core.FromFloat32s(make([]float32, 400), 20, 20)
	c, _ := core.NewCompressor("sparse")
	if err := c.SetOptions(core.NewOptions().SetValue(core.KeyAbs, 0.1)); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	if comp.ByteLen() > 100 {
		t.Fatalf("all-zero field should compress to almost nothing: %d", comp.ByteLen())
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(in) {
		t.Fatal("all-zero round trip failed")
	}
}

func TestSparseAllDense(t *testing.T) {
	in := sparseField(256, 1.0, 4) // nothing below threshold
	c, _ := core.NewCompressor("sparse")
	if err := c.SetOptions(core.NewOptions().SetValue(core.KeyAbs, 0.01)); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 256)
	if err != nil {
		t.Fatal(err)
	}
	if worst := maxErr(in, dec); worst > 0.01 {
		t.Fatalf("bound violated: %g", worst)
	}
}

func TestSparseRejectsIntData(t *testing.T) {
	c, _ := core.NewCompressor("sparse")
	if _, err := core.Compress(c, core.FromInt32s([]int32{1, 2})); err == nil {
		t.Fatal("expected dtype error")
	}
}

func TestSparseThresholdValidation(t *testing.T) {
	c, _ := core.NewCompressor("sparse")
	if err := c.SetOptions(core.NewOptions().SetValue("sparse:threshold", -1.0)); err == nil {
		t.Fatal("negative threshold should fail")
	}
}
