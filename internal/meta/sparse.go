package meta

import (
	"encoding/binary"
	"fmt"
	"math"

	"pressio/internal/core"
	"pressio/internal/lossless"
)

// Option keys the sparse meta-compressor owns.
const (
	keySparseThreshold = "sparse:threshold"
)

func init() {
	core.RegisterCompressor("sparse", func() core.CompressorPlugin {
		return &sparse{child: newChild("sparse", "sz_threadsafe")}
	})
}

// sparse implements the paper's §VIII future-work item "better support for
// sparse data": values within sparse:threshold of zero are recorded in a
// run-length-coded occupancy mask, and only the dense remainder is handed
// to the child compressor (packed into a 1-D buffer). Two things a dense
// error-bounded compressor cannot offer: the background reconstructs as
// *exact* zeros (not zeros-within-eb), and a lossless child (e.g. fpzip)
// no longer pays to store a noise floor bit-exactly — the detector-data
// pattern behind SZ's ExaFEL mode.
type sparse struct {
	child
	threshold float64
}

const sparseMagic = "MSP1"

func (p *sparse) Prefix() string  { return "sparse" }
func (p *sparse) Version() string { return Version }

func (p *sparse) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keySparseThreshold, p.threshold)
	p.describe(o)
	return o
}

func (p *sparse) SetOptions(o *core.Options) error {
	if v, err := o.GetFloat64(keySparseThreshold); err == nil {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("%w: sparse:threshold must be >= 0", core.ErrInvalidOption)
		}
		p.threshold = v
	}
	return p.applyOptions(o)
}

func (p *sparse) CheckOptions(o *core.Options) error {
	clone := sparse{child: p.child.clone(), threshold: p.threshold}
	return clone.SetOptions(o)
}

func (p *sparse) Configuration() *core.Options {
	cfg := core.StandardConfiguration(core.ThreadSafetySerialized, "experimental", Version, false)
	cfg.SetValue("sparse:masked_value", 0.0)
	return cfg
}

func (p *sparse) CompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	if in.DType() != core.DTypeFloat32 && in.DType() != core.DTypeFloat64 {
		return fmt.Errorf("%w: sparse supports float32/float64, got %s", core.ErrInvalidDType, in.DType())
	}
	n := int(in.Len())
	occupied := make([]bool, n)
	dense := 0
	if in.DType() == core.DTypeFloat32 {
		for i, v := range in.Float32s() {
			if math.Abs(float64(v)) > p.threshold {
				occupied[i] = true
				dense++
			}
		}
	} else {
		for i, v := range in.Float64s() {
			if math.Abs(v) > p.threshold {
				occupied[i] = true
				dense++
			}
		}
	}
	// Pack the dense values into a 1-D buffer for the child.
	var packed *core.Data
	if in.DType() == core.DTypeFloat32 {
		vals := make([]float32, 0, dense)
		for i, v := range in.Float32s() {
			if occupied[i] {
				vals = append(vals, v)
			}
		}
		packed = core.FromFloat32s(vals, uint64(len(vals)))
	} else {
		vals := make([]float64, 0, dense)
		for i, v := range in.Float64s() {
			if occupied[i] {
				vals = append(vals, v)
			}
		}
		packed = core.FromFloat64s(vals, uint64(len(vals)))
	}
	var inner *core.Data
	if dense > 0 {
		inner, err = core.Compress(comp, packed)
		if err != nil {
			return err
		}
	} else {
		inner = core.NewBytes(nil)
	}
	// Run-length encode the occupancy mask: alternating run lengths
	// starting with the empty state.
	var mask []byte
	run := uint64(0)
	state := false
	for _, occ := range occupied {
		if occ == state {
			run++
			continue
		}
		mask = binary.AppendUvarint(mask, run)
		state = occ
		run = 1
	}
	mask = binary.AppendUvarint(mask, run)
	packedMask, err := lossless.Deflate(mask, 0)
	if err != nil {
		return err
	}

	var buf []byte
	buf = append(buf, sparseMagic...)
	buf = append(buf, byte(in.DType()))
	buf = append(buf, byte(in.NumDims()))
	for _, d := range in.Dims() {
		buf = binary.AppendUvarint(buf, d)
	}
	buf = binary.AppendUvarint(buf, uint64(dense))
	buf = binary.AppendUvarint(buf, uint64(len(packedMask)))
	buf = append(buf, packedMask...)
	buf = append(buf, inner.Bytes()...)
	out.Become(core.NewBytes(buf))
	return nil
}

func (p *sparse) DecompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	b := in.Bytes()
	if len(b) < 6 || string(b[:4]) != sparseMagic {
		return ErrCorrupt
	}
	dtype := core.DType(b[4])
	rank := int(b[5])
	if rank == 0 || rank > 16 || (dtype != core.DTypeFloat32 && dtype != core.DTypeFloat64) {
		return ErrCorrupt
	}
	pos := 6
	dims := make([]uint64, rank)
	total := uint64(1)
	for i := range dims {
		v, sz := binary.Uvarint(b[pos:])
		if sz <= 0 || v == 0 {
			return ErrCorrupt
		}
		dims[i] = v
		total *= v
		if total > 1<<40 {
			return ErrCorrupt // declared-shape bomb
		}
		pos += sz
	}
	dense, sz := binary.Uvarint(b[pos:])
	if sz <= 0 || dense > total {
		return ErrCorrupt
	}
	pos += sz
	maskLen, sz := binary.Uvarint(b[pos:])
	if sz <= 0 || maskLen > uint64(len(b)-pos) {
		return ErrCorrupt
	}
	pos += sz
	mask, err := lossless.Inflate(b[pos : pos+int(maskLen)])
	if err != nil {
		return err
	}
	pos += int(maskLen)

	// Decode occupancy runs.
	occupied := make([]bool, total)
	idx := uint64(0)
	state := false
	moff := 0
	for idx < total {
		run, sz := binary.Uvarint(mask[moff:])
		if sz <= 0 || idx+run > total {
			return ErrCorrupt
		}
		moff += sz
		if state {
			for k := uint64(0); k < run; k++ {
				occupied[idx+k] = true
			}
		}
		idx += run
		state = !state
	}

	var packed *core.Data
	if dense > 0 {
		packed = core.NewEmpty(dtype, dense)
		if err := comp.Decompress(core.NewBytes(b[pos:]), packed); err != nil {
			return err
		}
		if packed.Len() != dense {
			return ErrCorrupt
		}
	}
	result := core.NewData(dtype, dims...)
	di := 0
	if dtype == core.DTypeFloat32 {
		dst := result.Float32s()
		var src []float32
		if packed != nil {
			src = packed.Float32s()
		}
		for i, occ := range occupied {
			if occ {
				dst[i] = src[di]
				di++
			}
		}
	} else {
		dst := result.Float64s()
		var src []float64
		if packed != nil {
			src = packed.Float64s()
		}
		for i, occ := range occupied {
			if occ {
				dst[i] = src[di]
				di++
			}
		}
	}
	if uint64(di) != dense {
		return ErrCorrupt
	}
	out.Become(result)
	return nil
}

func (p *sparse) Clone() core.CompressorPlugin {
	return &sparse{child: p.child.clone(), threshold: p.threshold}
}
