package meta

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"

	"pressio/internal/core"
	_ "pressio/internal/lossless"
	_ "pressio/internal/metrics"
	_ "pressio/internal/sz"
	_ "pressio/internal/zfp"
)

func smooth(dims []uint64, seed int64) *core.Data {
	rng := rand.New(rand.NewSource(seed))
	total := uint64(1)
	for _, d := range dims {
		total *= d
	}
	vals := make([]float32, total)
	for i := range vals {
		vals[i] = float32(40*math.Sin(float64(i)/33) + 0.02*rng.NormFloat64())
	}
	return core.FromFloat32s(vals, dims...)
}

func maxErr(a, b *core.Data) float64 {
	av, bv := a.AsFloat64s(), b.AsFloat64s()
	worst := 0.0
	for i := range av {
		if d := math.Abs(av[i] - bv[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestChunkingPreservesBound(t *testing.T) {
	in := smooth([]uint64{40, 16, 16}, 1)
	c, err := core.NewCompressor("chunking")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.NewOptions().
		SetValue("chunking:compressor", "sz_threadsafe").
		SetValue("chunking:chunk_rows", uint64(8)).
		SetValue(core.KeyAbs, 0.01)
	if err := c.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 40, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !equalDims(dec.Dims(), in.Dims()) {
		t.Fatalf("dims %v", dec.Dims())
	}
	if worst := maxErr(in, dec); worst > 0.01 {
		t.Fatalf("bound violated through chunking: %g", worst)
	}
}

func equalDims(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestChunkingWithSingleThreadSafetyChild(t *testing.T) {
	// The "sz" plugin is thread-safety "single": chunking must fall back
	// to serial execution and still produce correct output.
	in := smooth([]uint64{16, 8, 8}, 2)
	c, _ := core.NewCompressor("chunking")
	opts := core.NewOptions().
		SetValue("chunking:compressor", "sz").
		SetValue("chunking:chunk_rows", uint64(4)).
		SetValue(core.KeyAbs, 0.05)
	if err := c.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 16, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if worst := maxErr(in, dec); worst > 0.05 {
		t.Fatalf("bound violated: %g", worst)
	}
}

func TestChunkingLosslessChild(t *testing.T) {
	in := smooth([]uint64{10, 100}, 3)
	c, _ := core.NewCompressor("chunking")
	if err := c.SetOptions(core.NewOptions().
		SetValue("chunking:compressor", "shuffle").
		SetValue("chunking:chunk_rows", uint64(3))); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(in) {
		t.Fatal("lossless chunking round trip failed")
	}
}

func TestTransposeFunction(t *testing.T) {
	// 2x3 matrix transposed.
	d := core.FromFloat64s([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	tr, err := Transpose(d, []uint64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !equalDims(tr.Dims(), []uint64{3, 2}) {
		t.Fatalf("dims %v", tr.Dims())
	}
	want := []float64{1, 4, 2, 5, 3, 6}
	for i, v := range tr.Float64s() {
		if v != want[i] {
			t.Fatalf("tr[%d] = %v", i, v)
		}
	}
	back, err := Transpose(tr, invertPerm([]uint64{1, 0}))
	if err != nil || !back.Equal(d) {
		t.Fatal("double transpose should be identity")
	}
	// 3-D with a rotation permutation.
	d3 := smooth([]uint64{3, 4, 5}, 4)
	perm := []uint64{2, 0, 1}
	tr3, err := Transpose(d3, perm)
	if err != nil {
		t.Fatal(err)
	}
	back3, err := Transpose(tr3, invertPerm(perm))
	if err != nil || !back3.Equal(d3) {
		t.Fatal("3-D transpose inverse failed")
	}
	if _, err := Transpose(d, []uint64{0, 0}); err == nil {
		t.Fatal("expected invalid permutation error")
	}
}

func TestTransposeMetaRoundTrip(t *testing.T) {
	in := smooth([]uint64{8, 12, 20}, 5)
	c, _ := core.NewCompressor("transpose")
	if err := c.SetOptions(core.NewOptions().
		SetValue("transpose:compressor", "sz_threadsafe").
		SetValue(core.KeyAbs, 0.01)); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 8, 12, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !equalDims(dec.Dims(), in.Dims()) {
		t.Fatalf("dims %v", dec.Dims())
	}
	if worst := maxErr(in, dec); worst > 0.01 {
		t.Fatalf("bound violated through transpose: %g", worst)
	}
}

func TestResizeFixesZfpPadding(t *testing.T) {
	// §V: an A×B×1 field is inefficient for the 4^3-block codec; resizing
	// to A×B recovers the efficiency. Both must round trip with the bound.
	vals := smooth([]uint64{64, 64, 1}, 6)
	direct, _ := core.NewCompressor("zfp")
	if err := direct.SetOptions(core.NewOptions().SetValue(core.KeyAbs, 1e-3)); err != nil {
		t.Fatal(err)
	}
	asIs, err := core.Compress(direct, vals)
	if err != nil {
		t.Fatal(err)
	}
	resized, _ := core.NewCompressor("resize")
	newDims := core.NewData(core.DTypeUint64, 2)
	copy(newDims.Uint64s(), []uint64{64, 64})
	if err := resized.SetOptions(core.NewOptions().
		SetValue("resize:compressor", "zfp").
		Set("resize:dims", core.NewOption(newDims)).
		SetValue(core.KeyAbs, 1e-3)); err != nil {
		t.Fatal(err)
	}
	viaResize, err := core.Compress(resized, vals)
	if err != nil {
		t.Fatal(err)
	}
	if viaResize.ByteLen() >= asIs.ByteLen() {
		t.Fatalf("resize should beat padded 3-D: %d vs %d", viaResize.ByteLen(), asIs.ByteLen())
	}
	dec, err := core.Decompress(resized, viaResize, core.DTypeFloat32, 64, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !equalDims(dec.Dims(), []uint64{64, 64, 1}) {
		t.Fatalf("original dims not restored: %v", dec.Dims())
	}
	if worst := maxErr(vals, dec); worst > 1e-3 {
		t.Fatalf("bound violated: %g", worst)
	}
}

func TestSampleReducesData(t *testing.T) {
	in := smooth([]uint64{16, 10}, 7)
	c, _ := core.NewCompressor("sample")
	if err := c.SetOptions(core.NewOptions().
		SetValue("sample:stride", uint64(4)).
		SetValue("sample:compressor", "noop")); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !equalDims(dec.Dims(), []uint64{4, 10}) {
		t.Fatalf("sample dims %v", dec.Dims())
	}
	// Sampled rows must match the strided originals exactly (noop child).
	for r := 0; r < 4; r++ {
		for col := 0; col < 10; col++ {
			if dec.Float32s()[r*10+col] != in.Float32s()[r*4*10+col] {
				t.Fatalf("sample row %d mismatch", r)
			}
		}
	}
}

func TestDeltaEncodingLosslessChild(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(1000 + i*3)
	}
	in := core.FromInt64s(vals, 1000)
	c, _ := core.NewCompressor("delta_encoding")
	if err := c.SetOptions(core.NewOptions().SetValue("delta_encoding:compressor", "rle")); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeInt64, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(in) {
		t.Fatal("delta round trip failed")
	}
}

func TestLinearQuantizerBound(t *testing.T) {
	in := smooth([]uint64{50, 50}, 8)
	c, _ := core.NewCompressor("linear_quantizer")
	if err := c.SetOptions(core.NewOptions().SetValue(core.KeyAbs, 0.005)); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if worst := maxErr(in, dec); worst > 0.005+1e-9 {
		t.Fatalf("quantizer bound violated: %g", worst)
	}
	ratio := float64(in.ByteLen()) / float64(comp.ByteLen())
	if ratio < 2 {
		t.Fatalf("quantizer ratio %f too low", ratio)
	}
}

// TestTransformHeadersRejectOverflowingDims: delta_encoding and
// linear_quantizer headers whose dims product wraps uint64 (2^24 * 2^40 ≡ 0)
// must fail the shape check itself, not rely on downstream length mismatches.
func TestTransformHeadersRejectOverflowingDims(t *testing.T) {
	for _, tc := range []struct {
		name, magic string
	}{
		{"delta_encoding", deltaMagic},
		{"linear_quantizer", linQuantMagic},
	} {
		var b []byte
		b = append(b, tc.magic...)
		b = append(b, byte(core.DTypeFloat32), 2)
		b = binary.AppendUvarint(b, 1<<24)
		b = binary.AppendUvarint(b, 1<<40)
		c, err := core.NewCompressor(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		_, err = core.Decompress(c, core.NewBytes(b), core.DTypeFloat32, 4)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: overflowing dims error = %v, want ErrCorrupt", tc.name, err)
		}
	}
}

func TestFaultInjectorCorruptsStream(t *testing.T) {
	in := smooth([]uint64{32, 32}, 9)
	clean, _ := core.NewCompressor("sz_threadsafe")
	if err := clean.SetOptions(core.NewOptions().SetValue(core.KeyAbs, 0.01)); err != nil {
		t.Fatal(err)
	}
	want, err := core.Compress(clean, in)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := core.NewCompressor("fault_injector")
	if err := c.SetOptions(core.NewOptions().
		SetValue("fault_injector:compressor", "sz_threadsafe").
		SetValue("fault_injector:faults", uint64(4)).
		SetValue("fault_injector:seed", int64(7)).
		SetValue(core.KeyAbs, 0.01)); err != nil {
		t.Fatal(err)
	}
	got, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(want) {
		t.Fatal("fault injector did not flip any bits")
	}
	// Decompressing the corrupted stream must not panic (errors are fine).
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decompressor panicked on corrupted stream: %v", r)
			}
		}()
		_, _ = core.Decompress(c, got, core.DTypeFloat32, 32, 32)
	}()
}

func TestNoiseInjectorAddsBoundedNoise(t *testing.T) {
	in := smooth([]uint64{40, 40}, 10)
	c, _ := core.NewCompressor("noise_injector")
	if err := c.SetOptions(core.NewOptions().
		SetValue("noise_injector:compressor", "noop").
		SetValue("noise_injector:distribution", "uniform").
		SetValue("noise_injector:scale", 0.1).
		SetValue("noise_injector:seed", int64(3))); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	worst := maxErr(in, dec)
	if worst == 0 {
		t.Fatal("noise injector added no noise")
	}
	if worst > 0.1+1e-6 {
		t.Fatalf("uniform noise exceeded scale: %g", worst)
	}
	if err := c.SetOptions(core.NewOptions().SetValue("noise_injector:distribution", "cauchy")); err == nil {
		t.Fatal("expected distribution validation error")
	}
}

func TestSwitchMeta(t *testing.T) {
	in := smooth([]uint64{24, 24}, 11)
	c, _ := core.NewCompressor("switch")
	if err := c.SetOptions(core.NewOptions().
		SetValue("switch:active", "zfp").
		SetValue(core.KeyAbs, 0.01)); err != nil {
		t.Fatal(err)
	}
	zfpOut, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, zfpOut, core.DTypeFloat32, 24, 24)
	if err != nil {
		t.Fatal(err)
	}
	if worst := maxErr(in, dec); worst > 0.01 {
		t.Fatalf("switch/zfp bound violated: %g", worst)
	}
	// Switch at runtime.
	if err := c.SetOptions(core.NewOptions().SetValue("switch:active", "sz_threadsafe")); err != nil {
		t.Fatal(err)
	}
	szOut, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec2, err := core.Decompress(c, szOut, core.DTypeFloat32, 24, 24)
	if err != nil {
		t.Fatal(err)
	}
	if worst := maxErr(in, dec2); worst > 0.01 {
		t.Fatalf("switch/sz bound violated: %g", worst)
	}
	if err := c.CheckOptions(core.NewOptions().SetValue("switch:active", "bogus")); err == nil {
		t.Fatal("expected unknown compressor error")
	}
}

func TestCompressManyIndependent(t *testing.T) {
	bufs := make([]*core.Data, 9)
	hints := make([]*core.Data, 9)
	for i := range bufs {
		bufs[i] = smooth([]uint64{16, 16}, int64(100+i))
		hints[i] = core.NewEmpty(core.DTypeFloat32, 16, 16)
	}
	proto, _ := core.NewCompressor("sz_threadsafe")
	if err := proto.SetOptions(core.NewOptions().SetValue(core.KeyAbs, 0.02)); err != nil {
		t.Fatal(err)
	}
	comps, err := CompressMany(proto, bufs, 4)
	if err != nil {
		t.Fatal(err)
	}
	decs, err := DecompressMany(proto, comps, hints, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bufs {
		if worst := maxErr(bufs[i], decs[i]); worst > 0.02 {
			t.Fatalf("buffer %d bound violated: %g", i, worst)
		}
	}
}

func TestCompressManyDependentFeedback(t *testing.T) {
	bufs := make([]*core.Data, 5)
	for i := range bufs {
		bufs[i] = smooth([]uint64{16, 16}, int64(200+i))
	}
	proto, _ := core.NewCompressor("sz_threadsafe")
	if err := proto.SetOptions(core.NewOptions().SetValue(core.KeyAbs, 0.1)); err != nil {
		t.Fatal(err)
	}
	var ratios []float64
	fb := func(step int, results *core.Options) *core.Options {
		if r, err := results.GetFloat64("size:compression_ratio"); err == nil {
			ratios = append(ratios, r)
		}
		// Tighten the bound each step.
		return core.NewOptions().SetValue(core.KeyAbs, 0.1/float64(step+2))
	}
	comps, err := CompressManyDependent(proto, bufs, []string{"size"}, fb)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 5 || len(ratios) != 5 {
		t.Fatalf("comps %d ratios %d", len(comps), len(ratios))
	}
	// Tighter bounds mean larger streams over the steps.
	if comps[4].ByteLen() <= comps[0].ByteLen() {
		t.Fatalf("feedback did not tighten bound: %d vs %d", comps[4].ByteLen(), comps[0].ByteLen())
	}
}

func TestUnknownChildRejected(t *testing.T) {
	c, _ := core.NewCompressor("chunking")
	if err := c.SetOptions(core.NewOptions().SetValue("chunking:compressor", "nope")); err != nil {
		t.Fatal(err) // name is stored; resolution happens at use
	}
	in := smooth([]uint64{8, 8}, 12)
	if _, err := core.Compress(c, in); err == nil {
		t.Fatal("expected unknown plugin error at compress time")
	}
}
