package meta

import (
	"sync"
	"testing"

	"pressio/internal/core"
)

// TestManyStressSharedThreadSafePlugin hammers CompressManyWithMetrics and
// DecompressManyWithMetrics with one shared prototype whose plugin declares
// pressio:thread_safe=multiple (sz_threadsafe). Several batches run
// concurrently, each fanning out over its own worker pool, so under
// `go test -race` this exercises exactly the promise the declaration makes:
// clones of the same plugin, and clones of its attached metric, running in
// parallel without sharing mutable state. It is the dynamic complement to
// pressiolint's static threadsafe analyzer.
func TestManyStressSharedThreadSafePlugin(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	proto, err := core.NewCompressor("sz_threadsafe")
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.SetOptions(core.NewOptions().SetValue(core.KeyAbs, 0.05)); err != nil {
		t.Fatal(err)
	}
	if proto.ThreadSafety() != core.ThreadSafetyMultiple {
		t.Fatalf("sz_threadsafe declares %v, want ThreadSafetyMultiple", proto.ThreadSafety())
	}
	proto.SetMetrics(&tallyMetric{})

	const (
		batches    = 8
		buffers    = 12
		iterations = 3
		workers    = 4
	)
	var wg sync.WaitGroup
	errc := make(chan error, batches)
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			bufs := make([]*core.Data, buffers)
			hints := make([]*core.Data, buffers)
			for i := range bufs {
				bufs[i] = smooth([]uint64{24, 24}, int64(1000*b+i))
				hints[i] = core.NewEmpty(core.DTypeFloat32, 24, 24)
			}
			for it := 0; it < iterations; it++ {
				comps, _, err := CompressManyWithMetrics(proto, bufs, workers)
				if err != nil {
					errc <- err
					return
				}
				decs, _, err := DecompressManyWithMetrics(proto, comps, hints, workers)
				if err != nil {
					errc <- err
					return
				}
				for i := range bufs {
					if worst := maxErr(bufs[i], decs[i]); worst > 0.05 {
						t.Errorf("batch %d iter %d buffer %d: bound violated: %g", b, it, i, worst)
						return
					}
				}
			}
		}(b)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
