package fpzip

import (
	"fmt"

	"pressio/internal/core"
)

// Option keys the fpzip plugin owns.
const (
	keyPrec = "fpzip:prec"
)

// plugin adapts fpzip to the framework. fpzip has no absolute error bound
// mode; its single knob is keyPrec (0 = lossless), so it demonstrates
// a plugin whose options do not include the generic pressio:abs — clients
// discover that through introspection instead of crashing at runtime.
type plugin struct {
	prec uint64
}

func init() {
	core.RegisterCompressor("fpzip", func() core.CompressorPlugin { return &plugin{} })
}

func (p *plugin) Prefix() string  { return "fpzip" }
func (p *plugin) Version() string { return Version }

func (p *plugin) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keyPrec, p.prec)
	return o
}

func (p *plugin) SetOptions(o *core.Options) error {
	if v, err := o.GetUint64(keyPrec); err == nil {
		if v > 64 {
			return fmt.Errorf("%w: fpzip:prec %d > 64", core.ErrInvalidOption, v)
		}
		p.prec = v
	}
	return nil
}

func (p *plugin) CheckOptions(o *core.Options) error {
	clone := *p
	return clone.SetOptions(o)
}

func (p *plugin) Configuration() *core.Options {
	cfg := core.StandardConfiguration(core.ThreadSafetyMultiple, "stable", Version, false)
	cfg.SetValue("fpzip:float_only", int32(1))
	return cfg
}

func (p *plugin) CompressImpl(in, out *core.Data) error {
	var stream []byte
	var err error
	switch in.DType() {
	case core.DTypeFloat32:
		stream, err = CompressSlice(in.Float32s(), in.Dims(), Params{Precision: uint(p.prec)})
	case core.DTypeFloat64:
		stream, err = CompressSlice(in.Float64s(), in.Dims(), Params{Precision: uint(p.prec)})
	default:
		// Mirrors the real fpzip: floating point only.
		return fmt.Errorf("%w: fpzip accepts only floating point data, got %s",
			core.ErrInvalidDType, in.DType())
	}
	if err != nil {
		return err
	}
	out.Become(core.NewBytes(stream))
	return nil
}

func (p *plugin) DecompressImpl(in, out *core.Data) error {
	h, _, err := ParseHeader(in.Bytes())
	if err != nil {
		return err
	}
	switch h.DType {
	case core.DTypeFloat32:
		vals, dims, err := DecompressSlice[float32](in.Bytes())
		if err != nil {
			return err
		}
		out.Become(core.FromFloat32s(vals, dims...))
	case core.DTypeFloat64:
		vals, dims, err := DecompressSlice[float64](in.Bytes())
		if err != nil {
			return err
		}
		out.Become(core.FromFloat64s(vals, dims...))
	default:
		return ErrCorrupt
	}
	return nil
}

func (p *plugin) Clone() core.CompressorPlugin {
	clone := *p
	return &clone
}
