package fpzip

import (
	"math"
	"testing"
)

// FuzzDecompressSlice drives the predictive decoder with arbitrary bytes:
// it must never panic, and whenever it accepts a stream the decoded value
// count must match the header's declared shape. (Runs its seed corpus under
// plain `go test`; use `go test -fuzz=FuzzDecompressSlice ./internal/fpzip`
// to explore further.)
func FuzzDecompressSlice(f *testing.F) {
	good, _ := CompressSlice([]float32{1, 2, 3, 4, 5, 6}, []uint64{2, 3}, Params{})
	f.Add(good)
	lossy, _ := CompressSlice([]float32{0.5, -0.25, 3.25, 8}, []uint64{4}, Params{Precision: 16})
	f.Add(lossy)
	f.Add([]byte{})
	f.Add([]byte("FPZ1"))
	if len(good) > 8 {
		f.Add(good[:8])
		trunc := append([]byte{}, good...)
		f.Add(trunc[:len(trunc)-2])
	}
	f.Fuzz(func(t *testing.T, stream []byte) {
		vals, dims, err := DecompressSlice[float32](stream)
		if err != nil {
			return
		}
		n := uint64(1)
		for _, d := range dims {
			n *= d
		}
		if uint64(len(vals)) != n {
			t.Fatalf("accepted stream with inconsistent shape: %d vals vs dims %v", len(vals), dims)
		}
	})
}

// FuzzCompressRoundTrip feeds arbitrary float32 bit patterns through a
// full-precision compress/decompress cycle, which must be lossless
// bit-for-bit (including NaN payloads and infinities).
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64}) // [1.0, 2.0]
	f.Add(make([]byte, 32))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 4 || len(raw) > 1<<14 {
			return
		}
		n := len(raw) / 4
		vals := make([]float32, n)
		for i := range vals {
			bits := uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 |
				uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
			vals[i] = math.Float32frombits(bits)
		}
		stream, err := CompressSlice(vals, []uint64{uint64(n)}, Params{})
		if err != nil {
			t.Fatalf("lossless compress rejected valid input: %v", err)
		}
		dec, _, err := DecompressSlice[float32](stream)
		if err != nil {
			t.Fatalf("decompress of own stream failed: %v", err)
		}
		if len(dec) != n {
			t.Fatalf("length changed: %d -> %d", n, len(dec))
		}
		for i := range vals {
			if math.Float32bits(vals[i]) != math.Float32bits(dec[i]) {
				t.Fatalf("elem %d: %08x became %08x (lossless mode must be exact)",
					i, math.Float32bits(vals[i]), math.Float32bits(dec[i]))
			}
		}
	})
}
