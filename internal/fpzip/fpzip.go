// Package fpzip implements a predictive floating-point compressor in the
// style of fpzip (Lindstrom & Isenburg, TVCG'06): floats are mapped to
// order-preserving unsigned integers, predicted with a Lorenzo predictor
// over the reconstructed field, and the prediction residuals are entropy
// coded with an adaptive binary range coder (residual magnitude class
// adaptively coded, remaining bits raw).
//
// fpzip is precision-based rather than error-bound based: lossy operation
// truncates the low-order bits of the mapped integers, bounding the
// *relative* error. Full precision is exactly lossless. As in the original,
// only floating point inputs are accepted — the example the paper's §II
// uses for why a generic interface must carry datatype metadata.
package fpzip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"

	"pressio/internal/core"
	"pressio/internal/rangecoder"
)

// Version is the compressor version reported through the plugin interface.
const Version = "1.3.0-go"

// ErrCorrupt reports a malformed fpzip stream.
var ErrCorrupt = errors.New("fpzip: corrupt stream")

// Float constrains inputs to floating point element types.
type Float interface {
	~float32 | ~float64
}

// Params configures a compression call.
type Params struct {
	// Precision is the number of kept bits per value: 1..32 for float32,
	// 1..64 for float64. 0 selects full (lossless) precision.
	Precision uint
}

const magic = "FPZ1"

// monotone mapping between floats and unsigned integers: negative floats
// map below positives and uint ordering matches float ordering.
func f32ToOrd(f float32) uint64 {
	b := math.Float32bits(f)
	if b&0x80000000 != 0 {
		return uint64(^b)
	}
	return uint64(b | 0x80000000)
}

func ordToF32(u uint64) float32 {
	b := uint32(u)
	if b&0x80000000 != 0 {
		return math.Float32frombits(b &^ 0x80000000)
	}
	return math.Float32frombits(^b)
}

func f64ToOrd(f float64) uint64 {
	b := math.Float64bits(f)
	if b&0x8000000000000000 != 0 {
		return ^b
	}
	return b | 0x8000000000000000
}

func ordToF64(u uint64) float64 {
	if u&0x8000000000000000 != 0 {
		return math.Float64frombits(u &^ 0x8000000000000000)
	}
	return math.Float64frombits(^u)
}

func width[T Float]() uint {
	var zero T
	if _, ok := any(zero).(float32); ok {
		return 32
	}
	return 64
}

// geometry mirrors the sz package's reduction of arbitrary rank to a
// batched 3-D Lorenzo scan.
// maxGeomElems bounds the declared element count (and so every extent and
// partial product), keeping extent arithmetic overflow-free.
const maxGeomElems = 1 << 42

func geometry(dims []uint64) (outer, nx, ny, nz int, err error) {
	if len(dims) == 0 {
		return 0, 0, 0, 0, fmt.Errorf("fpzip: %w: no dimensions", core.ErrInvalidDims)
	}
	total := uint64(1)
	for _, d := range dims {
		if d == 0 {
			return 0, 0, 0, 0, fmt.Errorf("fpzip: %w: zero extent", core.ErrInvalidDims)
		}
		if d > maxGeomElems || total > maxGeomElems/d {
			return 0, 0, 0, 0, fmt.Errorf("fpzip: %w: declared geometry %v exceeds %d elements", core.ErrInvalidDims, dims, uint64(maxGeomElems))
		}
		total *= d
	}
	outer, nx, ny, nz = 1, 1, 1, 1
	switch len(dims) {
	case 1:
		nz = int(dims[0])
	case 2:
		ny, nz = int(dims[0]), int(dims[1])
	case 3:
		nx, ny, nz = int(dims[0]), int(dims[1]), int(dims[2])
	default:
		for _, d := range dims[:len(dims)-3] {
			outer *= int(d)
		}
		nx, ny, nz = int(dims[len(dims)-3]), int(dims[len(dims)-2]), int(dims[len(dims)-1])
	}
	if outer > maxGeomElems || nx > maxGeomElems || ny > maxGeomElems || nz > maxGeomElems {
		return 0, 0, 0, 0, fmt.Errorf("fpzip: %w: extent exceeds %d", core.ErrInvalidDims, uint64(maxGeomElems))
	}
	return outer, nx, ny, nz, nil
}

// lorenzo computes the restricted Lorenzo prediction over mapped integers.
// Arithmetic is modular, which is harmless: residuals stay small when the
// field is smooth and remain correct otherwise.
func lorenzo(r []uint64, x, y, z, ny, nz int) uint64 {
	base := (x*ny + y) * nz
	switch {
	case x > 0 && y > 0 && z > 0:
		pm := ((x-1)*ny + y) * nz
		qm := ((x-1)*ny + y - 1) * nz
		rm := (x*ny + y - 1) * nz
		return r[pm+z] + r[rm+z] + r[base+z-1] - r[qm+z] - r[pm+z-1] - r[rm+z-1] + r[qm+z-1]
	case x > 0 && y > 0:
		pm := ((x-1)*ny + y) * nz
		qm := ((x-1)*ny + y - 1) * nz
		rm := (x*ny + y - 1) * nz
		return r[pm+z] + r[rm+z] - r[qm+z]
	case x > 0 && z > 0:
		pm := ((x-1)*ny + y) * nz
		return r[pm+z] + r[base+z-1] - r[pm+z-1]
	case y > 0 && z > 0:
		rm := (x*ny + y - 1) * nz
		return r[rm+z] + r[base+z-1] - r[rm+z-1]
	case x > 0:
		return r[((x-1)*ny+y)*nz+z]
	case y > 0:
		return r[(x*ny+y-1)*nz+z]
	case z > 0:
		return r[base+z-1]
	default:
		return 0
	}
}

// coder holds the adaptive contexts: one probability per position of the
// unary magnitude-class code.
type coder struct {
	classProbs [66]rangecoder.Prob
}

func newCoder() *coder {
	var c coder
	for i := range c.classProbs {
		c.classProbs[i] = rangecoder.NewProb()
	}
	return &c
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func (c *coder) encodeResidual(enc *rangecoder.Encoder, diff int64) {
	z := zigzag(diff)
	k := uint(bits.Len64(z)) // magnitude class: 0 for z==0
	for i := uint(0); i < k; i++ {
		enc.EncodeBit(&c.classProbs[i], 1)
	}
	if k < 65 {
		enc.EncodeBit(&c.classProbs[k], 0)
	}
	if k > 1 {
		// MSB is implied; emit the k-1 low bits raw.
		rem := k - 1
		if rem > 32 {
			enc.EncodeBitsRaw(uint32(z>>32), rem-32)
			enc.EncodeBitsRaw(uint32(z), 32)
		} else {
			enc.EncodeBitsRaw(uint32(z), rem)
		}
	}
}

func (c *coder) decodeResidual(dec *rangecoder.Decoder) int64 {
	k := uint(0)
	for k < 65 && dec.DecodeBit(&c.classProbs[k]) == 1 {
		k++
	}
	if k == 0 {
		return 0
	}
	var z uint64 = 1 << (k - 1)
	if k > 1 {
		rem := k - 1
		if rem > 32 {
			z |= uint64(dec.DecodeBitsRaw(rem-32)) << 32
			z |= uint64(dec.DecodeBitsRaw(32))
		} else {
			z |= uint64(dec.DecodeBitsRaw(rem))
		}
	}
	return unzigzag(z)
}

// CompressSlice compresses vals shaped dims (C order).
func CompressSlice[T Float](vals []T, dims []uint64, p Params) ([]byte, error) {
	w := width[T]()
	prec := p.Precision
	if prec == 0 {
		prec = w
	}
	if prec > w {
		return nil, fmt.Errorf("fpzip: precision %d exceeds %d-bit width", prec, w)
	}
	outer, nx, ny, nz, err := geometry(dims)
	if err != nil {
		return nil, err
	}
	n := outer * nx * ny * nz
	if n != len(vals) {
		return nil, fmt.Errorf("fpzip: %w: dims %v describe %d elements, have %d",
			core.ErrInvalidDims, dims, n, len(vals))
	}
	shift := w - prec

	var hdr []byte
	hdr = append(hdr, magic...)
	if w == 32 {
		hdr = append(hdr, 1)
	} else {
		hdr = append(hdr, 2)
	}
	hdr = append(hdr, byte(len(dims)))
	for _, d := range dims {
		hdr = binary.AppendUvarint(hdr, d)
	}
	hdr = append(hdr, byte(prec))

	enc := rangecoder.NewEncoder()
	cdr := newCoder()
	recon := make([]uint64, nx*ny*nz)
	sliceLen := nx * ny * nz
	for o := 0; o < outer; o++ {
		src := vals[o*sliceLen : (o+1)*sliceLen]
		i := 0
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				for z := 0; z < nz; z++ {
					var u uint64
					if w == 32 {
						u = f32ToOrd(float32(src[i]))
					} else {
						u = f64ToOrd(float64(src[i]))
					}
					u >>= shift
					pred := lorenzo(recon, x, y, z, ny, nz)
					cdr.encodeResidual(enc, int64(u-pred))
					recon[i] = u
					i++
				}
			}
		}
	}
	return append(hdr, enc.Finish()...), nil
}

// Header describes a compressed stream.
type Header struct {
	DType     core.DType
	Dims      []uint64
	Precision uint
}

// ParseHeader reads the stream header.
func ParseHeader(stream []byte) (Header, int, error) {
	var h Header
	if len(stream) < 7 || string(stream[:4]) != magic {
		return h, 0, ErrCorrupt
	}
	switch stream[4] {
	case 1:
		h.DType = core.DTypeFloat32
	case 2:
		h.DType = core.DTypeFloat64
	default:
		return h, 0, ErrCorrupt
	}
	rank := int(stream[5])
	if rank == 0 || rank > 16 {
		return h, 0, ErrCorrupt
	}
	pos := 6
	h.Dims = make([]uint64, rank)
	total := uint64(1)
	for i := range h.Dims {
		v, sz := binary.Uvarint(stream[pos:])
		if sz <= 0 || v == 0 || v > 1<<40 {
			return h, 0, ErrCorrupt
		}
		h.Dims[i] = v
		total *= v
		if total > 1<<33 {
			// Sanity cap against decompression bombs: the adaptive coder
			// has no per-element minimum bit cost to check against.
			return h, 0, ErrCorrupt
		}
		pos += sz
	}
	if pos >= len(stream) {
		return h, 0, ErrCorrupt
	}
	h.Precision = uint(stream[pos])
	pos++
	return h, pos, nil
}

// DecompressSlice decodes a stream produced by CompressSlice.
func DecompressSlice[T Float](stream []byte) ([]T, []uint64, error) {
	h, pos, err := ParseHeader(stream)
	if err != nil {
		return nil, nil, err
	}
	w := width[T]()
	want := core.DTypeFloat32
	if w == 64 {
		want = core.DTypeFloat64
	}
	if h.DType != want {
		return nil, nil, fmt.Errorf("fpzip: %w: stream holds %s", core.ErrInvalidDType, h.DType)
	}
	if h.Precision == 0 || h.Precision > w {
		return nil, nil, ErrCorrupt
	}
	shift := w - h.Precision
	outer, nx, ny, nz, err := geometry(h.Dims)
	if err != nil {
		return nil, nil, err
	}
	n := outer * nx * ny * nz
	// The adaptive residual coder tops out near ~400 decoded values per
	// payload byte even on constant data where the Lorenzo prediction is
	// exact, so a genuine stream can never declare vastly more elements
	// than its payload carries. Rejecting anything past a wide margin of
	// that ratio stops decompression bombs: a dozen-byte stream must not
	// buy seconds of decode work and gigabytes of output.
	if uint64(n) > (uint64(len(stream)-pos)+2)*2048 {
		return nil, nil, fmt.Errorf("%w: %d values declared by a %d byte payload",
			ErrCorrupt, n, len(stream)-pos)
	}
	out := make([]T, n)
	dec := rangecoder.NewDecoder(stream[pos:])
	cdr := newCoder()
	recon := make([]uint64, nx*ny*nz)
	sliceLen := nx * ny * nz
	for o := 0; o < outer; o++ {
		dst := out[o*sliceLen : (o+1)*sliceLen]
		i := 0
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				for z := 0; z < nz; z++ {
					pred := lorenzo(recon, x, y, z, ny, nz)
					u := pred + uint64(cdr.decodeResidual(dec))
					if w == 32 {
						u &= 0xffffffff >> shift
					} else if shift > 0 {
						u &= ^uint64(0) >> shift
					}
					recon[i] = u
					if w == 32 {
						dst[i] = T(ordToF32(u << shift))
					} else {
						dst[i] = T(ordToF64(u << shift))
					}
					i++
				}
			}
		}
	}
	return out, h.Dims, nil
}
