package fpzip

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pressio/internal/core"
)

func TestOrdMappingRoundTrip32(t *testing.T) {
	f := func(bits uint32) bool {
		v := math.Float32frombits(bits)
		back := ordToF32(f32ToOrd(v))
		return math.Float32bits(back) == bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestOrdMappingRoundTrip64(t *testing.T) {
	f := func(bits uint64) bool {
		v := math.Float64frombits(bits)
		return math.Float64bits(ordToF64(f64ToOrd(v))) == bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestOrdMappingMonotone(t *testing.T) {
	vals := []float32{float32(math.Inf(-1)), -1e30, -1, -1e-30, 0, 1e-30, 1, 1e30, float32(math.Inf(1))}
	for i := 1; i < len(vals); i++ {
		if f32ToOrd(vals[i-1]) >= f32ToOrd(vals[i]) {
			t.Fatalf("mapping not monotone at %v < %v", vals[i-1], vals[i])
		}
	}
}

func smooth(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(math.Sin(float64(i)/20)*500 + rng.NormFloat64())
	}
	return out
}

func TestLosslessRoundTrip32(t *testing.T) {
	vals := smooth(30*40, 1)
	stream, err := CompressSlice(vals, []uint64{30, 40}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	dec, dims, err := DecompressSlice[float32](stream)
	if err != nil {
		t.Fatal(err)
	}
	if dims[0] != 30 || dims[1] != 40 {
		t.Fatalf("dims %v", dims)
	}
	for i := range vals {
		if math.Float32bits(dec[i]) != math.Float32bits(vals[i]) {
			t.Fatalf("elem %d: %x vs %x", i, math.Float32bits(dec[i]), math.Float32bits(vals[i]))
		}
	}
}

func TestLosslessRoundTrip64(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
	}
	stream, err := CompressSlice(vals, []uint64{10, 10, 10}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecompressSlice[float64](stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Float64bits(dec[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("elem %d mismatch", i)
		}
	}
}

func TestLosslessPropertyArbitraryBits(t *testing.T) {
	// Lossless mode must round-trip any bit pattern, including NaN and Inf.
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float32, len(raw))
		for i, b := range raw {
			vals[i] = math.Float32frombits(b)
		}
		stream, err := CompressSlice(vals, []uint64{uint64(len(vals))}, Params{})
		if err != nil {
			return false
		}
		dec, _, err := DecompressSlice[float32](stream)
		if err != nil {
			return false
		}
		for i := range vals {
			if math.Float32bits(dec[i]) != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLossyPrecisionMonotone(t *testing.T) {
	vals := smooth(4096, 3)
	dims := []uint64{64, 64}
	var prevSize int = 1 << 30
	var prevErr float64
	for _, prec := range []uint{32, 24, 16, 10} {
		stream, err := CompressSlice(vals, dims, Params{Precision: prec})
		if err != nil {
			t.Fatal(err)
		}
		dec, _, err := DecompressSlice[float32](stream)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for i := range vals {
			if d := math.Abs(float64(dec[i]-vals[i]) / math.Max(1e-30, math.Abs(float64(vals[i])))); d > worst {
				worst = d
			}
		}
		if len(stream) > prevSize {
			t.Fatalf("prec %d: stream grew (%d > %d)", prec, len(stream), prevSize)
		}
		if worst < prevErr {
			t.Fatalf("prec %d: error should not shrink with less precision", prec)
		}
		prevSize, prevErr = len(stream), worst
	}
	// 16 mantissa-ish bits keep relative error small.
	stream, _ := CompressSlice(vals, dims, Params{Precision: 20})
	dec, _, _ := DecompressSlice[float32](stream)
	for i := range vals {
		rel := math.Abs(float64(dec[i]-vals[i])) / math.Max(1e-3, math.Abs(float64(vals[i])))
		if rel > 1e-2 {
			t.Fatalf("elem %d rel error %g too large for 20-bit precision", i, rel)
		}
	}
}

func TestSmoothCompressesWell(t *testing.T) {
	vals := smooth(1<<14, 4)
	stream, err := CompressSlice(vals, []uint64{128, 128}, Params{Precision: 16})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(vals)*4) / float64(len(stream)); ratio < 3 {
		t.Fatalf("ratio %f too low", ratio)
	}
}

func TestInvalidParams(t *testing.T) {
	vals := []float32{1, 2}
	if _, err := CompressSlice(vals, []uint64{2}, Params{Precision: 40}); err == nil {
		t.Fatal("expected precision error for f32")
	}
	if _, err := CompressSlice(vals, []uint64{3}, Params{}); err == nil {
		t.Fatal("expected dims mismatch")
	}
}

func TestCorruptStreams(t *testing.T) {
	vals := smooth(64, 5)
	stream, err := CompressSlice(vals, []uint64{64}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 2, 5} {
		if _, _, err := DecompressSlice[float32](stream[:cut]); err == nil {
			t.Fatalf("truncation %d: expected error", cut)
		}
	}
	if _, _, err := DecompressSlice[float64](stream); err == nil {
		t.Fatal("expected dtype mismatch")
	}
}

func TestPluginFloatOnly(t *testing.T) {
	c, err := core.NewCompressor("fpzip")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Compress(c, core.FromInt32s([]int32{1, 2, 3})); err == nil {
		t.Fatal("fpzip must reject integer data")
	}
	vals := smooth(256, 6)
	in := core.FromFloat32s(vals, 16, 16)
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(in) {
		t.Fatal("default (lossless) round trip failed")
	}
}

func BenchmarkCompressLossless(b *testing.B) {
	vals := smooth(1<<16, 1)
	dims := []uint64{256, 256}
	b.SetBytes(int64(len(vals) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressSlice(vals, dims, Params{}); err != nil {
			b.Fatal(err)
		}
	}
}
