// Package perfledger measures the performance envelope of the pressio stack
// — codec-stage throughput, allocation rates, and serving latency — and
// records it as a schema-versioned JSON ledger that is committed alongside
// the code (BENCH_<date>.json at the repo root).
//
// A committed ledger turns "did this PR slow us down?" into a diffable
// question: scripts/perf-ledger.sh records a fresh ledger on the current
// tree and Compare gates it against the most recent committed one with
// generous tolerances (ledgers are recorded on whatever hardware the author
// or CI runner had, so the gate only flags order-of-magnitude regressions,
// not noise).
package perfledger

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"pressio/internal/bitstream"
	"pressio/internal/core"
	"pressio/internal/daemon"
	"pressio/internal/huffman"
	"pressio/internal/rangecoder"
	"pressio/internal/sdrbench"
	"pressio/internal/service"
	"pressio/internal/store"
	"pressio/internal/trace"

	// The ledger drives real compressor stacks.
	_ "pressio/internal/lossless"
	_ "pressio/internal/meta"
	_ "pressio/internal/sz"
	_ "pressio/internal/zfp"
)

// SchemaVersion identifies the ledger JSON layout. Bump it when fields
// change incompatibly; Compare refuses to gate across schema versions.
const SchemaVersion = 1

// Stage is one measured pipeline stage.
type Stage struct {
	// Name identifies the stage (e.g. "huffman.encode", "sz.compress").
	Name string `json:"name"`
	// BytesPerOp is the payload processed by one operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// Ops is how many operations the measurement averaged over.
	Ops int `json:"ops"`
	// NsPerOp is the mean wall time of one operation.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is the resulting throughput (payload MB per second).
	MBPerS float64 `json:"mb_per_s"`
	// AllocsPerOp and AllocBytesPerOp are heap allocation rates.
	AllocsPerOp     float64 `json:"allocs_per_op"`
	AllocBytesPerOp float64 `json:"alloc_bytes_per_op"`
}

// DaemonStats is the serving-latency section: pressiod measured in-process
// under concurrent load.
type DaemonStats struct {
	Requests     int     `json:"requests"`
	Concurrency  int     `json:"concurrency"`
	PayloadBytes int64   `json:"payload_bytes"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
	Errors       int     `json:"errors"`
}

// Ledger is one recorded performance snapshot.
type Ledger struct {
	SchemaVersion int          `json:"schema_version"`
	Date          string       `json:"date"`
	GoVersion     string       `json:"go_version"`
	GOOS          string       `json:"goos"`
	GOARCH        string       `json:"goarch"`
	Quick         bool         `json:"quick"`
	Stages        []Stage      `json:"stages"`
	Daemon        *DaemonStats `json:"daemon,omitempty"`
}

// Options configures a ledger run.
type Options struct {
	// Quick shrinks iteration counts (never payload sizes) for CI smoke
	// runs. The numbers are noisier but stay comparable with full-mode
	// ledgers, and the run finishes in seconds.
	Quick bool
	// Seed fixes the synthetic datasets.
	Seed int64
	// SkipDaemon omits the serving-latency section (useful in sandboxes
	// that cannot bind sockets).
	SkipDaemon bool
}

// Run measures every stage and returns the ledger.
func Run(opts Options) (*Ledger, error) {
	led := &Ledger{
		SchemaVersion: SchemaVersion,
		Date:          time.Now().UTC().Format("2006-01-02"),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Quick:         opts.Quick,
	}
	if opts.Seed == 0 {
		opts.Seed = 20210101
	}

	stages := []func(Options) (Stage, error){
		stageHuffmanEncode, stageHuffmanDecode,
		stageRangecoderEncode, stageRangecoderDecode,
		stageBitstreamWrite, stageBitstreamRead,
		stageCodecCompress("sz_threadsafe"), stageCodecDecompress("sz_threadsafe"),
		stageCodecCompress("zfp"), stageCodecDecompress("zfp"),
		stageStorePut, stageStoreGet, stageStoreReplay,
	}
	for _, f := range stages {
		s, err := f(opts)
		if err != nil {
			return nil, err
		}
		led.Stages = append(led.Stages, s)
	}

	if !opts.SkipDaemon {
		ds, err := measureDaemon(opts)
		if err != nil {
			return nil, err
		}
		led.Daemon = ds
	}
	return led, nil
}

// opsFor picks the iteration count: enough ops to average out scheduler
// noise, fewer in quick mode. Quick mode only ever reduces repetitions —
// payload sizes stay identical to full runs, so per-op numbers (MB/s,
// allocs/op) stay comparable with a full-mode committed baseline and the
// regression gate is not biased by amortization differences.
func opsFor(opts Options, full, quick int) int {
	if opts.Quick {
		return quick
	}
	return full
}

// measure times ops calls of fn and samples heap-allocation deltas around
// the loop. fn must do the same work every call.
func measure(name string, bytesPerOp int64, ops int, fn func() error) (Stage, error) {
	// Warm up once so lazy initialization does not land in the measurement.
	if err := fn(); err != nil {
		return Stage{}, fmt.Errorf("%s: %w", name, err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < ops; i++ {
		if err := fn(); err != nil {
			return Stage{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	nsPerOp := float64(elapsed.Nanoseconds()) / float64(ops)
	s := Stage{
		Name:            name,
		BytesPerOp:      bytesPerOp,
		Ops:             ops,
		NsPerOp:         nsPerOp,
		AllocsPerOp:     float64(after.Mallocs-before.Mallocs) / float64(ops),
		AllocBytesPerOp: float64(after.TotalAlloc-before.TotalAlloc) / float64(ops),
	}
	if nsPerOp > 0 {
		s.MBPerS = float64(bytesPerOp) / (nsPerOp / 1e9) / 1e6
	}
	return s, nil
}

// ledgerSymbols builds a deterministic quantizer-shaped symbol stream: a
// peaked distribution like the quantization bins SZ feeds to its entropy
// stage, so the huffman numbers reflect realistic codeword lengths.
func ledgerSymbols(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	syms := make([]uint32, n)
	for i := range syms {
		v := int(rng.NormFloat64()*12) + 128
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		syms[i] = uint32(v)
	}
	return syms
}

func stageHuffmanEncode(opts Options) (Stage, error) {
	const n = 1 << 18
	syms := ledgerSymbols(n, opts.Seed)
	return measure("huffman.encode", 4*n, opsFor(opts, 40, 5), func() error {
		_, err := huffman.Encode(syms, 256)
		return err
	})
}

func stageHuffmanDecode(opts Options) (Stage, error) {
	const n = 1 << 18
	syms := ledgerSymbols(n, opts.Seed)
	enc, err := huffman.Encode(syms, 256)
	if err != nil {
		return Stage{}, err
	}
	return measure("huffman.decode", 4*n, opsFor(opts, 40, 5), func() error {
		_, _, err := huffman.Decode(enc)
		return err
	})
}

func stageRangecoderEncode(opts Options) (Stage, error) {
	const nbits = 1 << 20
	bits := make([]int, nbits)
	rng := rand.New(rand.NewSource(opts.Seed))
	for i := range bits {
		if rng.Float64() < 0.8 { // skewed, so the adaptive model has work to do
			bits[i] = 1
		}
	}
	return measure("rangecoder.encode", nbits/8, opsFor(opts, 20, 3), func() error {
		e := rangecoder.NewEncoder()
		p := rangecoder.NewProb()
		for _, b := range bits {
			e.EncodeBit(&p, b)
		}
		e.Finish()
		return nil
	})
}

func stageRangecoderDecode(opts Options) (Stage, error) {
	const nbits = 1 << 20
	bits := make([]int, nbits)
	rng := rand.New(rand.NewSource(opts.Seed))
	for i := range bits {
		if rng.Float64() < 0.8 {
			bits[i] = 1
		}
	}
	e := rangecoder.NewEncoder()
	p := rangecoder.NewProb()
	for _, b := range bits {
		e.EncodeBit(&p, b)
	}
	buf := e.Finish()
	return measure("rangecoder.decode", nbits/8, opsFor(opts, 20, 3), func() error {
		d := rangecoder.NewDecoder(buf)
		q := rangecoder.NewProb()
		for i := 0; i < nbits; i++ {
			d.DecodeBit(&q)
		}
		return nil
	})
}

func stageBitstreamWrite(opts Options) (Stage, error) {
	const n = 1 << 18
	const width = 13 // zfp-style odd width exercises the cross-word path
	return measure("bitstream.write", n*width/8, opsFor(opts, 40, 5), func() error {
		w := bitstream.NewWriter(n * width / 8)
		for i := 0; i < n; i++ {
			w.WriteBits(uint64(i)&((1<<width)-1), width)
		}
		w.Bytes()
		return nil
	})
}

func stageBitstreamRead(opts Options) (Stage, error) {
	const n = 1 << 18
	const width = 13
	w := bitstream.NewWriter(n * width / 8)
	for i := 0; i < n; i++ {
		w.WriteBits(uint64(i)&((1<<width)-1), width)
	}
	buf := w.Bytes()
	return measure("bitstream.read", n*width/8, opsFor(opts, 40, 5), func() error {
		r := bitstream.NewReader(buf)
		for i := 0; i < n; i++ {
			r.ReadBits(width)
		}
		return nil
	})
}

// ledgerDataset is the float32 field the codec stages compress. The scale
// is the same in quick and full runs (only repetitions shrink), so the
// throughput numbers stay comparable across modes.
func ledgerDataset(opts Options) (*core.Data, error) {
	d, ok := sdrbench.Generate(sdrbench.NameScaleLetKF, 2, opts.Seed)
	if !ok {
		return nil, fmt.Errorf("perfledger: unknown dataset %q", sdrbench.NameScaleLetKF)
	}
	return d, nil
}

func newLedgerCompressor(name string) (*core.Compressor, error) {
	c, err := core.NewCompressor(name)
	if err != nil {
		return nil, err
	}
	if err := c.SetOptions(core.NewOptions().SetValue(core.KeyAbs, 1e-3)); err != nil {
		return nil, err
	}
	return c, nil
}

func stageCodecCompress(name string) func(Options) (Stage, error) {
	return func(opts Options) (Stage, error) {
		in, err := ledgerDataset(opts)
		if err != nil {
			return Stage{}, err
		}
		c, err := newLedgerCompressor(name)
		if err != nil {
			return Stage{}, err
		}
		return measure(name+".compress", int64(in.ByteLen()), opsFor(opts, 10, 2), func() error {
			_, err := core.Compress(c, in)
			return err
		})
	}
}

func stageCodecDecompress(name string) func(Options) (Stage, error) {
	return func(opts Options) (Stage, error) {
		in, err := ledgerDataset(opts)
		if err != nil {
			return Stage{}, err
		}
		c, err := newLedgerCompressor(name)
		if err != nil {
			return Stage{}, err
		}
		comp, err := core.Compress(c, in)
		if err != nil {
			return Stage{}, err
		}
		return measure(name+".decompress", int64(in.ByteLen()), opsFor(opts, 10, 2), func() error {
			_, err := core.Decompress(c, comp, in.DType(), in.Dims()...)
			return err
		})
	}
}

// ledgerStoreData is the 1 MiB float32 payload the object-store stages move.
// Uncompressed (no chunk filter), so the numbers isolate the store's own
// costs: journal framing and fsync, segment I/O, and CRC32-C verification.
func ledgerStoreData(opts Options) *core.Data {
	const n = 1 << 18
	rng := rand.New(rand.NewSource(opts.Seed))
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(rng.NormFloat64())
	}
	return core.FromFloat32s(vals, n)
}

// stageStorePut measures the acknowledged-write path: journal append with
// group-commit fsync, then the segment write. Every op stores a fresh name
// so nothing amortizes across ops; checkpointing is disabled so the journal
// cost stays in every measurement.
func stageStorePut(opts Options) (Stage, error) {
	dir, err := os.MkdirTemp("", "perfledger-store")
	if err != nil {
		return Stage{}, err
	}
	defer os.RemoveAll(dir)
	s, err := store.Open(dir, store.Options{CheckpointBytes: -1})
	if err != nil {
		return Stage{}, err
	}
	defer s.Close()
	in := ledgerStoreData(opts)
	i := 0
	return measure("store.put", int64(in.ByteLen()), opsFor(opts, 30, 5), func() error {
		i++
		_, err := s.Put(fmt.Sprintf("bench/put-%d", i), in, store.PutOptions{ChunkRows: 1 << 15})
		return err
	})
}

// stageStoreGet measures the read path: chunk reads, CRC verification, and
// reassembly of a multi-chunk object.
func stageStoreGet(opts Options) (Stage, error) {
	dir, err := os.MkdirTemp("", "perfledger-store")
	if err != nil {
		return Stage{}, err
	}
	defer os.RemoveAll(dir)
	s, err := store.Open(dir, store.Options{CheckpointBytes: -1})
	if err != nil {
		return Stage{}, err
	}
	defer s.Close()
	in := ledgerStoreData(opts)
	if _, err := s.Put("bench/get", in, store.PutOptions{ChunkRows: 1 << 15}); err != nil {
		return Stage{}, err
	}
	return measure("store.get", int64(in.ByteLen()), opsFor(opts, 30, 5), func() error {
		_, _, err := s.Get("bench/get")
		return err
	})
}

// stageStoreReplay measures crash recovery: Open on a directory whose whole
// state lives in the journal (never checkpointed), so every op replays all
// records and re-verifies every chunk — the startup cost that gates /readyz.
func stageStoreReplay(opts Options) (Stage, error) {
	dir, err := os.MkdirTemp("", "perfledger-store")
	if err != nil {
		return Stage{}, err
	}
	defer os.RemoveAll(dir)
	s, err := store.Open(dir, store.Options{CheckpointBytes: -1})
	if err != nil {
		return Stage{}, err
	}
	in := ledgerStoreData(opts)
	const objects = 8
	for i := 0; i < objects; i++ {
		if _, err := s.Put(fmt.Sprintf("bench/replay-%d", i), in, store.PutOptions{ChunkRows: 1 << 15}); err != nil {
			return Stage{}, err
		}
	}
	if err := s.Close(); err != nil {
		return Stage{}, err
	}
	return measure("store.replay", objects*int64(in.ByteLen()), opsFor(opts, 10, 2), func() error {
		s, err := store.Open(dir, store.Options{CheckpointBytes: -1})
		if err != nil {
			return err
		}
		return s.Close()
	})
}

// measureDaemon boots pressiod in-process on a loopback port and measures
// end-to-end /compress latency under concurrent load — the same number an
// operator sees from the edge, breaker and bulkheads included.
func measureDaemon(opts Options) (*DaemonStats, error) {
	service.ResetShared()
	trace.ResetTelemetry()
	concurrency := 8
	requests := opsFor(opts, 400, 60)
	in, err := ledgerDataset(opts)
	if err != nil {
		return nil, err
	}
	payload := in.Bytes()
	dims := in.Dims()
	dimsCSV := make([]string, len(dims))
	for i, v := range dims {
		dimsCSV[i] = fmt.Sprint(v)
	}
	url := "/compress?dims=" + strings.Join(dimsCSV, ",") + "&dtype=float32"

	d, err := daemon.New(daemon.Config{
		Addr:        "127.0.0.1:0",
		Compressor:  "sz_threadsafe",
		Options:     []string{"pressio:abs=0.001"},
		Concurrency: 4,
		MemBudget:   1 << 30,
		QueueDepth:  2 * requests,
		LameDuck:    time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	if err := d.Start(); err != nil {
		return nil, err
	}
	defer func() { _ = d.Drain() }()
	target := "http://" + d.Addr() + url

	latencies := make([]time.Duration, requests)
	errs := make([]bool, requests)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				start := time.Now()
				resp, err := http.Post(target, "application/octet-stream", bytes.NewReader(payload))
				latencies[i] = time.Since(start)
				if err != nil {
					errs[i] = true
					continue
				}
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs[i] = true
				}
			}
		}()
	}
	for i := 0; i < requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	nerr := 0
	for _, e := range errs {
		if e {
			nerr++
		}
	}
	pct := func(p float64) float64 {
		idx := int(math.Ceil(p*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return float64(sorted[idx]) / float64(time.Millisecond)
	}
	return &DaemonStats{
		Requests:     requests,
		Concurrency:  concurrency,
		PayloadBytes: int64(len(payload)),
		P50Ms:        pct(0.50),
		P99Ms:        pct(0.99),
		MaxMs:        float64(sorted[len(sorted)-1]) / float64(time.Millisecond),
		Errors:       nerr,
	}, nil
}

// WriteFile writes the ledger as indented JSON.
func WriteFile(path string, led *Ledger) error {
	b, err := json.MarshalIndent(led, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadFile loads a ledger and checks its schema version.
func ReadFile(path string) (*Ledger, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var led Ledger
	if err := json.Unmarshal(b, &led); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if led.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%s: schema version %d, this build understands %d",
			path, led.SchemaVersion, SchemaVersion)
	}
	return &led, nil
}

// FindLatest returns the lexicographically greatest BENCH_<date>.json in
// dir — with ISO dates that is the most recent — or "" when none exist.
func FindLatest(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", nil
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}
