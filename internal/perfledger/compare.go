package perfledger

import (
	"fmt"
	"strings"
)

// Tolerance bounds how much worse a candidate ledger may be than the
// baseline before the gate fails. The defaults are deliberately loose:
// committed ledgers come from whatever machine the author had, CI runners
// vary wildly, and the gate exists to catch order-of-magnitude regressions
// (an accidental O(n²), a hot-path allocation explosion), not 10% noise.
type Tolerance struct {
	// MaxThroughputDrop is the allowed fractional MB/s loss (0.6 = the
	// candidate may be 60% slower).
	MaxThroughputDrop float64
	// MaxAllocGrowth is the allowed fractional allocs/op growth, and
	// AllocSlack an absolute allowance on top (small counts jitter).
	MaxAllocGrowth float64
	AllocSlack     float64
	// MaxP99Growth is the allowed multiplicative p99 growth, and P99SlackMs
	// an absolute allowance on top.
	MaxP99Growth float64
	P99SlackMs   float64
}

// DefaultTolerance is the gate configuration scripts/check.sh uses.
func DefaultTolerance() Tolerance {
	return Tolerance{
		MaxThroughputDrop: 0.60,
		MaxAllocGrowth:    0.25,
		AllocSlack:        2,
		MaxP99Growth:      3.0,
		P99SlackMs:        5,
	}
}

// Delta is one compared metric.
type Delta struct {
	// Metric names the compared quantity, e.g. "huffman.encode MB/s".
	Metric string
	// Base and Cand are the baseline and candidate values.
	Base float64
	Cand float64
	// Pct is the relative change in percent (positive = candidate larger).
	Pct float64
	// Regressed marks deltas that exceed the tolerance in the bad
	// direction.
	Regressed bool
}

// Comparison is the result of gating a candidate ledger against a baseline.
type Comparison struct {
	Deltas []Delta
	// Missing lists baseline stages absent from the candidate — a silently
	// dropped measurement fails the gate, otherwise deleting a stage would
	// hide its regression.
	Missing []string
}

// OK reports whether the candidate passed.
func (c *Comparison) OK() bool {
	if len(c.Missing) > 0 {
		return false
	}
	for _, d := range c.Deltas {
		if d.Regressed {
			return false
		}
	}
	return true
}

func pctChange(base, cand float64) float64 {
	if base == 0 {
		return 0
	}
	return (cand - base) / base * 100
}

// Compare gates cand against base. Both must carry the current schema
// version (ReadFile enforces that for loaded files).
func Compare(base, cand *Ledger, tol Tolerance) *Comparison {
	out := &Comparison{}
	candStages := make(map[string]Stage, len(cand.Stages))
	for _, s := range cand.Stages {
		candStages[s.Name] = s
	}
	for _, b := range base.Stages {
		c, ok := candStages[b.Name]
		if !ok {
			out.Missing = append(out.Missing, b.Name)
			continue
		}
		out.Deltas = append(out.Deltas, Delta{
			Metric:    b.Name + " MB/s",
			Base:      b.MBPerS,
			Cand:      c.MBPerS,
			Pct:       pctChange(b.MBPerS, c.MBPerS),
			Regressed: b.MBPerS > 0 && c.MBPerS < b.MBPerS*(1-tol.MaxThroughputDrop),
		})
		out.Deltas = append(out.Deltas, Delta{
			Metric:    b.Name + " allocs/op",
			Base:      b.AllocsPerOp,
			Cand:      c.AllocsPerOp,
			Pct:       pctChange(b.AllocsPerOp, c.AllocsPerOp),
			Regressed: c.AllocsPerOp > b.AllocsPerOp*(1+tol.MaxAllocGrowth)+tol.AllocSlack,
		})
	}
	if base.Daemon != nil && cand.Daemon != nil {
		b, c := base.Daemon, cand.Daemon
		out.Deltas = append(out.Deltas,
			Delta{
				Metric: "daemon p50 ms", Base: b.P50Ms, Cand: c.P50Ms,
				Pct: pctChange(b.P50Ms, c.P50Ms),
				// p50 is informational: only p99 gates, the tail is what
				// pages people.
			},
			Delta{
				Metric: "daemon p99 ms", Base: b.P99Ms, Cand: c.P99Ms,
				Pct:       pctChange(b.P99Ms, c.P99Ms),
				Regressed: c.P99Ms > b.P99Ms*tol.MaxP99Growth+tol.P99SlackMs,
			},
			Delta{
				Metric: "daemon errors", Base: float64(b.Errors), Cand: float64(c.Errors),
				Pct:       pctChange(float64(b.Errors), float64(c.Errors)),
				Regressed: c.Errors > b.Errors,
			})
	}
	return out
}

// MarkdownTable renders the comparison as a GitHub-flavored markdown table
// (the CI job writes it to the step summary).
func (c *Comparison) MarkdownTable() string {
	var b strings.Builder
	b.WriteString("| metric | baseline | candidate | delta | gate |\n")
	b.WriteString("|---|---:|---:|---:|---|\n")
	for _, d := range c.Deltas {
		gate := "ok"
		if d.Regressed {
			gate = "**REGRESSED**"
		}
		fmt.Fprintf(&b, "| %s | %.2f | %.2f | %+.1f%% | %s |\n",
			d.Metric, d.Base, d.Cand, d.Pct, gate)
	}
	for _, m := range c.Missing {
		fmt.Fprintf(&b, "| %s | — | missing | — | **MISSING** |\n", m)
	}
	return b.String()
}

// Report renders the comparison as an aligned plain-text table for
// terminals, one metric per line.
func (c *Comparison) Report() string {
	var b strings.Builder
	for _, d := range c.Deltas {
		gate := "ok"
		if d.Regressed {
			gate = "REGRESSED"
		}
		fmt.Fprintf(&b, "%-32s %12.2f -> %12.2f  %+7.1f%%  %s\n",
			d.Metric, d.Base, d.Cand, d.Pct, gate)
	}
	for _, m := range c.Missing {
		fmt.Fprintf(&b, "%-32s MISSING from candidate\n", m)
	}
	return b.String()
}

// Report renders a ledger as an aligned plain-text table.
func (l *Ledger) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "perf ledger %s (schema %d, %s %s/%s, quick=%v)\n",
		l.Date, l.SchemaVersion, l.GoVersion, l.GOOS, l.GOARCH, l.Quick)
	fmt.Fprintf(&b, "%-24s %12s %12s %12s %14s\n", "stage", "MB/s", "ns/op", "allocs/op", "bytes/op")
	for _, s := range l.Stages {
		fmt.Fprintf(&b, "%-24s %12.1f %12.0f %12.1f %14d\n",
			s.Name, s.MBPerS, s.NsPerOp, s.AllocsPerOp, s.BytesPerOp)
	}
	if l.Daemon != nil {
		d := l.Daemon
		fmt.Fprintf(&b, "daemon: %d reqs x %d B at concurrency %d: p50 %.2fms p99 %.2fms max %.2fms errors %d\n",
			d.Requests, d.PayloadBytes, d.Concurrency, d.P50Ms, d.P99Ms, d.MaxMs, d.Errors)
	}
	return b.String()
}
