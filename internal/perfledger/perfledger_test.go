package perfledger

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickOpts keeps the measurement loop tiny; the tests check plumbing, not
// numbers.
func quickOpts() Options { return Options{Quick: true, Seed: 7} }

func TestRunQuickProducesAllStages(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real codec measurements")
	}
	led, err := Run(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if led.SchemaVersion != SchemaVersion {
		t.Errorf("schema version %d", led.SchemaVersion)
	}
	if !led.Quick || led.GoVersion == "" || led.Date == "" {
		t.Errorf("metadata incomplete: %+v", led)
	}
	want := []string{
		"huffman.encode", "huffman.decode",
		"rangecoder.encode", "rangecoder.decode",
		"bitstream.write", "bitstream.read",
		"sz_threadsafe.compress", "sz_threadsafe.decompress",
		"zfp.compress", "zfp.decompress",
	}
	got := map[string]Stage{}
	for _, s := range led.Stages {
		got[s.Name] = s
	}
	for _, name := range want {
		s, ok := got[name]
		if !ok {
			t.Errorf("missing stage %q", name)
			continue
		}
		if s.MBPerS <= 0 || s.NsPerOp <= 0 || s.BytesPerOp <= 0 || s.Ops <= 0 {
			t.Errorf("stage %q has non-positive measurements: %+v", name, s)
		}
	}
	if led.Daemon == nil {
		t.Fatal("daemon section missing")
	}
	d := led.Daemon
	if d.Errors != 0 {
		t.Errorf("daemon measurement saw %d errors", d.Errors)
	}
	if d.P50Ms <= 0 || d.P99Ms < d.P50Ms || d.MaxMs < d.P99Ms {
		t.Errorf("daemon percentiles inconsistent: %+v", d)
	}

	// Round-trip through the file format.
	path := filepath.Join(t.TempDir(), "BENCH_2026-01-01.json")
	if err := WriteFile(path, led); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Stages) != len(led.Stages) || back.Date != led.Date {
		t.Errorf("round-trip mismatch: %d stages vs %d", len(back.Stages), len(led.Stages))
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_2026-01-01.json")
	if err := os.WriteFile(path, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Errorf("want schema-version error, got %v", err)
	}
}

func TestFindLatest(t *testing.T) {
	dir := t.TempDir()
	latest, err := FindLatest(dir)
	if err != nil || latest != "" {
		t.Fatalf("empty dir: %q, %v", latest, err)
	}
	for _, name := range []string{"BENCH_2026-01-05.json", "BENCH_2025-12-31.json", "BENCH_2026-02-01.json", "other.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	latest, err = FindLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(latest) != "BENCH_2026-02-01.json" {
		t.Errorf("latest = %q", latest)
	}
}

func baseLedger() *Ledger {
	return &Ledger{
		SchemaVersion: SchemaVersion,
		Stages: []Stage{
			{Name: "huffman.encode", MBPerS: 100, AllocsPerOp: 10},
			{Name: "sz.compress", MBPerS: 50, AllocsPerOp: 4},
		},
		Daemon: &DaemonStats{P50Ms: 2, P99Ms: 10, Errors: 0},
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	cand := &Ledger{
		SchemaVersion: SchemaVersion,
		Stages: []Stage{
			// 50% slower and a couple more allocs: inside the loose gate.
			{Name: "huffman.encode", MBPerS: 50, AllocsPerOp: 12},
			{Name: "sz.compress", MBPerS: 60, AllocsPerOp: 4},
		},
		Daemon: &DaemonStats{P50Ms: 4, P99Ms: 20, Errors: 0},
	}
	cmp := Compare(baseLedger(), cand, DefaultTolerance())
	if !cmp.OK() {
		t.Fatalf("should pass:\n%s", cmp.Report())
	}
	if len(cmp.Deltas) == 0 {
		t.Fatal("no deltas produced")
	}
}

func TestCompareFlagsThroughputCollapse(t *testing.T) {
	cand := &Ledger{
		SchemaVersion: SchemaVersion,
		Stages: []Stage{
			{Name: "huffman.encode", MBPerS: 10, AllocsPerOp: 10}, // 90% drop
			{Name: "sz.compress", MBPerS: 50, AllocsPerOp: 4},
		},
		Daemon: &DaemonStats{P50Ms: 2, P99Ms: 10},
	}
	cmp := Compare(baseLedger(), cand, DefaultTolerance())
	if cmp.OK() {
		t.Fatal("90% throughput drop must fail the gate")
	}
	found := false
	for _, d := range cmp.Deltas {
		if d.Metric == "huffman.encode MB/s" && d.Regressed {
			found = true
		}
		if d.Metric == "sz.compress MB/s" && d.Regressed {
			t.Error("unregressed stage flagged")
		}
	}
	if !found {
		t.Errorf("collapsed stage not flagged:\n%s", cmp.Report())
	}
}

func TestCompareFlagsAllocExplosionAndTailLatency(t *testing.T) {
	cand := &Ledger{
		SchemaVersion: SchemaVersion,
		Stages: []Stage{
			{Name: "huffman.encode", MBPerS: 100, AllocsPerOp: 100}, // 10x allocs
			{Name: "sz.compress", MBPerS: 50, AllocsPerOp: 4},
		},
		Daemon: &DaemonStats{P50Ms: 2, P99Ms: 200}, // 20x p99
	}
	cmp := Compare(baseLedger(), cand, DefaultTolerance())
	regressed := map[string]bool{}
	for _, d := range cmp.Deltas {
		if d.Regressed {
			regressed[d.Metric] = true
		}
	}
	if !regressed["huffman.encode allocs/op"] {
		t.Error("alloc explosion not flagged")
	}
	if !regressed["daemon p99 ms"] {
		t.Error("p99 explosion not flagged")
	}
	if regressed["daemon p50 ms"] {
		t.Error("p50 is informational and must not gate")
	}
}

func TestCompareFlagsMissingStage(t *testing.T) {
	cand := &Ledger{
		SchemaVersion: SchemaVersion,
		Stages: []Stage{
			{Name: "huffman.encode", MBPerS: 100, AllocsPerOp: 10},
			// sz.compress silently dropped
		},
	}
	cmp := Compare(baseLedger(), cand, DefaultTolerance())
	if cmp.OK() {
		t.Fatal("dropping a measured stage must fail the gate")
	}
	if len(cmp.Missing) != 1 || cmp.Missing[0] != "sz.compress" {
		t.Errorf("missing = %v", cmp.Missing)
	}
	if !strings.Contains(cmp.MarkdownTable(), "MISSING") {
		t.Error("markdown table does not surface the missing stage")
	}
}

func TestMarkdownTableShape(t *testing.T) {
	cmp := Compare(baseLedger(), baseLedger(), DefaultTolerance())
	md := cmp.MarkdownTable()
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines) < 3 {
		t.Fatalf("table too short:\n%s", md)
	}
	if !strings.HasPrefix(lines[0], "| metric |") || !strings.HasPrefix(lines[1], "|---") {
		t.Errorf("bad header:\n%s", md)
	}
	for _, l := range lines[2:] {
		if strings.Count(l, "|") != 6 {
			t.Errorf("row has wrong column count: %q", l)
		}
	}
}
