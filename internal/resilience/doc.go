// Package resilience is the fault-tolerance layer of the framework: it
// makes "what happens when a compressor misbehaves?" answerable generically,
// once, above every plugin — the same leverage the generic interface gives
// policy code in the paper.
//
// Three pieces compose:
//
//   - The "guard" meta-compressor wraps any child compressor and converts
//     panics in plugin code to errors, enforces per-call deadlines with a
//     watchdog goroutine, and retries transient failures (core.IsTransient)
//     with capped exponential backoff plus deterministic jitter.
//   - The "fallback" meta-compressor degrades gracefully through an ordered
//     chain of tiers (e.g. sz → zfp → a lossless passthrough): when a tier
//     errors, times out, panics, or fails the optional round-trip
//     verification gate, the next tier serves the call, and the stream
//     records which tier produced it.
//   - Integrity-checked frames (frame.go) are a self-describing container —
//     magic, version, producing plugin, dtype/dims, CRC32-C — written on
//     compress and validated before decompress, so corruption is detected
//     deterministically instead of exploding inside a decoder.
//
// Every retry, recovered panic, timeout, fallback engagement and detected
// corruption increments a trace counter (see internal/trace), so the
// observability layer covers the resilience layer. The deterministic chaos
// substrate that exercises all of this lives in internal/faultinject.
//
// See docs/RESILIENCE.md for the cookbook and the frame byte layout.
package resilience
