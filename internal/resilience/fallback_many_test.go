package resilience

import (
	"testing"

	"pressio/internal/core"
	"pressio/internal/meta"
	"pressio/internal/trace"

	_ "pressio/internal/sz"
)

// buildVerifyChain constructs a fallback over sz_threadsafe,noop with the
// round-trip verify gate enabled at the given absolute bound, compressing at
// the given sz error bound.
func buildVerifyChain(t *testing.T, compressAbs, verifyAbs float64) *core.Compressor {
	t.Helper()
	comp, err := core.NewCompressor("fallback")
	if err != nil {
		t.Fatal(err)
	}
	o := core.NewOptions()
	o.SetValue("fallback:compressors", "sz_threadsafe,noop")
	o.SetValue("fallback:verify", int32(1))
	o.SetValue("fallback:verify_abs", verifyAbs)
	o.SetValue("pressio:abs", compressAbs)
	if err := comp.SetOptions(o); err != nil {
		t.Fatal(err)
	}
	return comp
}

// TestChaosFallbackVerifyGateAcrossWorkers exercises the round-trip verify
// gate under concurrent CompressMany (run under -race in the chaos CI stage):
// per-tier counters must stay race-free and sum exactly to the item count,
// whether the gate rejects tier zero for every item or admits it for every
// item.
func TestChaosFallbackVerifyGateAcrossWorkers(t *testing.T) {
	const items, workers = 48, 8
	makeBufs := func() []*core.Data {
		bufs := make([]*core.Data, items)
		for i := range bufs {
			vals := make([]float64, 64)
			for j := range vals {
				vals[j] = float64(i*j) / 17
			}
			bufs[i] = core.FromFloat64s(vals, 8, 8)
		}
		return bufs
	}

	// Lossy tier at abs=0.5 cannot meet a 1e-12 verify bound except on the
	// handful of buffers it happens to reproduce exactly (the all-zero one,
	// for instance): the rest must degrade to the lossless noop tier via the
	// verify gate, and every counter must reconcile exactly.
	trace.ResetTelemetry()
	comp := buildVerifyChain(t, 0.5, 1e-12)
	outs, err := meta.CompressMany(comp, makeBufs(), workers)
	if err != nil {
		t.Fatalf("strict-bound batch: %v", err)
	}
	if len(outs) != items {
		t.Fatalf("strict-bound batch produced %d outputs, want %d", len(outs), items)
	}
	szTier := trace.CounterValue(trace.FallbackTierKey("sz_threadsafe"))
	noopTier := trace.CounterValue(trace.FallbackTierKey("noop"))
	if szTier+noopTier != items {
		t.Fatalf("tier counters sum to %d (sz=%d noop=%d), want %d: counters dropped or double-counted under concurrency",
			szTier+noopTier, szTier, noopTier, items)
	}
	if noopTier == 0 {
		t.Fatal("strict bound never engaged the verify gate; the test exercised nothing")
	}
	// Each degraded item records exactly one verify rejection and one
	// fallback engagement — the gate's books must balance across workers.
	if got := trace.CounterValue(trace.CtrFallbackVerifyFailed); got != noopTier {
		t.Fatalf("verify-failed counter %d, want %d (one rejection per degraded item)", got, noopTier)
	}
	if got := trace.CounterValue(trace.CtrFallbackEngaged); got != noopTier {
		t.Fatalf("fallback-engaged counter %d, want %d", got, noopTier)
	}

	// With the verify bound looser than the compression bound, tier zero
	// passes the gate for every item and the chain never degrades.
	trace.ResetTelemetry()
	comp = buildVerifyChain(t, 0.01, 0.02)
	if _, err := meta.CompressMany(comp, makeBufs(), workers); err != nil {
		t.Fatalf("loose-bound batch: %v", err)
	}
	szTier = trace.CounterValue(trace.FallbackTierKey("sz_threadsafe"))
	noopTier = trace.CounterValue(trace.FallbackTierKey("noop"))
	if szTier != items || noopTier != 0 {
		t.Fatalf("loose bound: tiers sz=%d noop=%d, want %d/0", szTier, noopTier, items)
	}
	if got := trace.CounterValue(trace.CtrFallbackVerifyFailed); got != 0 {
		t.Fatalf("verify-failed counter %d, want 0", got)
	}
}
