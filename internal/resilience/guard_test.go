package resilience

import (
	"errors"
	"math"
	"testing"
	"time"

	"pressio/internal/core"
	"pressio/internal/faultinject"
	"pressio/internal/trace"

	_ "pressio/internal/lossless"
	_ "pressio/internal/sz"
	_ "pressio/internal/zfp"
)

// sine fills a smooth float32 field SZ-family compressors handle well.
func sine(dims ...uint64) *core.Data {
	total := uint64(1)
	for _, d := range dims {
		total *= d
	}
	vals := make([]float32, total)
	for i := range vals {
		vals[i] = float32(25 * math.Sin(float64(i)/40))
	}
	return core.FromFloat32s(vals, dims...)
}

func worstAbs(t *testing.T, a, b *core.Data) float64 {
	t.Helper()
	av, bv := a.AsFloat64s(), b.AsFloat64s()
	if len(av) != len(bv) {
		t.Fatalf("length mismatch: %d vs %d", len(av), len(bv))
	}
	worst := 0.0
	for i := range av {
		if d := math.Abs(av[i] - bv[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func newGuard(t *testing.T, opts *core.Options) *core.Compressor {
	t.Helper()
	c, err := core.NewCompressor("guard")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGuardRoundTripWithFrame(t *testing.T) {
	in := sine(32, 32)
	c := newGuard(t, core.NewOptions().
		SetValue("guard:compressor", "sz_threadsafe").
		SetValue("guard:frame", int32(1)).
		SetValue(core.KeyAbs, 0.01))
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	if !IsFramed(comp.Bytes()) {
		t.Fatal("guard:frame=1 produced an unframed stream")
	}
	// The frame self-describes dtype/dims, so decompress needs no hint.
	out := core.NewEmpty(core.DTypeUnset)
	if err := c.Decompress(comp, out); err != nil {
		t.Fatal(err)
	}
	if got := worstAbs(t, in, out); got > 0.01 {
		t.Errorf("max abs error %g exceeds bound", got)
	}

	// A guard configured without framing still detects and unwraps a framed
	// stream on decompress.
	plain := newGuard(t, core.NewOptions().
		SetValue("guard:compressor", "sz_threadsafe").
		SetValue(core.KeyAbs, 0.01))
	out2, err := core.Decompress(plain, comp, core.DTypeFloat32, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := worstAbs(t, in, out2); got > 0.01 {
		t.Errorf("frameless-guard decompress error %g exceeds bound", got)
	}
}

func TestGuardContainsPanics(t *testing.T) {
	before := trace.CounterValue(trace.CtrGuardPanics)
	c := newGuard(t, core.NewOptions().
		SetValue("guard:compressor", "faultinject").
		SetValue("faultinject:compressor", "noop").
		SetValue("faultinject:panic_rate", 1.0))
	_, err := core.Compress(c, sine(16))
	if err == nil {
		t.Fatal("compress over always-panicking child succeeded")
	}
	if !errors.Is(err, core.ErrPanicked) {
		t.Errorf("error %v does not wrap ErrPanicked", err)
	}
	if core.IsTransient(err) {
		t.Error("recovered panic classified transient; panics must be permanent")
	}
	if got := trace.CounterValue(trace.CtrGuardPanics) - before; got < 1 {
		t.Errorf("CtrGuardPanics delta = %d, want >= 1", got)
	}
}

func TestGuardRetriesExhaustBudget(t *testing.T) {
	beforeRetries := trace.CounterValue(trace.CtrGuardRetries)
	beforeInjected := trace.CounterValue(faultinject.CtrErrors)
	c := newGuard(t, core.NewOptions().
		SetValue("guard:compressor", "faultinject").
		SetValue("faultinject:compressor", "noop").
		SetValue("faultinject:error_rate", 1.0).
		SetValue("guard:max_retries", uint64(3)).
		SetValue("guard:backoff_initial_ms", int64(1)).
		SetValue("guard:backoff_max_ms", int64(2)))
	_, err := core.Compress(c, sine(16))
	if err == nil {
		t.Fatal("compress over always-failing child succeeded")
	}
	if !core.IsTransient(err) {
		t.Errorf("injected transient error lost its classification: %v", err)
	}
	if got := trace.CounterValue(trace.CtrGuardRetries) - beforeRetries; got != 3 {
		t.Errorf("CtrGuardRetries delta = %d, want 3 (budget exhausted)", got)
	}
	if got := trace.CounterValue(faultinject.CtrErrors) - beforeInjected; got != 4 {
		t.Errorf("injected errors = %d, want 4 (initial try + 3 retries)", got)
	}
}

func TestGuardRetriesEventuallySucceed(t *testing.T) {
	beforeRetries := trace.CounterValue(trace.CtrGuardRetries)
	beforeInjected := trace.CounterValue(faultinject.CtrErrors)
	c := newGuard(t, core.NewOptions().
		SetValue("guard:compressor", "faultinject").
		SetValue("faultinject:compressor", "noop").
		SetValue("faultinject:error_rate", 0.5).
		SetValue("faultinject:seed", int64(3)).
		SetValue("guard:max_retries", uint64(16)).
		SetValue("guard:backoff_initial_ms", int64(1)).
		SetValue("guard:backoff_max_ms", int64(2)))
	in := sine(16)
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatalf("compress with retry budget failed: %v", err)
	}
	retries := trace.CounterValue(trace.CtrGuardRetries) - beforeRetries
	injected := trace.CounterValue(faultinject.CtrErrors) - beforeInjected
	if retries != injected {
		t.Errorf("retries (%d) != injected transient errors (%d): every failure must be retried", retries, injected)
	}
	out, err := core.Decompress(c, comp, core.DTypeFloat32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := worstAbs(t, in, out); got != 0 {
		t.Errorf("noop round trip not exact: max err %g", got)
	}
}

func TestGuardDeadline(t *testing.T) {
	before := trace.CounterValue(trace.CtrGuardTimeouts)
	c := newGuard(t, core.NewOptions().
		SetValue("guard:compressor", "faultinject").
		SetValue("faultinject:compressor", "noop").
		SetValue("faultinject:delay_rate", 1.0).
		SetValue("faultinject:delay_ms", int64(2000)).
		SetValue("guard:deadline_ms", int64(25)))
	_, err := core.Compress(c, sine(16))
	if err == nil {
		t.Fatal("compress over stalling child succeeded before deadline")
	}
	if !errors.Is(err, core.ErrTimeout) {
		t.Errorf("error %v does not wrap ErrTimeout", err)
	}
	if !core.IsTransient(err) {
		t.Error("timeout must classify as transient")
	}
	if got := trace.CounterValue(trace.CtrGuardTimeouts) - before; got < 1 {
		t.Errorf("CtrGuardTimeouts delta = %d, want >= 1", got)
	}
}

// TestGuardTimeoutRetryIsolation: a timed-out call keeps running detached
// (Go cannot kill a goroutine), so each retry must use a freshly built child
// and its own target buffer. Under -race this test fails if a retry ever
// shares state with an abandoned attempt.
func TestGuardTimeoutRetryIsolation(t *testing.T) {
	in := sine(256)
	c := newGuard(t, core.NewOptions().
		SetValue("guard:compressor", "faultinject").
		SetValue("faultinject:compressor", "noop").
		SetValue("faultinject:delay_rate", 1.0).
		SetValue("faultinject:delay_ms", int64(60)).
		SetValue("guard:deadline_ms", int64(10)).
		SetValue("guard:max_retries", uint64(3)).
		SetValue("guard:backoff_initial_ms", int64(1)).
		SetValue("guard:backoff_max_ms", int64(2)))
	if _, err := core.Compress(c, in); !errors.Is(err, core.ErrTimeout) {
		t.Errorf("compress error = %v, want ErrTimeout", err)
	}
	noop, err := core.NewCompressor("noop")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := core.Compress(noop, in)
	if err != nil {
		t.Fatal(err)
	}
	out := core.NewEmpty(core.DTypeFloat32, 256)
	if err := c.Decompress(plain, out); !errors.Is(err, core.ErrTimeout) {
		t.Errorf("decompress error = %v, want ErrTimeout", err)
	}
	// Let the abandoned attempts drain so their (isolated) writes finish
	// inside the test's race-detection window.
	time.Sleep(150 * time.Millisecond)
}

// TestGuardFrameMagicCollision: with guard:frame off, a raw child stream that
// merely starts with the 4-byte frame magic must not be rejected as a corrupt
// frame — the payload is handed to the child unchanged.
func TestGuardFrameMagicCollision(t *testing.T) {
	raw := append([]byte(FrameMagic), 'x', 'y', 'z', 0, 1, 2, 3)
	in := core.NewBytes(append([]byte(nil), raw...))
	c := newGuard(t, core.NewOptions().SetValue("guard:compressor", "noop"))
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	out := core.NewEmpty(core.DTypeByte, uint64(len(raw)))
	if err := c.Decompress(comp, out); err != nil {
		t.Fatalf("magic-colliding raw stream rejected: %v", err)
	}
	if string(out.Bytes()) != string(raw) {
		t.Errorf("round trip mangled payload: %x", out.Bytes())
	}
}

func TestGuardRejectsCorruptedFrame(t *testing.T) {
	in := sine(24, 24)
	c := newGuard(t, core.NewOptions().
		SetValue("guard:compressor", "sz_threadsafe").
		SetValue("guard:frame", int32(1)).
		SetValue(core.KeyAbs, 0.01))
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), comp.Bytes()...)
	mut[len(mut)-1] ^= 0xff
	before := trace.CounterValue(trace.CtrFrameCorrupt)
	_, err = core.Decompress(c, core.NewBytes(mut), core.DTypeFloat32, 24, 24)
	if !errors.Is(err, core.ErrCorrupt) {
		t.Errorf("corrupted frame error = %v, want ErrCorrupt", err)
	}
	if got := trace.CounterValue(trace.CtrFrameCorrupt) - before; got != 1 {
		t.Errorf("CtrFrameCorrupt delta = %d, want 1", got)
	}
}

func TestGuardRejectsForeignFrame(t *testing.T) {
	framed, err := EncodeFrame("zfp", core.DTypeFloat32, []uint64{8}, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	c := newGuard(t, core.NewOptions().
		SetValue("guard:compressor", "sz_threadsafe").
		SetValue("guard:frame", int32(1)).
		SetValue(core.KeyAbs, 0.01))
	_, err = core.Decompress(c, core.NewBytes(framed), core.DTypeFloat32, 8)
	if !errors.Is(err, core.ErrCorrupt) {
		t.Errorf("foreign frame error = %v, want ErrCorrupt", err)
	}
}
