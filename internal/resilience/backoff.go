package resilience

import (
	"time"
)

// Backoff computes capped-exponential retry delays with deterministic
// jitter. It is a value type: plugins embed one per instance and Clone gets
// an independent copy, so no state is shared across goroutines.
type Backoff struct {
	// Initial is the delay before the first retry (default 1ms).
	Initial time.Duration
	// Max caps the exponential growth (default 250ms).
	Max time.Duration
	// Jitter in [0,1] is the fraction of each delay that is randomized
	// (default 0 — fully deterministic).
	Jitter float64
	// Seed drives the jitter PRNG so retry schedules are reproducible.
	Seed int64
}

// splitmix64 is the tiny deterministic PRNG behind the jitter: good enough
// dispersion for de-synchronizing retries, no global state, no allocation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Delay returns the sleep before retry attempt (0-based). The base delay is
// Initial*2^attempt capped at Max; Jitter replaces up to that fraction of
// the delay with a seeded pseudo-random amount, so concurrent retriers with
// different seeds spread out while a fixed seed reproduces exactly.
func (b Backoff) Delay(attempt int) time.Duration {
	initial := b.Initial
	if initial <= 0 {
		initial = time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	d := initial
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if b.Jitter > 0 {
		j := b.Jitter
		if j > 1 {
			j = 1
		}
		span := float64(d) * j
		r := splitmix64(uint64(b.Seed) ^ splitmix64(uint64(attempt)))
		// Map r into [0, span): the jittered delay is d - span + [0, span),
		// i.e. "equal jitter" biased low so the cap is never exceeded.
		frac := float64(r%(1<<53)) / float64(uint64(1)<<53)
		d = time.Duration(float64(d) - span + span*frac)
	}
	return d
}
