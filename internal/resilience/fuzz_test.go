package resilience

import (
	"errors"
	"testing"

	"pressio/internal/core"
)

// FuzzDecodeFrame asserts the frame validator's contract on arbitrary
// bytes: it never panics, every rejection wraps core.ErrCorrupt, and an
// accepted frame survives an encode/decode round trip unchanged.
func FuzzDecodeFrame(f *testing.F) {
	valid, err := EncodeFrame("sz_threadsafe", core.DTypeFloat32, []uint64{128, 64}, []byte("stream"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:7])
	f.Add([]byte(FrameMagic))
	f.Add([]byte{})
	empty, err := EncodeFrame("noop", core.DTypeByte, nil, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Fuzz(func(t *testing.T, b []byte) {
		frame, err := DecodeFrame(b)
		if err != nil {
			if !errors.Is(err, core.ErrCorrupt) {
				t.Fatalf("rejection %v does not wrap ErrCorrupt", err)
			}
			return
		}
		re, err := EncodeFrame(frame.Prefix, frame.DType, frame.Dims, frame.Payload)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		again, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if again.Prefix != frame.Prefix || again.DType != frame.DType ||
			len(again.Dims) != len(frame.Dims) || string(again.Payload) != string(frame.Payload) {
			t.Fatalf("frame fields changed across round trip: %+v vs %+v", frame, again)
		}
	})
}
