package resilience

import (
	"testing"
	"time"
)

func TestBackoffDefaultsAndCap(t *testing.T) {
	var b Backoff // all defaults: 1ms initial, 250ms cap, no jitter
	want := []time.Duration{
		1 * time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
		8 * time.Millisecond,
	}
	for i, w := range want {
		if d := b.Delay(i); d != w {
			t.Errorf("Delay(%d) = %v, want %v", i, d, w)
		}
	}
	if d := b.Delay(20); d != 250*time.Millisecond {
		t.Errorf("Delay(20) = %v, want cap 250ms", d)
	}
}

func TestBackoffCustomCap(t *testing.T) {
	b := Backoff{Initial: 10 * time.Millisecond, Max: 35 * time.Millisecond}
	if d := b.Delay(1); d != 20*time.Millisecond {
		t.Errorf("Delay(1) = %v", d)
	}
	for i := 2; i < 10; i++ {
		if d := b.Delay(i); d > 35*time.Millisecond {
			t.Errorf("Delay(%d) = %v exceeds cap", i, d)
		}
	}
}

func TestBackoffJitterBoundedAndDeterministic(t *testing.T) {
	b := Backoff{Initial: 8 * time.Millisecond, Max: time.Second, Jitter: 0.5, Seed: 7}
	for i := 0; i < 8; i++ {
		base := 8 * time.Millisecond << uint(i)
		if base > time.Second {
			base = time.Second
		}
		d := b.Delay(i)
		if d > base {
			t.Errorf("Delay(%d) = %v exceeds undithered delay %v", i, d, base)
		}
		if d < base/2 {
			t.Errorf("Delay(%d) = %v below base-span floor %v", i, d, base/2)
		}
		if again := b.Delay(i); again != d {
			t.Errorf("Delay(%d) not deterministic: %v then %v", i, d, again)
		}
	}
}

func TestBackoffSeedsDesynchronize(t *testing.T) {
	a := Backoff{Initial: 16 * time.Millisecond, Jitter: 1, Seed: 1}
	b := Backoff{Initial: 16 * time.Millisecond, Jitter: 1, Seed: 2}
	differ := false
	for i := 0; i < 5; i++ {
		if a.Delay(i) != b.Delay(i) {
			differ = true
		}
	}
	if !differ {
		t.Error("different seeds produced identical schedules")
	}
}
