package resilience

import (
	"errors"
	"testing"

	"pressio/internal/core"
)

func mustEncode(t *testing.T, prefix string, dtype core.DType, dims []uint64, payload []byte) []byte {
	t.Helper()
	b, err := EncodeFrame(prefix, dtype, dims, payload)
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	return b
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	b := mustEncode(t, "sz_threadsafe", core.DTypeFloat32, []uint64{300, 200, 10}, payload)
	if !IsFramed(b) {
		t.Fatal("encoded frame does not report IsFramed")
	}
	f, err := DecodeFrame(b)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if f.Prefix != "sz_threadsafe" {
		t.Errorf("prefix = %q", f.Prefix)
	}
	if f.DType != core.DTypeFloat32 {
		t.Errorf("dtype = %v", f.DType)
	}
	if len(f.Dims) != 3 || f.Dims[0] != 300 || f.Dims[1] != 200 || f.Dims[2] != 10 {
		t.Errorf("dims = %v", f.Dims)
	}
	if string(f.Payload) != string(payload) {
		t.Errorf("payload = %x", f.Payload)
	}
}

func TestFrameEmptyPayloadAndRankZero(t *testing.T) {
	b := mustEncode(t, "noop", core.DTypeByte, nil, nil)
	f, err := DecodeFrame(b)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if len(f.Dims) != 0 || len(f.Payload) != 0 {
		t.Errorf("dims=%v payload=%x", f.Dims, f.Payload)
	}
}

func TestEncodeFrameRejectsBadHeaders(t *testing.T) {
	if _, err := EncodeFrame("", core.DTypeByte, nil, nil); err == nil {
		t.Error("empty prefix accepted")
	}
	long := make([]byte, maxFramePrefix+1)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := EncodeFrame(string(long), core.DTypeByte, nil, nil); err == nil {
		t.Error("oversized prefix accepted")
	}
	if _, err := EncodeFrame("ok", core.DTypeByte, make([]uint64, maxFrameRank+1), nil); err == nil {
		t.Error("oversized rank accepted")
	}
}

// TestFrameTruncationsNeverPanic decodes every prefix of a valid frame; all
// but the full frame must fail with an error wrapping core.ErrCorrupt, and
// none may panic.
func TestFrameTruncationsNeverPanic(t *testing.T) {
	b := mustEncode(t, "zfp", core.DTypeFloat64, []uint64{64, 64}, []byte("payload-bytes"))
	for n := 0; n < len(b); n++ {
		_, err := DecodeFrame(b[:n])
		if err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
		if !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("truncation to %d: error %v does not wrap ErrCorrupt", n, err)
		}
	}
}

// TestFramePayloadCorruptionDetected flips every bit of the payload region
// in turn; the CRC must catch each flip.
func TestFramePayloadCorruptionDetected(t *testing.T) {
	payload := []byte("four score and seven years ago")
	b := mustEncode(t, "sz", core.DTypeFloat32, []uint64{10}, payload)
	start := len(b) - len(payload)
	for bit := start * 8; bit < len(b)*8; bit++ {
		mut := append([]byte(nil), b...)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, err := DecodeFrame(mut); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("payload bit flip %d undetected (err=%v)", bit, err)
		}
	}
}

// TestFrameHeaderMutationNeverPanics flips every bit of the whole frame;
// decoding may succeed only if the mutation landed in a spot the format does
// not define (there are none today), but it must never panic.
func TestFrameHeaderMutationNeverPanics(t *testing.T) {
	b := mustEncode(t, "fpzip", core.DTypeFloat32, []uint64{5, 5}, []byte{1, 2, 3})
	for bit := 0; bit < len(b)*8; bit++ {
		mut := append([]byte(nil), b...)
		mut[bit/8] ^= 1 << (bit % 8)
		_, _ = DecodeFrame(mut) // must not panic
	}
}

func TestDecodeFrameRejectsVersionAndMagic(t *testing.T) {
	b := mustEncode(t, "noop", core.DTypeByte, nil, []byte{9})
	bad := append([]byte(nil), b...)
	bad[0] = 'X'
	if _, err := DecodeFrame(bad); !errors.Is(err, core.ErrCorrupt) {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), b...)
	bad[4] = frameVersion + 1
	if _, err := DecodeFrame(bad); !errors.Is(err, core.ErrCorrupt) {
		t.Error("future version accepted")
	}
	if _, err := DecodeFrame(nil); !errors.Is(err, core.ErrCorrupt) {
		t.Error("nil input accepted")
	}
}

func TestDecodeFrameRejectsHugeShape(t *testing.T) {
	b := mustEncode(t, "noop", core.DTypeFloat64, []uint64{1 << 30, 1 << 30}, nil)
	if _, err := DecodeFrame(b); !errors.Is(err, core.ErrCorrupt) {
		t.Errorf("absurd declared shape accepted (err=%v)", err)
	}
}

// TestDecodeFrameRejectsOverflowingShape: dims whose product wraps uint64
// (2^33 * 2^33 ≡ 4, 2^24 * 2^40 ≡ 0) must still be rejected — the running
// product has to be checked before it can overflow — as must a single dim
// over the shape cap.
func TestDecodeFrameRejectsOverflowingShape(t *testing.T) {
	for _, dims := range [][]uint64{
		{1 << 33, 1 << 33},
		{1 << 24, 1 << 40},
		{1<<48 + 1},
		{1 << 63, 1 << 63, 4},
	} {
		b := mustEncode(t, "noop", core.DTypeFloat64, dims, nil)
		if _, err := DecodeFrame(b); !errors.Is(err, core.ErrCorrupt) {
			t.Errorf("overflowing dims %v accepted (err=%v)", dims, err)
		}
	}
}
