package resilience

import (
	"errors"
	"fmt"
	"time"

	"pressio/internal/core"
	"pressio/internal/trace"
)

// Option keys the guard meta-compressor owns.
const (
	keyGuardCompressor       = "guard:compressor"
	keyGuardDeadlineMS       = "guard:deadline_ms"
	keyGuardMaxRetries       = "guard:max_retries"
	keyGuardBackoffInitialMS = "guard:backoff_initial_ms"
	keyGuardBackoffMaxMS     = "guard:backoff_max_ms"
	keyGuardBackoffJitter    = "guard:backoff_jitter"
	keyGuardSeed             = "guard:seed"
	keyGuardFrame            = "guard:frame"
)

// Version is the resilience meta-compressor family version.
const Version = "1.0.0"

func init() {
	core.RegisterCompressor("guard", func() core.CompressorPlugin {
		return &guard{child: childComp{name: "sz_threadsafe"}, maxRetries: 2}
	})
}

// guard wraps any child compressor with the containment policy a production
// pipeline wants at every plugin boundary: panics become errors, a watchdog
// enforces a per-call deadline, transient failures are retried with capped
// exponential backoff and deterministic jitter, and (optionally) the
// compressed stream is wrapped in an integrity-checked frame validated
// before decompression.
type guard struct {
	child      childComp
	saved      *core.Options
	deadlineMS int64
	maxRetries uint64
	backoffCfg Backoff
	frame      bool
}

func (p *guard) Prefix() string  { return "guard" }
func (p *guard) Version() string { return Version }

func (p *guard) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keyGuardCompressor, p.child.name)
	o.SetValue(keyGuardDeadlineMS, p.deadlineMS)
	o.SetValue(keyGuardMaxRetries, p.maxRetries)
	o.SetValue(keyGuardBackoffInitialMS, int64(p.backoffCfg.Initial/time.Millisecond))
	o.SetValue(keyGuardBackoffMaxMS, int64(p.backoffCfg.Max/time.Millisecond))
	o.SetValue(keyGuardBackoffJitter, p.backoffCfg.Jitter)
	o.SetValue(keyGuardSeed, p.backoffCfg.Seed)
	o.SetValue(keyGuardFrame, boolOpt(p.frame))
	if p.child.comp != nil {
		o.Merge(p.child.comp.Options())
	}
	return o
}

func (p *guard) SetOptions(o *core.Options) error {
	if v, err := o.GetString(keyGuardCompressor); err == nil && v != p.child.name {
		p.child = childComp{name: v}
	}
	if v, err := o.GetInt64(keyGuardDeadlineMS); err == nil {
		if v < 0 {
			return fmt.Errorf("%w: %s %d", core.ErrInvalidOption, keyGuardDeadlineMS, v)
		}
		p.deadlineMS = v
	}
	if v, err := o.GetUint64(keyGuardMaxRetries); err == nil {
		if v > 1<<16 {
			return fmt.Errorf("%w: %s %d", core.ErrInvalidOption, keyGuardMaxRetries, v)
		}
		p.maxRetries = v
	}
	if v, err := o.GetInt64(keyGuardBackoffInitialMS); err == nil {
		p.backoffCfg.Initial = time.Duration(v) * time.Millisecond
	}
	if v, err := o.GetInt64(keyGuardBackoffMaxMS); err == nil {
		p.backoffCfg.Max = time.Duration(v) * time.Millisecond
	}
	if v, err := o.GetFloat64(keyGuardBackoffJitter); err == nil {
		if v < 0 || v > 1 {
			return fmt.Errorf("%w: %s %v not in [0,1]", core.ErrInvalidOption, keyGuardBackoffJitter, v)
		}
		p.backoffCfg.Jitter = v
	}
	if v, err := o.GetInt64(keyGuardSeed); err == nil {
		p.backoffCfg.Seed = v
	}
	if v, err := o.GetInt32(keyGuardFrame); err == nil {
		p.frame = v != 0
	}
	if p.saved == nil {
		p.saved = core.NewOptions()
	}
	p.saved.Merge(o)
	if p.child.comp != nil {
		return p.child.comp.SetOptions(o)
	}
	return nil
}

func (p *guard) CheckOptions(o *core.Options) error {
	clone := p.cloneGuard()
	return clone.SetOptions(o)
}

func (p *guard) Configuration() *core.Options {
	cfg := core.StandardConfiguration(core.ThreadSafetySerialized, "stable", Version, false)
	cfg.SetValue("guard:resilient", int32(1))
	return cfg
}

// deadline converts the configured per-call deadline (0 = none).
func (p *guard) deadline() time.Duration {
	return time.Duration(p.deadlineMS) * time.Millisecond
}

// withRetries instantiates the child and runs one attempt function under the
// retry policy: transient failures (core.IsTransient — explicit marks and
// timeouts) are re-attempted up to guard:max_retries times with backoff
// between attempts; permanent failures and exhausted budgets return
// immediately. After a watchdog timeout the timed-out call keeps running
// detached on the old child instance (Go cannot kill a goroutine), so that
// instance is discarded and the retry — like every later call — gets a
// freshly constructed child. Attempts must therefore write only into buffers
// they allocate themselves and publish results on success, never share a
// target with a previous attempt.
func (p *guard) withRetries(attempt func(comp *core.Compressor) error) error {
	comp, err := p.child.get(p.saved)
	if err != nil {
		return err
	}
	budget := int(p.maxRetries)
	for try := 0; ; try++ {
		err = attempt(comp)
		if errors.Is(err, core.ErrTimeout) {
			// The timed-out call is still running detached on this instance;
			// discard it even when returning, so no later call shares it.
			p.child.comp = nil
		}
		if err == nil || try >= budget || !core.IsTransient(err) {
			return err
		}
		trace.CounterAdd(trace.CtrGuardRetries, 1)
		if p.child.comp == nil {
			var gerr error
			if comp, gerr = p.child.get(p.saved); gerr != nil {
				return gerr
			}
		}
		time.Sleep(p.backoffCfg.Delay(try))
	}
}

func (p *guard) CompressImpl(in, out *core.Data) error {
	var result *core.Data
	var prefix string
	err := p.withRetries(func(comp *core.Compressor) error {
		tmp := core.NewEmpty(core.DTypeByte, 0)
		if err := runGuarded(p.deadline(), func() error { return comp.Compress(in, tmp) }); err != nil {
			return err
		}
		result = tmp
		prefix = comp.Prefix()
		return nil
	})
	if err != nil {
		return err
	}
	if p.frame {
		framed, err := EncodeFrame(prefix, in.DType(), in.Dims(), result.Bytes())
		if err != nil {
			return err
		}
		trace.CounterAdd(trace.CtrFrameWritten, 1)
		out.Become(core.NewBytes(framed))
		return nil
	}
	out.Become(result)
	return nil
}

func (p *guard) DecompressImpl(in, out *core.Data) error {
	comp, err := p.child.get(p.saved)
	if err != nil {
		return err
	}
	payload := in.Bytes()
	hintDT, hintDims := out.DType(), out.Dims()
	if p.frame || IsFramed(payload) {
		f, err := DecodeFrame(payload)
		switch {
		case err != nil && !p.frame:
			// guard:frame is off, so this payload was only suspected to be a
			// frame from its first four bytes. A raw child stream can collide
			// with the magic; treat an undecodable "frame" as that collision
			// and hand the raw payload to the child unchanged.
		case err != nil:
			trace.CounterAdd(trace.CtrFrameCorrupt, 1)
			return err
		default:
			switch {
			case f.Prefix == comp.Prefix():
				payload = f.Payload
			case p.frame:
				// The guard wrapped this stream itself, so a mismatched
				// producer is corruption, not composition.
				return fmt.Errorf("resilience: %w: frame produced by %q, guard child is %q",
					core.ErrCorrupt, f.Prefix, comp.Prefix())
			default:
				// Auto-detected frame from a different producer: leave the
				// frame intact for a frame-aware child (e.g. a fallback chain
				// that routes on the recorded tier prefix).
			}
			if hintDT == core.DTypeUnset || len(hintDims) == 0 {
				// The frame self-describes the decompressed shape; use it
				// when the caller provided no hint.
				hintDT, hintDims = f.DType, f.Dims
			}
		}
	}
	// Each attempt decompresses into its own buffer: after a timeout the
	// abandoned call may still be writing its target, so a shared one would
	// race with the retry.
	var result *core.Data
	err = p.withRetries(func(comp *core.Compressor) error {
		tmp := core.NewEmpty(hintDT, hintDims...)
		if err := runGuarded(p.deadline(), func() error {
			return comp.Decompress(core.NewBytes(payload), tmp)
		}); err != nil {
			return err
		}
		result = tmp
		return nil
	})
	if err != nil {
		return err
	}
	out.Become(result)
	return nil
}

func (p *guard) cloneGuard() *guard {
	clone := &guard{
		child:      p.child.clone(),
		deadlineMS: p.deadlineMS,
		maxRetries: p.maxRetries,
		backoffCfg: p.backoffCfg,
		frame:      p.frame,
	}
	if p.saved != nil {
		clone.saved = p.saved.Clone()
	}
	return clone
}

func (p *guard) Clone() core.CompressorPlugin { return p.cloneGuard() }

// boolOpt renders a bool as the int32 0/1 convention options use.
func boolOpt(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
