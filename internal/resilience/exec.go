package resilience

import (
	"fmt"
	"time"

	"pressio/internal/core"
	"pressio/internal/trace"
)

// runGuarded executes op behind the two framework-boundary protections:
// a panic barrier (a panicking plugin becomes a core.ErrPanicked error, it
// never unwinds into the caller) and, when deadline > 0, a watchdog that
// abandons the call and returns core.ErrTimeout once the deadline passes.
//
// Go cannot kill a goroutine, so a timed-out op keeps running detached until
// it finishes on its own; its eventual result is discarded (the channel is
// buffered) and its panic, if any, is still recovered. This mirrors what a
// watchdog can honestly promise over an uncooperative plugin: the *caller*
// regains control at the deadline.
func runGuarded(deadline time.Duration, op func() error) error {
	if deadline <= 0 {
		return recoverToError(op)
	}
	done := make(chan error, 1)
	go func() { done <- recoverToError(op) }()
	watchdog := time.NewTimer(deadline)
	defer watchdog.Stop()
	select {
	case err := <-done:
		return err
	case <-watchdog.C:
		trace.CounterAdd(trace.CtrGuardTimeouts, 1)
		return fmt.Errorf("resilience: %w after %s", core.ErrTimeout, deadline)
	}
}

// recoverToError invokes op, converting a panic into a permanent error.
func recoverToError(op func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			trace.CounterAdd(trace.CtrGuardPanics, 1)
			err = fmt.Errorf("resilience: %w: %v", core.ErrPanicked, r)
		}
	}()
	return op()
}

// childComp lazily instantiates a named child compressor, replaying the
// saved option set on first construction. guard holds one; fallback holds an
// ordered slice.
type childComp struct {
	name string
	comp *core.Compressor
}

func (c *childComp) get(saved *core.Options) (*core.Compressor, error) {
	if c.comp == nil {
		comp, err := core.NewCompressor(c.name)
		if err != nil {
			return nil, err
		}
		if saved != nil {
			if err := comp.SetOptions(saved); err != nil {
				return nil, err
			}
		}
		c.comp = comp
	}
	return c.comp, nil
}

func (c *childComp) clone() childComp {
	out := childComp{name: c.name}
	if c.comp != nil {
		out.comp = c.comp.Clone()
	}
	return out
}
