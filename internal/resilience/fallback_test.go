package resilience

import (
	"errors"
	"strings"
	"testing"

	"pressio/internal/core"
	"pressio/internal/trace"

	_ "pressio/internal/faultinject"
	_ "pressio/internal/lossless"
	_ "pressio/internal/sz"
)

func newFallbackComp(t *testing.T, opts *core.Options) *core.Compressor {
	t.Helper()
	c, err := core.NewCompressor("fallback")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	return c
}

func lastTier(t *testing.T, c *core.Compressor) string {
	t.Helper()
	v, err := c.Options().GetString("fallback:last_tier")
	if err != nil {
		t.Fatalf("fallback:last_tier: %v", err)
	}
	return v
}

func TestFallbackPrefersFirstTier(t *testing.T) {
	in := sine(32, 32)
	c := newFallbackComp(t, core.NewOptions().
		SetValue("fallback:compressors", "sz_threadsafe,noop").
		SetValue(core.KeyAbs, 0.01))
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	f, err := DecodeFrame(comp.Bytes())
	if err != nil {
		t.Fatalf("fallback output not a valid frame: %v", err)
	}
	if f.Prefix != "sz_threadsafe" {
		t.Errorf("healthy chain served by %q, want preferred tier", f.Prefix)
	}
	if got := lastTier(t, c); got != "sz_threadsafe" {
		t.Errorf("fallback:last_tier = %q", got)
	}
	out, err := core.Decompress(c, comp, core.DTypeFloat32, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := worstAbs(t, in, out); got > 0.01 {
		t.Errorf("max abs error %g exceeds bound", got)
	}
}

func TestFallbackDegradesOnError(t *testing.T) {
	engaged := trace.CounterValue(trace.CtrFallbackEngaged)
	noopServed := trace.CounterValue(trace.FallbackTierKey("noop"))
	in := sine(64)
	c := newFallbackComp(t, core.NewOptions().
		SetValue("fallback:compressors", "faultinject,noop").
		SetValue("faultinject:compressor", "sz_threadsafe").
		SetValue("faultinject:error_rate", 1.0))
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatalf("chain with reliable final tier failed: %v", err)
	}
	if got := trace.CounterValue(trace.CtrFallbackEngaged) - engaged; got != 1 {
		t.Errorf("CtrFallbackEngaged delta = %d, want 1", got)
	}
	if got := trace.CounterValue(trace.FallbackTierKey("noop")) - noopServed; got != 1 {
		t.Errorf("noop tier counter delta = %d, want 1", got)
	}
	if got := lastTier(t, c); got != "noop" {
		t.Errorf("fallback:last_tier = %q, want noop", got)
	}
	// The frame records the tier that actually served, so decompression
	// routes straight to it; no hint needed (frame carries dtype/dims).
	out := core.NewEmpty(core.DTypeUnset)
	if err := c.Decompress(comp, out); err != nil {
		t.Fatal(err)
	}
	if got := worstAbs(t, in, out); got != 0 {
		t.Errorf("lossless tier round trip not exact: %g", got)
	}
}

func TestFallbackDegradesOnPanic(t *testing.T) {
	panics := trace.CounterValue(trace.CtrGuardPanics)
	in := sine(64)
	c := newFallbackComp(t, core.NewOptions().
		SetValue("fallback:compressors", "faultinject,noop").
		SetValue("faultinject:compressor", "noop").
		SetValue("faultinject:panic_rate", 1.0))
	if _, err := core.Compress(c, in); err != nil {
		t.Fatalf("chain should absorb the panic and degrade: %v", err)
	}
	if got := trace.CounterValue(trace.CtrGuardPanics) - panics; got != 1 {
		t.Errorf("CtrGuardPanics delta = %d, want 1", got)
	}
	if got := lastTier(t, c); got != "noop" {
		t.Errorf("fallback:last_tier = %q, want noop", got)
	}
}

func TestFallbackVerifyGateDegrades(t *testing.T) {
	verifyFailed := trace.CounterValue(trace.CtrFallbackVerifyFailed)
	in := sine(48, 48)
	// sz at abs=0.05 cannot satisfy a 1e-9 round-trip bound; the verify gate
	// must reject its stream and degrade to the lossless tier, which can.
	c := newFallbackComp(t, core.NewOptions().
		SetValue("fallback:compressors", "sz_threadsafe,noop").
		SetValue("fallback:verify", int32(1)).
		SetValue("fallback:verify_abs", 1e-9).
		SetValue(core.KeyAbs, 0.05))
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	if got := trace.CounterValue(trace.CtrFallbackVerifyFailed) - verifyFailed; got < 1 {
		t.Errorf("CtrFallbackVerifyFailed delta = %d, want >= 1", got)
	}
	if got := lastTier(t, c); got != "noop" {
		t.Errorf("fallback:last_tier = %q, want noop after verify rejection", got)
	}
	out, err := core.Decompress(c, comp, core.DTypeFloat32, 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	if got := worstAbs(t, in, out); got != 0 {
		t.Errorf("verified tier round trip not exact: %g", got)
	}
}

func TestFallbackExhausted(t *testing.T) {
	exhausted := trace.CounterValue(trace.CtrFallbackExhausted)
	c := newFallbackComp(t, core.NewOptions().
		SetValue("fallback:compressors", "faultinject").
		SetValue("faultinject:compressor", "noop").
		SetValue("faultinject:error_rate", 1.0))
	_, err := core.Compress(c, sine(16))
	if err == nil {
		t.Fatal("single always-failing tier succeeded")
	}
	if got := trace.CounterValue(trace.CtrFallbackExhausted) - exhausted; got != 1 {
		t.Errorf("CtrFallbackExhausted delta = %d, want 1", got)
	}
	if !core.IsTransient(err) {
		t.Errorf("joined tier errors lost the transient mark: %v", err)
	}
}

func TestFallbackRejectsCorruptFrame(t *testing.T) {
	in := sine(32)
	c := newFallbackComp(t, core.NewOptions().
		SetValue("fallback:compressors", "noop"))
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), comp.Bytes()...)
	mut[len(mut)-1] ^= 0x01
	before := trace.CounterValue(trace.CtrFrameCorrupt)
	_, err = core.Decompress(c, core.NewBytes(mut), core.DTypeFloat32, 32)
	if !errors.Is(err, core.ErrCorrupt) {
		t.Errorf("corrupted frame error = %v, want ErrCorrupt", err)
	}
	if got := trace.CounterValue(trace.CtrFrameCorrupt) - before; got != 1 {
		t.Errorf("CtrFrameCorrupt delta = %d, want 1", got)
	}
}

// TestFallbackFrameTierInstantiationError: when the frame's producer IS in
// the chain but that tier fails to instantiate, the error must report the
// instantiation failure, not masquerade as stream corruption.
func TestFallbackFrameTierInstantiationError(t *testing.T) {
	framed, err := EncodeFrame("no_such_plugin", core.DTypeFloat32, []uint64{4}, []byte{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	c := newFallbackComp(t, core.NewOptions().
		SetValue("fallback:compressors", "no_such_plugin,noop"))
	_, err = core.Decompress(c, core.NewBytes(framed), core.DTypeFloat32, 4)
	if err == nil {
		t.Fatal("frame for uninstantiable tier decompressed successfully")
	}
	if errors.Is(err, core.ErrCorrupt) {
		t.Errorf("instantiation failure misreported as corruption: %v", err)
	}
	if !strings.Contains(err.Error(), "no_such_plugin") {
		t.Errorf("error %v does not name the failing tier", err)
	}
}

func TestFallbackRejectsUnknownProducer(t *testing.T) {
	framed, err := EncodeFrame("tthresh", core.DTypeFloat32, []uint64{4}, []byte{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	c := newFallbackComp(t, core.NewOptions().
		SetValue("fallback:compressors", "noop"))
	_, err = core.Decompress(c, core.NewBytes(framed), core.DTypeFloat32, 4)
	if !errors.Is(err, core.ErrCorrupt) {
		t.Errorf("frame from outside the chain: err = %v, want ErrCorrupt", err)
	}
}

func TestFallbackUnframedProbing(t *testing.T) {
	in := sine(64)
	producer := newFallbackComp(t, core.NewOptions().
		SetValue("fallback:compressors", "noop").
		SetValue("fallback:frame", int32(0)))
	comp, err := core.Compress(producer, in)
	if err != nil {
		t.Fatal(err)
	}
	if IsFramed(comp.Bytes()) {
		t.Fatal("fallback:frame=0 still framed the stream")
	}
	// A consumer whose preferred tier cannot decode the stream probes down
	// the chain until one does.
	consumer := newFallbackComp(t, core.NewOptions().
		SetValue("fallback:compressors", "flate,noop").
		SetValue("fallback:frame", int32(0)))
	out, err := core.Decompress(consumer, comp, core.DTypeFloat32, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := worstAbs(t, in, out); got != 0 {
		t.Errorf("probed round trip not exact: %g", got)
	}
	if got := lastTier(t, consumer); got != "noop" {
		t.Errorf("fallback:last_tier = %q, want noop", got)
	}
}
