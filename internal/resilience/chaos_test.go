package resilience

import (
	"testing"

	"pressio/internal/core"
	"pressio/internal/faultinject"
	"pressio/internal/meta"
	"pressio/internal/trace"

	_ "pressio/internal/lossless"
	_ "pressio/internal/sz"
)

// TestChaosCompressManyCompletes is the acceptance test for the resilience
// layer: CompressMany over a substrate injecting 30% transient errors and 5%
// panics must complete every item by degrading to the lossless tier, no
// panic may escape the Compressor boundary (the test binary would crash),
// and the trace counters must account for every injected fault.
func TestChaosCompressManyCompletes(t *testing.T) {
	const items = 64
	bufs := make([]*core.Data, items)
	for i := range bufs {
		bufs[i] = sine(uint64(32 + i))
	}

	proto := newFallbackComp(t, core.NewOptions().
		SetValue("fallback:compressors", "faultinject,noop").
		SetValue("faultinject:compressor", "sz_threadsafe").
		SetValue("faultinject:error_rate", 0.30).
		SetValue("faultinject:panic_rate", 0.05).
		SetValue("faultinject:seed", int64(2026)).
		SetValue(core.KeyAbs, 0.01))
	// Warm up the prototype so its tiers are instantiated: CompressMany then
	// clones live plugin instances, and each faultinject clone derives a
	// distinct deterministic seed instead of replaying one schedule per
	// worker.
	if _, err := core.Compress(proto, sine(16)); err != nil {
		t.Fatalf("warm-up: %v", err)
	}

	before := map[string]int64{}
	for _, k := range []string{
		faultinject.CtrErrors, faultinject.CtrPanics,
		trace.CtrGuardPanics, trace.CtrFallbackEngaged, trace.CtrFallbackExhausted,
		trace.FallbackTierKey("faultinject"), trace.FallbackTierKey("noop"),
	} {
		before[k] = trace.CounterValue(k)
	}
	delta := func(k string) int64 { return trace.CounterValue(k) - before[k] }

	results, err := meta.CompressMany(proto, bufs, 4)
	if err != nil {
		t.Fatalf("CompressMany over flaky substrate failed: %v", err)
	}
	if len(results) != items {
		t.Fatalf("got %d results, want %d", len(results), items)
	}
	for i, r := range results {
		if r == nil || !r.HasData() {
			t.Fatalf("item %d did not complete", i)
		}
		if !IsFramed(r.Bytes()) {
			t.Fatalf("item %d is not framed", i)
		}
	}

	injErrors, injPanics := delta(faultinject.CtrErrors), delta(faultinject.CtrPanics)
	if injErrors == 0 {
		t.Error("no transient errors injected; chaos substrate inert (rates misconfigured?)")
	}
	if injPanics == 0 {
		t.Error("no panics injected; chaos substrate inert (rates misconfigured?)")
	}
	// Every injected fault downed the preferred tier exactly once, and every
	// downed call was served by the next tier: faults == fallbacks engaged.
	if got := delta(trace.CtrFallbackEngaged); got != injErrors+injPanics {
		t.Errorf("CtrFallbackEngaged = %d, want %d (errors %d + panics %d)",
			got, injErrors+injPanics, injErrors, injPanics)
	}
	// Every injected panic was recovered at the framework boundary.
	if got := delta(trace.CtrGuardPanics); got != injPanics {
		t.Errorf("CtrGuardPanics = %d, want %d", got, injPanics)
	}
	// Per-tier service counters partition the batch.
	served := delta(trace.FallbackTierKey("faultinject")) + delta(trace.FallbackTierKey("noop"))
	if served != items {
		t.Errorf("tier counters sum to %d, want %d", served, items)
	}
	if got := delta(trace.CtrFallbackExhausted); got != 0 {
		t.Errorf("CtrFallbackExhausted = %d, want 0 (noop tier never fails)", got)
	}

	// Drain the faults and verify every stream decodes: a consumer with the
	// same chain but zero fault rates routes each frame to its producer.
	consumer := newFallbackComp(t, core.NewOptions().
		SetValue("fallback:compressors", "faultinject,noop").
		SetValue("faultinject:compressor", "sz_threadsafe").
		SetValue(core.KeyAbs, 0.01))
	for i, r := range results {
		out := core.NewEmpty(core.DTypeUnset)
		if err := consumer.Decompress(r, out); err != nil {
			t.Fatalf("item %d failed to decompress: %v", i, err)
		}
		if out.Len() != bufs[i].Len() {
			t.Fatalf("item %d: %d elements became %d", i, bufs[i].Len(), out.Len())
		}
		if got := worstAbs(t, bufs[i], out); got > 0.01 {
			t.Fatalf("item %d: max abs error %g exceeds bound", i, got)
		}
	}
}

// TestChaosGuardedFallbackComposition exercises the full composition the
// docs recommend — guard{fallback{flaky, noop}} — so retries, degradation,
// and framing all engage in one pipeline. Faults are transient-only here:
// the decompress path has no lossless backup (only the producing tier can
// decode a frame), so recovery there is the guard's retry loop, which by
// design does not retry panics. Panic containment is covered above.
func TestChaosGuardedFallbackComposition(t *testing.T) {
	c := newGuard(t, core.NewOptions().
		SetValue("guard:compressor", "fallback").
		SetValue("fallback:compressors", "faultinject,noop").
		SetValue("faultinject:compressor", "sz_threadsafe").
		SetValue("faultinject:error_rate", 0.30).
		SetValue("faultinject:seed", int64(7)).
		SetValue("guard:max_retries", uint64(8)).
		SetValue("guard:backoff_initial_ms", int64(1)).
		SetValue("guard:backoff_max_ms", int64(2)).
		SetValue(core.KeyAbs, 0.01))
	for i := 0; i < 32; i++ {
		in := sine(uint64(24 + i))
		comp, err := core.Compress(c, in)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		out := core.NewEmpty(core.DTypeUnset)
		if err := c.Decompress(comp, out); err != nil {
			t.Fatalf("call %d decompress: %v", i, err)
		}
		if got := worstAbs(t, in, out); got > 0.01 {
			t.Fatalf("call %d: max abs error %g", i, got)
		}
	}
}

// TestChaosDeterminism: the same seed must replay the same fault schedule,
// so two identical single-threaded runs inject identical fault counts.
func TestChaosDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		e0 := trace.CounterValue(faultinject.CtrErrors)
		p0 := trace.CounterValue(faultinject.CtrPanics)
		c := newFallbackComp(t, core.NewOptions().
			SetValue("fallback:compressors", "faultinject,noop").
			SetValue("faultinject:compressor", "noop").
			SetValue("faultinject:error_rate", 0.4).
			SetValue("faultinject:panic_rate", 0.1).
			SetValue("faultinject:seed", int64(99)))
		for i := 0; i < 40; i++ {
			if _, err := core.Compress(c, sine(16)); err != nil {
				t.Fatalf("call %d: %v", i, err)
			}
		}
		return trace.CounterValue(faultinject.CtrErrors) - e0,
			trace.CounterValue(faultinject.CtrPanics) - p0
	}
	e1, p1 := run()
	e2, p2 := run()
	if e1 != e2 || p1 != p2 {
		t.Errorf("fault schedule not reproducible: run1 (%d errors, %d panics) vs run2 (%d, %d)",
			e1, p1, e2, p2)
	}
	if e1 == 0 && p1 == 0 {
		t.Error("seeded schedule injected nothing")
	}
}
