package resilience

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"pressio/internal/core"
)

// The integrity frame is an optional self-describing container around a
// compressed payload. It exists so that a corrupted or mismatched stream is
// rejected deterministically at the framework boundary — with a checksum
// mismatch error — instead of being fed into a decoder whose behaviour on
// garbage is at best an error and at worst a crash.
//
// Byte layout (all multi-byte integers are uvarints except the CRC):
//
//	offset  size  field
//	0       4     magic "LPFR"
//	4       1     version (currently 1)
//	5       1     dtype byte (core.DType of the uncompressed data)
//	6       1     rank (number of dims, <= 16)
//	7       var   dims, one uvarint per dimension
//	var     var   producing plugin prefix: uvarint length + bytes (<= 64)
//	var     var   payload length, uvarint
//	var     4     CRC32-C (Castagnoli) of the payload, little-endian
//	var     n     payload (the wrapped compressor's stream)
//
// The dtype/dims of the *uncompressed* data ride along so a frame-aware
// reader can reconstruct the decompression hint without a side channel, and
// the plugin prefix lets a fallback chain route the stream back to the tier
// that produced it.

// FrameMagic identifies an integrity-checked frame.
const FrameMagic = "LPFR"

// frameVersion is the current frame layout version.
const frameVersion = 1

// maxFramePrefix bounds the recorded plugin prefix length.
const maxFramePrefix = 64

// maxFrameRank bounds the recorded rank, matching the framework-wide limit.
const maxFrameRank = 16

// castagnoli is the CRC32-C table (same polynomial iSCSI and ext4 use);
// hash/crc32 uses SSE4.2/ARMv8 instructions for it where available.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame is a decoded integrity frame.
type Frame struct {
	// Prefix names the plugin that produced Payload.
	Prefix string
	// DType and Dims describe the uncompressed data (the decompression
	// hint).
	DType core.DType
	Dims  []uint64
	// Payload is the wrapped compressed stream, aliasing the input buffer.
	Payload []byte
}

// EncodeFrame wraps payload in an integrity frame.
func EncodeFrame(prefix string, dtype core.DType, dims []uint64, payload []byte) ([]byte, error) {
	if len(prefix) == 0 || len(prefix) > maxFramePrefix {
		return nil, fmt.Errorf("resilience: %w: frame prefix length %d", core.ErrInvalidOption, len(prefix))
	}
	if len(dims) > maxFrameRank {
		return nil, fmt.Errorf("resilience: %w: rank %d exceeds %d", core.ErrInvalidDims, len(dims), maxFrameRank)
	}
	out := make([]byte, 0, len(FrameMagic)+3+len(prefix)+16+len(payload))
	out = append(out, FrameMagic...)
	out = append(out, frameVersion, byte(dtype), byte(len(dims)))
	for _, d := range dims {
		out = binary.AppendUvarint(out, d)
	}
	out = binary.AppendUvarint(out, uint64(len(prefix)))
	out = append(out, prefix...)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	out = append(out, payload...)
	return out, nil
}

// IsFramed reports whether b starts with the frame magic.
func IsFramed(b []byte) bool {
	return len(b) >= len(FrameMagic) && string(b[:len(FrameMagic)]) == FrameMagic
}

// corrupt builds the canonical frame-corruption error.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("resilience: %w: "+format, append([]any{core.ErrCorrupt}, args...)...)
}

// DecodeFrame parses and validates a frame: magic, version, bounded header
// fields, exact payload length, and the CRC32-C checksum. Every rejection is
// an error wrapping core.ErrCorrupt; DecodeFrame never panics on arbitrary
// input (it is fuzzed).
func DecodeFrame(b []byte) (Frame, error) {
	var f Frame
	if !IsFramed(b) {
		return f, corrupt("missing frame magic")
	}
	if len(b) < len(FrameMagic)+3 {
		return f, corrupt("truncated frame header")
	}
	if v := b[4]; v != frameVersion {
		return f, corrupt("unsupported frame version %d", v)
	}
	f.DType = core.DType(b[5])
	rank := int(b[6])
	if rank > maxFrameRank {
		return f, corrupt("rank %d exceeds %d", rank, maxFrameRank)
	}
	pos := len(FrameMagic) + 3
	f.Dims = make([]uint64, rank)
	total := uint64(1)
	for i := range f.Dims {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return f, corrupt("truncated dims")
		}
		if v > 1<<48 {
			return f, corrupt("declared dim too large")
		}
		f.Dims[i] = v
		if v > 0 {
			// Overflow-safe running product: reject before multiplying so a
			// wrapped uint64 can never sneak past the shape bound.
			if total > (1<<48)/v {
				return f, corrupt("declared shape too large")
			}
			total *= v
		}
		pos += n
	}
	plen, n := binary.Uvarint(b[pos:])
	if n <= 0 || plen == 0 || plen > maxFramePrefix {
		return f, corrupt("bad prefix length")
	}
	pos += n
	if uint64(len(b)-pos) < plen {
		return f, corrupt("truncated prefix")
	}
	f.Prefix = string(b[pos : pos+int(plen)])
	pos += int(plen)
	payloadLen, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return f, corrupt("truncated payload length")
	}
	pos += n
	if len(b)-pos < 4 {
		return f, corrupt("truncated checksum")
	}
	sum := binary.LittleEndian.Uint32(b[pos:])
	pos += 4
	if uint64(len(b)-pos) != payloadLen {
		return f, corrupt("payload is %d bytes, header declares %d", len(b)-pos, payloadLen)
	}
	f.Payload = b[pos:]
	if got := crc32.Checksum(f.Payload, castagnoli); got != sum {
		return f, corrupt("checksum mismatch: payload %08x, header %08x", got, sum)
	}
	return f, nil
}
