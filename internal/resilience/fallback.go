package resilience

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"pressio/internal/core"
	"pressio/internal/trace"
)

// Option keys the fallback meta-compressor owns.
const (
	keyFallbackCompressors = "fallback:compressors"
	keyFallbackDeadlineMS  = "fallback:deadline_ms"
	keyFallbackVerify      = "fallback:verify"
	keyFallbackVerifyAbs   = "fallback:verify_abs"
	keyFallbackFrame       = "fallback:frame"
	keyFallbackLastTier    = "fallback:last_tier"
)

func init() {
	core.RegisterCompressor("fallback", func() core.CompressorPlugin {
		return newFallback("sz_threadsafe,zfp,noop")
	})
}

func newFallback(chain string) *fallback {
	p := &fallback{frame: true}
	p.setChain(chain)
	return p
}

// fallback is the graceful-degradation meta-compressor: an ordered chain of
// tiers tried in preference order. A tier that errors, panics, exceeds the
// per-tier deadline, or fails the optional round-trip verification gate is
// skipped and the next tier serves the call. Streams are framed (see
// frame.go) with the producing tier's prefix so decompression routes back to
// the tier that actually compressed each buffer — a chain can therefore mix
// tiers freely across a batch and still decompress everything.
type fallback struct {
	tiers      []childComp
	saved      *core.Options
	deadlineMS int64
	verify     bool
	verifyAbs  float64
	frame      bool
	lastTier   string
}

func (p *fallback) Prefix() string  { return "fallback" }
func (p *fallback) Version() string { return Version }

func (p *fallback) chain() string {
	names := make([]string, len(p.tiers))
	for i := range p.tiers {
		names[i] = p.tiers[i].name
	}
	return strings.Join(names, ",")
}

func (p *fallback) setChain(csv string) {
	p.tiers = p.tiers[:0]
	for _, name := range strings.Split(csv, ",") {
		if name = strings.TrimSpace(name); name != "" {
			p.tiers = append(p.tiers, childComp{name: name})
		}
	}
}

func (p *fallback) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keyFallbackCompressors, p.chain())
	o.SetValue(keyFallbackDeadlineMS, p.deadlineMS)
	o.SetValue(keyFallbackVerify, boolOpt(p.verify))
	o.SetValue(keyFallbackVerifyAbs, p.verifyAbs)
	o.SetValue(keyFallbackFrame, boolOpt(p.frame))
	o.SetValue(keyFallbackLastTier, p.lastTier)
	for i := range p.tiers {
		if p.tiers[i].comp != nil {
			o.Merge(p.tiers[i].comp.Options())
		}
	}
	return o
}

func (p *fallback) SetOptions(o *core.Options) error {
	if v, err := o.GetString(keyFallbackCompressors); err == nil && v != p.chain() {
		p.setChain(v)
	}
	if v, err := o.GetInt64(keyFallbackDeadlineMS); err == nil {
		if v < 0 {
			return fmt.Errorf("%w: %s %d", core.ErrInvalidOption, keyFallbackDeadlineMS, v)
		}
		p.deadlineMS = v
	}
	if v, err := o.GetInt32(keyFallbackVerify); err == nil {
		p.verify = v != 0
	}
	if v, err := o.GetFloat64(keyFallbackVerifyAbs); err == nil {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("%w: %s %v", core.ErrInvalidOption, keyFallbackVerifyAbs, v)
		}
		p.verifyAbs = v
	}
	if v, err := o.GetInt32(keyFallbackFrame); err == nil {
		p.frame = v != 0
	}
	if p.saved == nil {
		p.saved = core.NewOptions()
	}
	p.saved.Merge(o)
	for i := range p.tiers {
		if p.tiers[i].comp != nil {
			if err := p.tiers[i].comp.SetOptions(o); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *fallback) CheckOptions(o *core.Options) error {
	clone := p.cloneFallback()
	return clone.SetOptions(o)
}

func (p *fallback) Configuration() *core.Options {
	cfg := core.StandardConfiguration(core.ThreadSafetySerialized, "stable", Version, false)
	cfg.SetValue("fallback:known", core.SupportedCompressors())
	return cfg
}

func (p *fallback) deadline() time.Duration {
	return time.Duration(p.deadlineMS) * time.Millisecond
}

func (p *fallback) CompressImpl(in, out *core.Data) error {
	if len(p.tiers) == 0 {
		return fmt.Errorf("%w: %s", core.ErrMissingOption, keyFallbackCompressors)
	}
	var tierErrs []error
	for i := range p.tiers {
		comp, err := p.tiers[i].get(p.saved)
		if err != nil {
			tierErrs = append(tierErrs, err)
			continue
		}
		var result *core.Data
		err = runGuarded(p.deadline(), func() error {
			tmp := core.NewEmpty(core.DTypeByte, 0)
			if err := comp.Compress(in, tmp); err != nil {
				return err
			}
			result = tmp
			return nil
		})
		if err == nil && p.verify {
			if err = p.verifyRoundTrip(comp, in, result); err != nil {
				trace.CounterAdd(trace.CtrFallbackVerifyFailed, 1)
			}
		}
		if err != nil {
			if errors.Is(err, core.ErrTimeout) {
				// The timed-out call still runs detached on this instance (Go
				// cannot kill a goroutine); drop it so later calls build a
				// fresh child instead of sharing state with the zombie.
				p.tiers[i].comp = nil
			}
			tierErrs = append(tierErrs, fmt.Errorf("tier %s: %w", p.tiers[i].name, err))
			continue
		}
		prefix := comp.Prefix()
		p.lastTier = prefix
		trace.CounterAdd(trace.FallbackTierKey(prefix), 1)
		if i > 0 {
			trace.CounterAdd(trace.CtrFallbackEngaged, 1)
		}
		if p.frame {
			framed, err := EncodeFrame(prefix, in.DType(), in.Dims(), result.Bytes())
			if err != nil {
				return err
			}
			trace.CounterAdd(trace.CtrFrameWritten, 1)
			out.Become(core.NewBytes(framed))
			return nil
		}
		out.Become(result)
		return nil
	}
	trace.CounterAdd(trace.CtrFallbackExhausted, 1)
	return fmt.Errorf("fallback: all %d tiers failed: %w", len(p.tiers), errors.Join(tierErrs...))
}

// verifyRoundTrip is the optional error-bound gate: the candidate stream is
// decompressed (under the same guarded execution) and compared against the
// input. With fallback:verify_abs > 0 the max pointwise absolute error must
// stay within the bound; with no bound the decompression merely has to
// succeed with the right shape. A tier that cannot honor the bound on this
// input degrades to the next tier instead of silently shipping bad data.
func (p *fallback) verifyRoundTrip(comp *core.Compressor, in, stream *core.Data) error {
	dec := core.NewEmpty(in.DType(), in.Dims()...)
	err := runGuarded(p.deadline(), func() error {
		return comp.Decompress(core.NewBytes(stream.Bytes()), dec)
	})
	if err != nil {
		return fmt.Errorf("round-trip verification: %w", err)
	}
	if dec.Len() != in.Len() {
		return fmt.Errorf("round-trip verification: %w: %d elements became %d",
			core.ErrInvalidDims, in.Len(), dec.Len())
	}
	if p.verifyAbs > 0 && in.DType().Numeric() {
		if maxErr := maxAbsError(in, dec); maxErr > p.verifyAbs {
			return fmt.Errorf("round-trip verification: max abs error %g exceeds bound %g",
				maxErr, p.verifyAbs)
		}
	}
	return nil
}

// maxAbsError computes the max pointwise |a-b|; non-finite pairs count as 0
// when both sides agree and +Inf when they diverge.
func maxAbsError(a, b *core.Data) float64 {
	av, bv := a.AsFloat64s(), b.AsFloat64s()
	if len(av) != len(bv) {
		return math.Inf(1)
	}
	maxErr := 0.0
	for i := range av {
		x, y := av[i], bv[i]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			if x != y && !(math.IsNaN(x) && math.IsNaN(y)) {
				return math.Inf(1)
			}
			continue
		}
		if d := math.Abs(x - y); d > maxErr {
			maxErr = d
		}
	}
	return maxErr
}

func (p *fallback) DecompressImpl(in, out *core.Data) error {
	if len(p.tiers) == 0 {
		return fmt.Errorf("%w: %s", core.ErrMissingOption, keyFallbackCompressors)
	}
	b := in.Bytes()
	if IsFramed(b) {
		f, err := DecodeFrame(b)
		if err != nil {
			trace.CounterAdd(trace.CtrFrameCorrupt, 1)
			return err
		}
		return p.decompressVia(f, out)
	}
	// Unframed stream (fallback:frame was off at compress time): the
	// producing tier is unrecorded, so probe the chain in preference order.
	var tierErrs []error
	for i := range p.tiers {
		comp, err := p.tiers[i].get(p.saved)
		if err != nil {
			tierErrs = append(tierErrs, err)
			continue
		}
		tmp := core.NewEmpty(out.DType(), out.Dims()...)
		err = runGuarded(p.deadline(), func() error {
			return comp.Decompress(core.NewBytes(b), tmp)
		})
		if err == nil {
			p.lastTier = comp.Prefix()
			out.Become(tmp)
			return nil
		}
		if errors.Is(err, core.ErrTimeout) {
			p.tiers[i].comp = nil
		}
		tierErrs = append(tierErrs, fmt.Errorf("tier %s: %w", p.tiers[i].name, err))
	}
	trace.CounterAdd(trace.CtrFallbackExhausted, 1)
	return fmt.Errorf("fallback: no tier decompressed the stream: %w", errors.Join(tierErrs...))
}

// decompressVia routes a framed stream back to the tier that produced it.
func (p *fallback) decompressVia(f Frame, out *core.Data) error {
	var getErrs []error
	for i := range p.tiers {
		comp, err := p.tiers[i].get(p.saved)
		if err != nil {
			if p.tiers[i].name == f.Prefix {
				// The frame names this tier; a failure to build it is a
				// configuration problem, not stream corruption.
				getErrs = append(getErrs, fmt.Errorf("tier %s: %w", p.tiers[i].name, err))
			}
			continue
		}
		if comp.Prefix() != f.Prefix && p.tiers[i].name != f.Prefix {
			continue
		}
		hintDT, hintDims := out.DType(), out.Dims()
		if hintDT == core.DTypeUnset || len(hintDims) == 0 {
			hintDT, hintDims = f.DType, f.Dims
		}
		// Decompress into a fresh buffer, not the caller's out: a timed-out
		// call keeps running detached and must not share a target with
		// whatever the caller does next.
		target := core.NewEmpty(hintDT, hintDims...)
		err = runGuarded(p.deadline(), func() error {
			return comp.Decompress(core.NewBytes(f.Payload), target)
		})
		if err != nil {
			if errors.Is(err, core.ErrTimeout) {
				p.tiers[i].comp = nil
			}
			return err
		}
		p.lastTier = comp.Prefix()
		out.Become(target)
		return nil
	}
	if len(getErrs) > 0 {
		return fmt.Errorf("fallback: tier for frame producer %q failed to instantiate: %w",
			f.Prefix, errors.Join(getErrs...))
	}
	return fmt.Errorf("resilience: %w: frame produced by %q which is not in the chain %q",
		core.ErrCorrupt, f.Prefix, p.chain())
}

func (p *fallback) cloneFallback() *fallback {
	clone := &fallback{
		deadlineMS: p.deadlineMS,
		verify:     p.verify,
		verifyAbs:  p.verifyAbs,
		frame:      p.frame,
		lastTier:   p.lastTier,
	}
	clone.tiers = make([]childComp, len(p.tiers))
	for i := range p.tiers {
		clone.tiers[i] = p.tiers[i].clone()
	}
	if p.saved != nil {
		clone.saved = p.saved.Clone()
	}
	return clone
}

func (p *fallback) Clone() core.CompressorPlugin { return p.cloneFallback() }
