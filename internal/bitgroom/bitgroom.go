// Package bitgroom implements the mantissa-manipulation "compressors" from
// the paper's plugin list: Bit Grooming (Zender, GMD'16) and Digit Rounding
// (Delaunay et al.). Both quantize IEEE floating point mantissas so that a
// requested number of significant decimal digits survives, then rely on a
// byte-shuffle + DEFLATE backend to shrink the now highly-redundant tail
// bytes. Decompression is exact with respect to the groomed values.
package bitgroom

import (
	"errors"
	"fmt"
	"math"

	"pressio/internal/core"
	"pressio/internal/lossless"
)

// Version is the plugin version.
const Version = "1.0.0-go"

// ErrCorrupt reports a malformed stream.
var ErrCorrupt = errors.New("bitgroom: corrupt stream")

// bitsForDigits returns the number of explicit mantissa bits that must be
// kept to preserve nsd significant decimal digits (log2(10) ≈ 3.32 bits per
// digit, plus guard bits as in the NCO implementation).
func bitsForDigits(nsd int) int {
	return int(math.Ceil(float64(nsd)*math.Log2(10))) + 3
}

// GroomFloat32 applies bit grooming in place: the mantissa tail below the
// kept bits is alternately zeroed and set for successive values, which
// cancels the rounding bias that plain truncation would introduce.
func GroomFloat32(vals []float32, nsd int) {
	keep := bitsForDigits(nsd)
	if keep >= 23 {
		return
	}
	mask := uint32(0xffffffff) << uint(23-keep)
	tail := ^mask & 0x007fffff
	for i, v := range vals {
		b := math.Float32bits(v)
		if isSpecial32(b) {
			continue
		}
		if i&1 == 0 {
			b &= mask
		} else {
			b |= tail
		}
		vals[i] = math.Float32frombits(b)
	}
}

// GroomFloat64 is the float64 variant of GroomFloat32.
func GroomFloat64(vals []float64, nsd int) {
	keep := bitsForDigits(nsd)
	if keep >= 52 {
		return
	}
	mask := ^uint64(0) << uint(52-keep)
	tail := ^mask & 0x000fffffffffffff
	for i, v := range vals {
		b := math.Float64bits(v)
		if isSpecial64(b) {
			continue
		}
		if i&1 == 0 {
			b &= mask
		} else {
			b |= tail
		}
		vals[i] = math.Float64frombits(b)
	}
}

// RoundFloat32 applies digit rounding in place: round-to-nearest at the
// kept-bit position, which halves the worst-case error of grooming at the
// cost of a possible carry into the exponent (still a representable value).
func RoundFloat32(vals []float32, nsd int) {
	keep := bitsForDigits(nsd)
	if keep >= 23 {
		return
	}
	shift := uint(23 - keep)
	half := uint32(1) << (shift - 1)
	mask := uint32(0xffffffff) << shift
	for i, v := range vals {
		b := math.Float32bits(v)
		if isSpecial32(b) {
			continue
		}
		vals[i] = math.Float32frombits((b + half) & mask)
	}
}

// RoundFloat64 is the float64 variant of RoundFloat32.
func RoundFloat64(vals []float64, nsd int) {
	keep := bitsForDigits(nsd)
	if keep >= 52 {
		return
	}
	shift := uint(52 - keep)
	half := uint64(1) << (shift - 1)
	mask := ^uint64(0) << shift
	for i, v := range vals {
		b := math.Float64bits(v)
		if isSpecial64(b) {
			continue
		}
		vals[i] = math.Float64frombits((b + half) & mask)
	}
}

func isSpecial32(b uint32) bool { return b&0x7f800000 == 0x7f800000 } // Inf/NaN
func isSpecial64(b uint64) bool { return b&0x7ff0000000000000 == 0x7ff0000000000000 }

// kind selects grooming or rounding.
type kind int

const (
	kindGroom kind = iota
	kindRound
)

type plugin struct {
	kind  kind
	name  string
	nsd   int32
	level int32
}

func init() {
	core.RegisterCompressor("bit_grooming", func() core.CompressorPlugin {
		return &plugin{kind: kindGroom, name: "bit_grooming", nsd: 5}
	})
	core.RegisterCompressor("digit_rounding", func() core.CompressorPlugin {
		return &plugin{kind: kindRound, name: "digit_rounding", nsd: 5}
	})
}

func (p *plugin) Prefix() string  { return p.name }
func (p *plugin) Version() string { return Version }

func (p *plugin) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(p.name+":nsd", p.nsd)
	o.SetValue(core.KeyLossless, p.level)
	return o
}

func (p *plugin) SetOptions(o *core.Options) error {
	if v, err := o.GetInt32(p.name + ":nsd"); err == nil {
		if v < 1 || v > 15 {
			return fmt.Errorf("%w: %s:nsd %d outside [1,15]", core.ErrInvalidOption, p.name, v)
		}
		p.nsd = v
	}
	if v, err := o.GetInt32(core.KeyLossless); err == nil {
		p.level = v
	}
	return nil
}

func (p *plugin) CheckOptions(o *core.Options) error {
	clone := *p
	return clone.SetOptions(o)
}

func (p *plugin) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetyMultiple, "stable", Version, false)
}

func (p *plugin) CompressImpl(in, out *core.Data) error {
	var groomed *core.Data
	switch in.DType() {
	case core.DTypeFloat32:
		groomed = in.Clone()
		if p.kind == kindGroom {
			GroomFloat32(groomed.Float32s(), int(p.nsd))
		} else {
			RoundFloat32(groomed.Float32s(), int(p.nsd))
		}
	case core.DTypeFloat64:
		groomed = in.Clone()
		if p.kind == kindGroom {
			GroomFloat64(groomed.Float64s(), int(p.nsd))
		} else {
			RoundFloat64(groomed.Float64s(), int(p.nsd))
		}
	default:
		return fmt.Errorf("%w: %s accepts only floating point data, got %s",
			core.ErrInvalidDType, p.name, in.DType())
	}
	packed, err := lossless.Deflate(lossless.Shuffle(groomed.Bytes(), in.DType().Size()), int(p.level))
	if err != nil {
		return err
	}
	buf := make([]byte, 0, len(packed)+1)
	buf = append(buf, byte(in.DType().Size()))
	buf = append(buf, packed...)
	out.Become(core.NewBytes(buf))
	return nil
}

func (p *plugin) DecompressImpl(in, out *core.Data) error {
	b := in.Bytes()
	if len(b) < 1 {
		return ErrCorrupt
	}
	elem := int(b[0])
	raw, err := lossless.Inflate(b[1:])
	if err != nil {
		return err
	}
	return core.FillDecompressed(out, lossless.Unshuffle(raw, elem))
}

func (p *plugin) Clone() core.CompressorPlugin {
	clone := *p
	return &clone
}
