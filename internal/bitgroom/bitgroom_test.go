package bitgroom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pressio/internal/core"
)

func TestGroomPreservesSignificantDigits32(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float32, 100)
		for i := range vals {
			vals[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6)))
		}
		orig := append([]float32(nil), vals...)
		nsd := 1 + rng.Intn(6)
		GroomFloat32(vals, nsd)
		tol := math.Pow(10, -float64(nsd))
		for i := range vals {
			if orig[i] == 0 {
				continue
			}
			rel := math.Abs(float64(vals[i]-orig[i])) / math.Abs(float64(orig[i]))
			if rel > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundPreservesSignificantDigits64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
	}
	orig := append([]float64(nil), vals...)
	RoundFloat64(vals, 4)
	for i := range vals {
		if orig[i] == 0 {
			continue
		}
		rel := math.Abs(vals[i]-orig[i]) / math.Abs(orig[i])
		if rel > 1e-4 {
			t.Fatalf("elem %d rel error %g > 1e-4", i, rel)
		}
	}
}

func TestSpecialsUntouched(t *testing.T) {
	vals := []float32{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)), 1.2345}
	GroomFloat32(vals, 2)
	if !math.IsNaN(float64(vals[0])) || !math.IsInf(float64(vals[1]), 1) || !math.IsInf(float64(vals[2]), -1) {
		t.Fatal("special values clobbered by grooming")
	}
	RoundFloat32(vals, 2)
	if !math.IsNaN(float64(vals[0])) || !math.IsInf(float64(vals[1]), 1) {
		t.Fatal("special values clobbered by rounding")
	}
}

func TestGroomingReducesEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float32, 1<<14)
	for i := range vals {
		vals[i] = float32(100 + rng.Float64())
	}
	in := core.FromFloat32s(vals, uint64(len(vals)))
	for _, name := range []string{"bit_grooming", "digit_rounding"} {
		c, err := core.NewCompressor(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetOptions(core.NewOptions().SetValue(name+":nsd", int32(3))); err != nil {
			t.Fatal(err)
		}
		comp, err := core.Compress(c, in)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(in.ByteLen()) / float64(comp.ByteLen())
		if ratio < 1.7 {
			t.Fatalf("%s: ratio %f too low after grooming to 3 digits", name, ratio)
		}
		dec, err := core.Decompress(c, comp, core.DTypeFloat32, uint64(len(vals)))
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range dec.Float32s() {
			rel := math.Abs(float64(v-vals[i])) / math.Abs(float64(vals[i]))
			if rel > 1e-3 {
				t.Fatalf("%s: elem %d rel error %g", name, i, rel)
			}
		}
	}
}

func TestNSDValidation(t *testing.T) {
	c, _ := core.NewCompressor("bit_grooming")
	if err := c.SetOptions(core.NewOptions().SetValue("bit_grooming:nsd", int32(0))); err == nil {
		t.Fatal("expected nsd validation error")
	}
	if err := c.SetOptions(core.NewOptions().SetValue("bit_grooming:nsd", int32(99))); err == nil {
		t.Fatal("expected nsd validation error")
	}
}

func TestRejectsIntegers(t *testing.T) {
	c, _ := core.NewCompressor("digit_rounding")
	if _, err := core.Compress(c, core.FromInt64s([]int64{1, 2})); err == nil {
		t.Fatal("expected dtype error")
	}
}

func TestInputNotClobbered(t *testing.T) {
	// §IV-B: compressors must not clobber caller buffers.
	vals := []float32{1.23456789, 2.3456789, 3.456789}
	in := core.FromFloat32s(vals, 3)
	before := in.Clone()
	c, _ := core.NewCompressor("bit_grooming")
	if _, err := core.Compress(c, in); err != nil {
		t.Fatal(err)
	}
	if !in.Equal(before) {
		t.Fatal("compressor clobbered its input")
	}
}
