package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace_event format's "complete"
// flavor (ph "X"): a named interval with microsecond timestamp and duration,
// grouped by pid/tid. chrome://tracing and Perfetto both load it directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders spans as a Chrome trace_event JSON document.
// Each span becomes a complete ("X") event on its goroutine's track; the
// span and parent ids ride along in args so tools (and tests) can recover
// the exact nesting without relying on interval containment.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		args := map[string]any{
			"span_id":   s.ID,
			"parent_id": s.Parent,
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "pressio",
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Duration.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  s.Goroutine,
			Args: args,
		})
	}
	// Chrome sorts internally but a time-ordered file diffs and reviews
	// better.
	sort.Slice(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ns"})
}

// WriteChromeTraceFile snapshots the collected spans and writes them to
// path as a Chrome trace_event file.
func WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, Snapshot()); err != nil {
		_ = f.Close() // the encode error is the one worth reporting
		return err
	}
	return f.Close()
}

// WriteTree renders spans as an indented forest, each line showing the
// span's duration, name, and attributes — the quick-look exporter for
// terminals.
func WriteTree(w io.Writer, spans []SpanRecord) error {
	children := make(map[uint64][]SpanRecord, len(spans))
	known := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		known[s.ID] = true
	}
	var roots []SpanRecord
	for _, s := range spans {
		// A span whose parent was dropped (or never ended) prints as a root
		// rather than vanishing.
		if s.Parent != 0 && known[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	byStart := func(list []SpanRecord) {
		sort.Slice(list, func(i, j int) bool { return list[i].Start < list[j].Start })
	}
	byStart(roots)
	var walk func(s SpanRecord, depth int) error
	walk = func(s SpanRecord, depth int) error {
		line := fmt.Sprintf("%*s%-12s %s", depth*2, "", s.Duration.Round(time.Microsecond), s.Name)
		for _, a := range s.Attrs {
			line += fmt.Sprintf(" %s=%v", a.Key, a.Value)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		kids := children[s.ID]
		byStart(kids)
		for _, k := range kids {
			if err := walk(k, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}

// Rollup aggregates every span of one name.
type Rollup struct {
	// Count is the number of spans.
	Count int
	// Total is the summed duration.
	Total time.Duration
	// Min and Max bound the individual durations.
	Min, Max time.Duration
}

// Mean returns the average span duration (0 when empty).
func (r Rollup) Mean() time.Duration {
	if r.Count == 0 {
		return 0
	}
	return r.Total / time.Duration(r.Count)
}

// RollupByName aggregates spans by name — the summary the trace metrics
// plugin reports through Results().
func RollupByName(spans []SpanRecord) map[string]Rollup {
	out := make(map[string]Rollup)
	for _, s := range spans {
		r, ok := out[s.Name]
		if !ok || s.Duration < r.Min {
			r.Min = s.Duration
		}
		if s.Duration > r.Max {
			r.Max = s.Duration
		}
		r.Count++
		r.Total += s.Duration
		out[s.Name] = r
	}
	return out
}

// WriteSummary renders span rollups and telemetry registry contents as a
// compact text report (used by pressio-bench after a traced run).
func WriteSummary(w io.Writer, spans []SpanRecord) error {
	rollups := RollupByName(spans)
	names := make([]string, 0, len(rollups))
	for n := range rollups {
		names = append(names, n)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "%-36s %8s %12s %12s %12s\n", "span", "count", "total", "mean", "max"); err != nil {
		return err
	}
	for _, n := range names {
		r := rollups[n]
		if _, err := fmt.Fprintf(w, "%-36s %8d %12s %12s %12s\n",
			n, r.Count, r.Total.Round(time.Microsecond),
			r.Mean().Round(time.Microsecond), r.Max.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	ctrs := Counters()
	if len(ctrs) > 0 {
		if _, err := fmt.Fprintf(w, "%-36s %12s\n", "counter", "value"); err != nil {
			return err
		}
		for _, n := range CounterNames() {
			if _, err := fmt.Fprintf(w, "%-36s %12d\n", n, ctrs[n]); err != nil {
				return err
			}
		}
	}
	for n, h := range Histograms() {
		if h.Count == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%-36s n=%d mean=%s p99<=%s max=%s\n",
			n, h.Count, h.Mean().Round(time.Microsecond),
			h.Quantile(0.99).Round(time.Microsecond), h.Max.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}
