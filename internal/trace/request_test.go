package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRequestTraceIDs(t *testing.T) {
	rt := NewRequestTrace("")
	id := rt.TraceID()
	if len(id) != 32 {
		t.Fatalf("generated trace id %q, want 32 hex digits", id)
	}
	if !validTraceID(id) {
		t.Fatalf("generated trace id %q not valid", id)
	}
	// A supplied valid id is kept verbatim; a malformed one is replaced.
	const given = "4bf92f3577b34da6a3ce929d0e0e4736"
	if got := NewRequestTrace(given).TraceID(); got != given {
		t.Errorf("valid id replaced: %q", got)
	}
	for _, bad := range []string{"xyz", strings.Repeat("0", 32), strings.Repeat("A", 32), strings.Repeat("a", 31)} {
		if got := NewRequestTrace(bad).TraceID(); got == bad {
			t.Errorf("malformed id %q accepted", bad)
		}
	}
}

func TestParseTraceparent(t *testing.T) {
	id, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok || id != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("ParseTraceparent = %q, %v", id, ok)
	}
	for _, bad := range []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero id
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad separator
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestRequestTraceSpanTree(t *testing.T) {
	rt := NewRequestTrace("")
	root := rt.Start("daemon.request", Str("path", "/compress"))
	child := root.Child("daemon.codec", Int("bytes", 128))
	grand := child.Child("daemon.codec.inner")
	grand.End()
	child.End()
	root.End()
	root.End() // idempotent

	spans := rt.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, c, g := byName["daemon.request"], byName["daemon.codec"], byName["daemon.codec.inner"]
	if r.Parent != 0 {
		t.Errorf("root parent %d, want 0", r.Parent)
	}
	if c.Parent != r.ID {
		t.Errorf("child parent %d, want root id %d", c.Parent, r.ID)
	}
	if g.Parent != c.ID {
		t.Errorf("grandchild parent %d, want child id %d", g.Parent, c.ID)
	}
	// The traceparent carries the root span id.
	tp := rt.Traceparent()
	parts := strings.Split(tp, "-")
	if len(parts) != 4 || parts[0] != "00" || parts[1] != rt.TraceID() || parts[3] != "01" {
		t.Fatalf("traceparent %q malformed", tp)
	}
	if parts[2] == strings.Repeat("0", 16) {
		t.Errorf("traceparent parent-id is zero after spans started: %q", tp)
	}
}

func TestRequestTraceNilSafety(t *testing.T) {
	var rt *RequestTrace
	if rt.TraceID() != "" || rt.Traceparent() != "" || rt.Spans() != nil {
		t.Error("nil RequestTrace accessors not zero-valued")
	}
	sp := rt.Start("x")
	sp.End()
	sp.Child("y").End() // all no-ops, must not panic

	ctx := context.Background()
	if got := RequestTraceFrom(ctx); got != nil {
		t.Errorf("RequestTraceFrom(empty ctx) = %v, want nil", got)
	}
	real := NewRequestTrace("")
	ctx = WithRequestTrace(ctx, real)
	if got := RequestTraceFrom(ctx); got != real {
		t.Error("RequestTraceFrom did not round-trip")
	}
}

func TestRequestTraceConcurrent(t *testing.T) {
	rt := NewRequestTrace("")
	root := rt.Start("root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.Child("worker", Int("i", int64(i)))
			time.Sleep(time.Millisecond)
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(rt.Spans()); got != 9 {
		t.Fatalf("got %d spans, want 9", got)
	}
}

func TestRequestTraceBounded(t *testing.T) {
	rt := NewRequestTrace("")
	for i := 0; i < maxRequestSpans+10; i++ {
		rt.Start("s").End()
	}
	if got := len(rt.Spans()); got != maxRequestSpans {
		t.Fatalf("buffer grew to %d, want cap %d", got, maxRequestSpans)
	}
}
