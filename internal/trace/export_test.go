package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

func sampleSpans() []SpanRecord {
	return []SpanRecord{
		{ID: 1, Parent: 0, Name: "pressio.compress", Goroutine: 1,
			Start: 0, Duration: 100 * time.Microsecond,
			Attrs: []Attr{Str("plugin", "chunking")}},
		{ID: 2, Parent: 1, Name: "chunking.compress_impl", Goroutine: 1,
			Start: 5 * time.Microsecond, Duration: 90 * time.Microsecond},
		{ID: 3, Parent: 2, Name: "chunking.chunk", Goroutine: 7,
			Start: 10 * time.Microsecond, Duration: 40 * time.Microsecond,
			Attrs: []Attr{Int("worker", 0), Int("chunk", 0)}},
	}
}

func TestChromeTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("want 3 events, got %d", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" {
			t.Fatalf("phase %v", ev["ph"])
		}
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("missing name: %v", ev)
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("missing ts: %v", ev)
		}
		if _, ok := ev["dur"].(float64); !ok {
			t.Fatalf("missing dur: %v", ev)
		}
	}
}

func TestChromeTracePreservesNesting(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	var doc chromeFile
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	byName := map[string]chromeEvent{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name] = ev
	}
	wrapper := byName["pressio.compress"]
	impl := byName["chunking.compress_impl"]
	chunk := byName["chunking.chunk"]
	if impl.Args["parent_id"] != wrapper.Args["span_id"] {
		t.Fatal("impl span not nested under wrapper")
	}
	if chunk.Args["parent_id"] != impl.Args["span_id"] {
		t.Fatal("chunk span not nested under impl")
	}
	if wrapper.Args["plugin"] != "chunking" {
		t.Fatalf("attr lost: %v", wrapper.Args)
	}
	if chunk.Tid != 7 {
		t.Fatalf("goroutine track lost: %d", chunk.Tid)
	}
}

func TestWriteTree(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTree(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines:\n%s", out)
	}
	if !strings.Contains(lines[0], "pressio.compress") {
		t.Fatalf("root first:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "  ") || !strings.HasPrefix(lines[2], "    ") {
		t.Fatalf("indentation lost:\n%s", out)
	}
	if !strings.Contains(lines[2], "worker=0") {
		t.Fatalf("attrs lost:\n%s", out)
	}
}

func TestWriteTreeOrphanBecomesRoot(t *testing.T) {
	spans := []SpanRecord{
		{ID: 9, Parent: 12345, Name: "orphan", Duration: time.Microsecond},
	}
	var buf bytes.Buffer
	if err := WriteTree(&buf, spans); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "orphan") {
		t.Fatal("orphan span vanished")
	}
}

func TestRollupByName(t *testing.T) {
	spans := []SpanRecord{
		{ID: 1, Name: "a", Duration: 10 * time.Millisecond},
		{ID: 2, Name: "a", Duration: 30 * time.Millisecond},
		{ID: 3, Name: "b", Duration: 5 * time.Millisecond},
	}
	r := RollupByName(spans)
	if r["a"].Count != 2 || r["a"].Total != 40*time.Millisecond {
		t.Fatalf("rollup a = %+v", r["a"])
	}
	if r["a"].Min != 10*time.Millisecond || r["a"].Max != 30*time.Millisecond {
		t.Fatalf("rollup a bounds = %+v", r["a"])
	}
	if r["a"].Mean() != 20*time.Millisecond {
		t.Fatalf("rollup a mean = %s", r["a"].Mean())
	}
	if r["b"].Count != 1 {
		t.Fatalf("rollup b = %+v", r["b"])
	}
}

func TestWriteSummary(t *testing.T) {
	ResetTelemetry()
	defer ResetTelemetry()
	CounterAdd("summary.ctr", 7)
	ObserveDuration("summary.lat", 3*time.Millisecond)
	var buf bytes.Buffer
	if err := WriteSummary(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pressio.compress", "summary.ctr", "summary.lat"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestWriteChromeTraceFile(t *testing.T) {
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	Start("file.span").End()
	path := t.TempDir() + "/out.json"
	if err := WriteChromeTraceFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeFile
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 1 || doc.TraceEvents[0].Name != "file.span" {
		t.Fatalf("file contents: %+v", doc.TraceEvents)
	}
}
