// Package trace is the observability layer of the framework: span-based
// tracing plus a process-wide telemetry registry of counters and latency
// histograms, built only on the standard library.
//
// The design goal is the same property the paper claims for the compression
// abstraction itself — effectively zero overhead when unused. Tracing is off
// by default; every instrumentation site in the hot paths is guarded by a
// single atomic load (Enabled), so the disabled cost on a Compress dispatch
// is one predictable branch (benchmarked in trace_test.go and the top-level
// bench_test.go).
//
// Spans nest automatically within a goroutine: Start parents the new span
// under the goroutine's innermost open span. Crossing a goroutine boundary
// (e.g. the chunking meta-compressor handing chunks to workers) is explicit:
// capture the parent with Current and call parent.StartChild from the
// worker. All Span methods are nil-receiver safe, so call sites do not need
// to re-check Enabled between Start and End.
//
// Completed spans accumulate in a bounded in-memory buffer; Snapshot copies
// them out and the exporters in export.go render them as a Chrome
// trace_event file (chrome://tracing, Perfetto) or a human-readable tree.
package trace

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is a key/value annotation attached to a span (worker ids, plugin
// names, byte counts). Values are stringified eagerly only when tracing is
// enabled — constructors are cheap plain structs.
type Attr struct {
	Key   string
	Value any
}

// Str builds a string-valued attribute.
func Str(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer-valued attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// Uint builds an unsigned-integer-valued attribute.
func Uint(key string, value uint64) Attr { return Attr{Key: key, Value: value} }

// Span is one timed region of the pipeline. A zero-duration of its methods
// on a nil receiver makes disabled tracing transparent at call sites.
type Span struct {
	id        uint64
	parent    uint64
	name      string
	attrs     []Attr
	goroutine uint64
	begin     time.Time
	ended     atomic.Bool
}

// SpanRecord is the immutable form of a completed span, as returned by
// Snapshot and consumed by the exporters.
type SpanRecord struct {
	// ID uniquely identifies the span within the process.
	ID uint64
	// Parent is the enclosing span's ID, or 0 for a root span.
	Parent uint64
	// Name is the region name, conventionally "<component>.<operation>".
	Name string
	// Attrs are the annotations supplied at Start.
	Attrs []Attr
	// Goroutine is the id of the goroutine the span ran on.
	Goroutine uint64
	// Start is the offset from the trace epoch (process start or last
	// Reset).
	Start time.Duration
	// Duration is the span's wall-clock extent.
	Duration time.Duration
}

// maxSpans bounds the completed-span buffer; beyond it spans are counted as
// dropped (see the "trace.spans_dropped" counter) rather than retained.
const maxSpans = 1 << 20

var (
	enabled atomic.Bool
	nextID  atomic.Uint64

	mu     sync.Mutex
	epoch  = time.Now()
	spans  []SpanRecord
	stacks = map[uint64][]*Span{}
)

// Enabled reports whether span collection is on. This is the single check
// every instrumentation site performs; it compiles to one atomic load.
func Enabled() bool { return enabled.Load() }

// Enable turns span collection on.
func Enable() { enabled.Store(true) }

// Disable turns span collection off. Spans already open still record when
// ended; new Start calls return nil.
func Disable() { enabled.Store(false) }

// SetEnabled sets the collection state explicitly.
func SetEnabled(on bool) { enabled.Store(on) }

// goroutineID extracts the numeric id from the runtime's one-line stack
// header ("goroutine 123 [running]:"). It costs on the order of a
// microsecond and only runs while tracing is enabled.
func goroutineID() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine " (10 bytes) and parse digits.
	var id uint64
	for _, c := range buf[10:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// Start opens a span named name, parented under the current goroutine's
// innermost open span (if any). It returns nil when tracing is disabled.
func Start(name string, attrs ...Attr) *Span {
	if !enabled.Load() {
		return nil
	}
	return start(name, attrs, 0, false)
}

// Current returns the current goroutine's innermost open span, or nil.
// Use it to capture a parent before handing work to other goroutines.
func Current() *Span {
	if !enabled.Load() {
		return nil
	}
	gid := goroutineID()
	mu.Lock()
	defer mu.Unlock()
	st := stacks[gid]
	if len(st) == 0 {
		return nil
	}
	return st[len(st)-1]
}

// StartChild opens a span explicitly parented under s, on the calling
// goroutine (which may differ from s's). A nil receiver starts a root span,
// so workers can call parent.StartChild unconditionally.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if !enabled.Load() {
		return nil
	}
	var parent uint64
	if s != nil {
		parent = s.id
	}
	return start(name, attrs, parent, true)
}

func start(name string, attrs []Attr, parent uint64, explicitParent bool) *Span {
	gid := goroutineID()
	sp := &Span{
		id:        nextID.Add(1),
		parent:    parent,
		name:      name,
		attrs:     attrs,
		goroutine: gid,
		begin:     time.Now(),
	}
	mu.Lock()
	st := stacks[gid]
	if !explicitParent && len(st) > 0 {
		sp.parent = st[len(st)-1].id
	}
	stacks[gid] = append(st, sp)
	mu.Unlock()
	return sp
}

// End closes the span, recording it into the completed-span buffer. It is
// nil-safe and idempotent.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	end := time.Now()
	rec := SpanRecord{
		ID:        s.id,
		Parent:    s.parent,
		Name:      s.name,
		Attrs:     s.attrs,
		Goroutine: s.goroutine,
		Duration:  end.Sub(s.begin),
	}
	mu.Lock()
	rec.Start = s.begin.Sub(epoch)
	// Pop the span from its goroutine's stack. It is normally at the top;
	// out-of-order ends (overlapping manual spans) splice it out wherever
	// it sits so the stack cannot leak.
	st := stacks[s.goroutine]
	for i := len(st) - 1; i >= 0; i-- {
		if st[i] == s {
			st = append(st[:i], st[i+1:]...)
			break
		}
	}
	if len(st) == 0 {
		delete(stacks, s.goroutine)
	} else {
		stacks[s.goroutine] = st
	}
	if len(spans) < maxSpans {
		spans = append(spans, rec)
		mu.Unlock()
		return
	}
	mu.Unlock()
	CounterAdd(CtrSpansDropped, 1)
}

// Name returns the span's name (empty for nil), mainly for tests and
// instrumentation that labels child work after its parent.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Snapshot returns a copy of all completed spans since the last Reset,
// ordered by completion time.
func Snapshot() []SpanRecord {
	mu.Lock()
	defer mu.Unlock()
	out := make([]SpanRecord, len(spans))
	copy(out, spans)
	return out
}

// Len reports the number of completed spans currently buffered.
func Len() int {
	mu.Lock()
	defer mu.Unlock()
	return len(spans)
}

// Reset discards all completed spans and open-span bookkeeping and restarts
// the trace epoch. Telemetry counters are unaffected (see ResetTelemetry).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	spans = nil
	stacks = map[uint64][]*Span{}
	epoch = time.Now()
}
