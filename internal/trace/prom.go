package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the telemetry
// registry. Counters become `pressio_<name>_total` counter series, latency
// histograms become cumulative `_bucket`/`_sum`/`_count` series in seconds,
// and callers may append gauges (live queue depths, runtime stats, build
// info). A JSON rendering of the same data is kept for tooling that predates
// the exposition format.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Gauge is an instantaneous value for exposition: a sampled runtime stat, a
// live queue depth, or a constant info metric with labels.
type Gauge struct {
	// Name is the raw metric name; it is mangled by PromName on output.
	Name string
	// Help is the one-line HELP text.
	Help string
	// Labels are optional key/value pairs rendered inside {...}.
	Labels map[string]string
	// Value is the sampled value.
	Value float64
}

// PromName mangles a registry key into a legal Prometheus metric name:
// every character outside [a-zA-Z0-9_:] becomes '_' and the "pressio_"
// namespace prefix is prepended (unless already present).
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 8)
	if !strings.HasPrefix(name, "pressio_") {
		b.WriteString("pressio_")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set in deterministic (sorted) order.
func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat formats a sample value the way Prometheus expects.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every registered counter and histogram, plus the
// supplied gauges, in the Prometheus text exposition format. Output order is
// deterministic: counters sorted by name, histograms sorted by name, then
// gauges in the order given.
func WritePrometheus(w io.Writer, gauges ...Gauge) error {
	counters := Counters()
	names := make([]string, 0, len(counters))
	for k := range counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s pressio counter %s\n# TYPE %s counter\n%s %d\n",
			pn, name, pn, pn, counters[name]); err != nil {
			return err
		}
	}

	hists := Histograms()
	names = names[:0]
	for k := range hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writePromHistogram(w, name, hists[name]); err != nil {
			return err
		}
	}

	for _, g := range gauges {
		pn := PromName(g.Name)
		help := g.Help
		if help == "" {
			help = "pressio gauge " + g.Name
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s%s %s\n",
			pn, help, pn, pn, promLabels(g.Labels), promFloat(g.Value)); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one registry histogram as a cumulative
// Prometheus histogram in seconds. Registry bucket i holds observations with
// nanoseconds in [2^(i-1), 2^i), so bucket i's upper bound is 2^i ns;
// buckets above the highest populated one are elided (they add no
// information — the +Inf bucket closes the series).
func writePromHistogram(w io.Writer, name string, s HistogramSnapshot) error {
	pn := PromName(name) + "_seconds"
	if _, err := fmt.Fprintf(w, "# HELP %s pressio latency histogram %s\n# TYPE %s histogram\n",
		pn, name, pn); err != nil {
		return err
	}
	last := 0
	for i, n := range s.Buckets {
		if n > 0 {
			last = i
		}
	}
	var cum int64
	for i := 0; i <= last; i++ {
		cum += s.Buckets[i]
		le := float64(uint64(1)<<uint(i)) / 1e9
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(le), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		pn, s.Count, pn, promFloat(s.Sum.Seconds()), pn, s.Count)
	return err
}

// RuntimeGauges samples the Go runtime: goroutine count, heap and GC state.
// It is the exposition-time sampler behind pressiod's /metricz runtime
// section; ReadMemStats costs a brief stop-the-world, which is fine at
// scrape frequency.
func RuntimeGauges() []Gauge {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return []Gauge{
		{Name: "pressio_goroutines", Help: "number of live goroutines", Value: float64(runtime.NumGoroutine())},
		{Name: "pressio_heap_alloc_bytes", Help: "bytes of allocated heap objects", Value: float64(m.HeapAlloc)},
		{Name: "pressio_heap_sys_bytes", Help: "bytes of heap obtained from the OS", Value: float64(m.HeapSys)},
		{Name: "pressio_heap_objects", Help: "number of allocated heap objects", Value: float64(m.HeapObjects)},
		{Name: "pressio_mallocs_total", Help: "cumulative count of heap allocations", Value: float64(m.Mallocs)},
		{Name: "pressio_gc_cycles_total", Help: "completed GC cycles", Value: float64(m.NumGC)},
		{Name: "pressio_gc_pause_seconds_total", Help: "cumulative GC stop-the-world pause", Value: float64(m.PauseTotalNs) / 1e9},
		{Name: "pressio_gc_next_target_bytes", Help: "heap size target of the next GC cycle", Value: float64(m.NextGC)},
	}
}

// BuildInfoGauge is the conventional constant info metric carrying version
// labels: `pressio_build_info{go_version="go1.x", ...} 1`.
func BuildInfoGauge(version string) Gauge {
	return Gauge{
		Name: "pressio_build_info",
		Help: "build information; the value is always 1",
		Labels: map[string]string{
			"go_version": runtime.Version(),
			"version":    version,
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
		},
		Value: 1,
	}
}

// metricsJSON is the schema of the ?format=json exposition mode.
type metricsJSON struct {
	Counters   map[string]int64          `json:"counters"`
	Histograms map[string]histogramJSON  `json:"histograms"`
	Gauges     map[string]float64        `json:"gauges"`
	Labels     map[string]map[string]string `json:"labels,omitempty"`
}

type histogramJSON struct {
	Count  int64   `json:"count"`
	SumNs  int64   `json:"sum_ns"`
	MeanNs int64   `json:"mean_ns"`
	MaxNs  int64   `json:"max_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P99Ns  int64   `json:"p99_ns"`
}

// WriteMetricsJSON renders the same registry contents plus gauges as one
// JSON object — the machine-readable mode kept for pre-Prometheus tooling.
func WriteMetricsJSON(w io.Writer, gauges ...Gauge) error {
	out := metricsJSON{
		Counters:   Counters(),
		Histograms: map[string]histogramJSON{},
		Gauges:     map[string]float64{},
	}
	for name, s := range Histograms() {
		out.Histograms[name] = histogramJSON{
			Count:  s.Count,
			SumNs:  int64(s.Sum),
			MeanNs: int64(s.Mean()),
			MaxNs:  int64(s.Max),
			P50Ns:  int64(s.Quantile(0.5)),
			P99Ns:  int64(s.Quantile(0.99)),
		}
	}
	for _, g := range gauges {
		out.Gauges[g.Name] = g.Value
		if len(g.Labels) > 0 {
			if out.Labels == nil {
				out.Labels = map[string]map[string]string{}
			}
			out.Labels[g.Name] = g.Labels
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
