package trace

import (
	"sync"
	"testing"
	"time"
)

// withTracing runs fn with span collection enabled and clean buffers,
// restoring the disabled default afterwards so tests stay independent.
func withTracing(t *testing.T, fn func()) {
	t.Helper()
	Reset()
	ResetTelemetry()
	Enable()
	defer func() {
		Disable()
		Reset()
		ResetTelemetry()
	}()
	fn()
}

func TestDisabledStartIsNilAndSafe(t *testing.T) {
	Disable()
	sp := Start("x", Str("k", "v"))
	if sp != nil {
		t.Fatal("Start while disabled should return nil")
	}
	sp.End() // must not panic
	if child := sp.StartChild("y"); child != nil {
		t.Fatal("StartChild while disabled should return nil")
	}
	if Current() != nil {
		t.Fatal("Current while disabled should return nil")
	}
	if sp.Name() != "" {
		t.Fatal("nil span name")
	}
}

func TestSpanNestingSameGoroutine(t *testing.T) {
	withTracing(t, func() {
		root := Start("root")
		child := Start("child")
		grand := Start("grand")
		grand.End()
		child.End()
		root.End()

		recs := Snapshot()
		if len(recs) != 3 {
			t.Fatalf("want 3 spans, got %d", len(recs))
		}
		byName := map[string]SpanRecord{}
		for _, r := range recs {
			byName[r.Name] = r
		}
		if byName["root"].Parent != 0 {
			t.Fatalf("root parent %d", byName["root"].Parent)
		}
		if byName["child"].Parent != byName["root"].ID {
			t.Fatal("child not nested under root")
		}
		if byName["grand"].Parent != byName["child"].ID {
			t.Fatal("grand not nested under child")
		}
	})
}

func TestSiblingAfterChildEnds(t *testing.T) {
	withTracing(t, func() {
		root := Start("root")
		a := Start("a")
		a.End()
		b := Start("b")
		b.End()
		root.End()
		byName := map[string]SpanRecord{}
		for _, r := range Snapshot() {
			byName[r.Name] = r
		}
		if byName["a"].Parent != byName["root"].ID || byName["b"].Parent != byName["root"].ID {
			t.Fatal("siblings must share the root parent")
		}
	})
}

func TestStartChildAcrossGoroutines(t *testing.T) {
	withTracing(t, func() {
		parent := Start("parent")
		if Current() != parent {
			t.Fatal("Current should be the open span")
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sp := parent.StartChild("chunk", Int("worker", int64(w)))
				inner := Start("inner") // nests under chunk via the goroutine stack
				inner.End()
				sp.End()
			}(w)
		}
		wg.Wait()
		parent.End()

		recs := Snapshot()
		if len(recs) != 9 {
			t.Fatalf("want 9 spans, got %d", len(recs))
		}
		var parentID uint64
		for _, r := range recs {
			if r.Name == "parent" {
				parentID = r.ID
			}
		}
		chunks := map[uint64]bool{}
		for _, r := range recs {
			if r.Name == "chunk" {
				if r.Parent != parentID {
					t.Fatal("chunk not parented to the captured span")
				}
				chunks[r.ID] = true
			}
		}
		for _, r := range recs {
			if r.Name == "inner" && !chunks[r.Parent] {
				t.Fatal("inner span not nested under a chunk span")
			}
		}
	})
}

func TestEndIsIdempotent(t *testing.T) {
	withTracing(t, func() {
		sp := Start("once")
		sp.End()
		sp.End()
		if got := Len(); got != 1 {
			t.Fatalf("double End recorded %d spans", got)
		}
	})
}

func TestResetClearsSpans(t *testing.T) {
	withTracing(t, func() {
		Start("a").End()
		if Len() != 1 {
			t.Fatal("span not recorded")
		}
		Reset()
		if Len() != 0 {
			t.Fatal("Reset left spans behind")
		}
	})
}

func TestCounters(t *testing.T) {
	ResetTelemetry()
	defer ResetTelemetry()
	CounterAdd("test.ctr", 2)
	CounterAdd("test.ctr", 3)
	if v := CounterValue("test.ctr"); v != 5 {
		t.Fatalf("counter = %d", v)
	}
	if v := CounterValue("test.never"); v != 0 {
		t.Fatalf("untouched counter = %d", v)
	}
	all := Counters()
	if all["test.ctr"] != 5 {
		t.Fatalf("snapshot = %v", all)
	}
	var wg sync.WaitGroup
	c := GetCounter("test.par")
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("parallel counter = %d", c.Value())
	}
}

func TestHistogram(t *testing.T) {
	ResetTelemetry()
	defer ResetTelemetry()
	h := GetHistogram("test.lat")
	h.Observe(10 * time.Microsecond)
	h.Observe(20 * time.Microsecond)
	h.Observe(1 * time.Millisecond)
	s := Histograms()["test.lat"]
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != time.Millisecond {
		t.Fatalf("max = %s", s.Max)
	}
	want := (10*time.Microsecond + 20*time.Microsecond + time.Millisecond) / 3
	if s.Mean() != want {
		t.Fatalf("mean = %s want %s", s.Mean(), want)
	}
	if q := s.Quantile(0.5); q < 10*time.Microsecond || q > 40*time.Microsecond {
		t.Fatalf("p50 = %s", q)
	}
	if q := s.Quantile(1.0); q < time.Millisecond {
		t.Fatalf("p100 = %s", q)
	}
}

// BenchmarkStartDisabled measures the per-call cost of the disabled-tracing
// guard — the entirety of what instrumented hot paths pay when tracing is
// off. Expected: ~1-2 ns/op, 0 allocs.
func BenchmarkStartDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Start("bench")
		sp.End()
	}
}

// BenchmarkEnabledGuard measures just the Enabled() check, the branch that
// guards attribute construction at instrumentation sites.
func BenchmarkEnabledGuard(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Enabled() {
			b.Fatal("enabled")
		}
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Start("bench")
		sp.End()
		if i%4096 == 0 {
			Reset() // keep the buffer from saturating mid-benchmark
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	ResetTelemetry()
	c := GetCounter("bench.ctr")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
