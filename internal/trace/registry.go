package trace

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The telemetry registry is the always-available half of the observability
// layer: process-wide named counters and latency histograms. Unlike span
// collection it has no global on/off switch — an atomic add on a registered
// counter is cheap enough for cold and warm paths alike — but the framework
// only drives the per-call compress/decompress instruments while tracing is
// enabled, preserving the zero-cost-when-off contract on the hottest path.

// Well-known registry keys. Components may mint their own names freely;
// these are the ones the framework itself maintains.
const (
	// CtrCompressCalls counts Compressor.Compress invocations (traced runs).
	CtrCompressCalls = "compress.calls"
	// CtrCompressBytesIn accumulates uncompressed input bytes.
	CtrCompressBytesIn = "compress.bytes_in"
	// CtrCompressBytesOut accumulates compressed output bytes.
	CtrCompressBytesOut = "compress.bytes_out"
	// CtrDecompressCalls counts Compressor.Decompress invocations.
	CtrDecompressCalls = "decompress.calls"
	// CtrDecompressBytesIn accumulates compressed input bytes.
	CtrDecompressBytesIn = "decompress.bytes_in"
	// CtrDecompressBytesOut accumulates decompressed output bytes.
	CtrDecompressBytesOut = "decompress.bytes_out"
	// CtrThreadSafetyMalformed counts malformed "pressio:thread_safe"
	// configuration strings that were silently coerced to "single".
	CtrThreadSafetyMalformed = "core.thread_safety.malformed"
	// CtrSpansDropped counts spans discarded because the buffer was full.
	CtrSpansDropped = "trace.spans_dropped"
	// CtrGuardRetries counts transient failures the guard meta-compressor
	// retried (one increment per re-attempt, not per call).
	CtrGuardRetries = "resilience.guard.retries"
	// CtrGuardPanics counts panics recovered at the guard boundary and
	// converted to errors.
	CtrGuardPanics = "resilience.guard.panics_recovered"
	// CtrGuardTimeouts counts guarded calls cancelled by the watchdog
	// deadline.
	CtrGuardTimeouts = "resilience.guard.timeouts"
	// CtrFrameWritten counts integrity frames emitted on compress.
	CtrFrameWritten = "resilience.frame.written"
	// CtrFrameCorrupt counts frames rejected before decompression (bad
	// magic, truncation, or CRC32-C mismatch).
	CtrFrameCorrupt = "resilience.frame.corrupt"
	// CtrFallbackEngaged counts calls served by a tier other than the first
	// in a fallback chain.
	CtrFallbackEngaged = "resilience.fallback.engaged"
	// CtrFallbackExhausted counts calls on which every fallback tier failed.
	CtrFallbackExhausted = "resilience.fallback.exhausted"
	// CtrFallbackVerifyFailed counts compressions rejected by the fallback
	// round-trip verification gate.
	CtrFallbackVerifyFailed = "resilience.fallback.verify_failed"
	// CtrFaultsInjected counts faults (errors, panics, delays, bit flips)
	// the faultinject plugin deliberately introduced.
	CtrFaultsInjected = "faultinject.faults"
	// CtrBreakerOpened counts closed→open (and half-open→open) transitions
	// of circuit breakers: the moment a failing component started being
	// protected from further traffic.
	CtrBreakerOpened = "service.breaker.opened"
	// CtrBreakerRejected counts calls rejected fast because a breaker was
	// open (no work was attempted).
	CtrBreakerRejected = "service.breaker.rejected"
	// CtrBreakerProbes counts half-open trial calls allowed through an
	// otherwise-open breaker.
	CtrBreakerProbes = "service.breaker.halfopen_probes"
	// CtrBreakerRecovered counts half-open→closed transitions: enough probes
	// succeeded to restore normal traffic.
	CtrBreakerRecovered = "service.breaker.recovered"
	// CtrAdmissionAdmitted counts requests that passed admission control
	// (immediately or after queueing).
	CtrAdmissionAdmitted = "service.admission.admitted"
	// CtrAdmissionQueued counts requests that had to wait in the admission
	// queue before being admitted or shed.
	CtrAdmissionQueued = "service.admission.queued"
	// CtrAdmissionShed counts requests rejected by admission control: queue
	// full, deadline would expire while queued, context cancelled while
	// waiting, or a request larger than the whole budget.
	CtrAdmissionShed = "service.admission.shed"
	// CtrDaemonRequests counts HTTP requests the pressiod daemon accepted
	// for processing (after admission).
	CtrDaemonRequests = "service.daemon.requests"
	// CtrDaemonDrained counts in-flight requests completed during a graceful
	// drain.
	CtrDaemonDrained = "service.daemon.drained"
	// CtrClusterRequests counts operations the cluster router accepted for
	// routing (one per buffer, before any peer attempts).
	CtrClusterRequests = "cluster.requests"
	// CtrClusterRetries counts per-peer transient retransmissions (one
	// increment per re-attempt against the same peer).
	CtrClusterRetries = "cluster.retries"
	// CtrClusterFailovers counts placements abandoned for the next replica:
	// the preferred peer was down, its breaker open, or its call failed.
	CtrClusterFailovers = "cluster.failovers"
	// CtrClusterHedges counts hedge requests launched because the primary
	// exceeded its p99-derived hedge delay.
	CtrClusterHedges = "cluster.hedges"
	// CtrClusterHedgeWins counts hedged operations won by the hedge (the
	// primary was cancelled or finished late).
	CtrClusterHedgeWins = "cluster.hedge_wins"
	// CtrClusterLocalFallback counts operations served by the router's local
	// compressor because every replica was unreachable.
	CtrClusterLocalFallback = "cluster.local_fallback"
	// CtrClusterPeerDown counts up→down health transitions observed by the
	// cluster health checker.
	CtrClusterPeerDown = "cluster.peer_down"
	// CtrClusterPeerUp counts down→up health transitions (initial discovery
	// of a live peer included).
	CtrClusterPeerUp = "cluster.peer_up"
	// HistCompress is the per-call plugin compress latency histogram.
	HistCompress = "compress.latency"
	// HistDecompress is the per-call plugin decompress latency histogram.
	HistDecompress = "decompress.latency"
	// HistQueueWait is the admission-queue wait-time histogram (time between
	// arrival and admission for requests that had to queue).
	HistQueueWait = "service.admission.queue_wait"
	// HistDaemonRequest is the end-to-end pressiod data-plane request
	// latency histogram, observed for every request regardless of the
	// global tracing switch (it is the serving SLO metric).
	HistDaemonRequest = "service.daemon.latency"
	// HistClusterPeer is the per-attempt router→peer round-trip latency
	// histogram (successful attempts only; it feeds nothing — the hedge
	// delay uses the router's own windowed per-peer tracker).
	HistClusterPeer = "cluster.peer.latency"
	// CtrStorePuts counts acknowledged object-store PUT operations.
	CtrStorePuts = "store.puts"
	// CtrStorePutBytes accumulates uncompressed bytes accepted by PUTs.
	CtrStorePutBytes = "store.put.bytes"
	// CtrStoreGets counts object-store reads (full, row, and byte range).
	CtrStoreGets = "store.gets"
	// CtrStoreGetBytes accumulates uncompressed bytes served by reads.
	CtrStoreGetBytes = "store.get.bytes"
	// CtrStoreDeletes counts acknowledged object-store DELETE operations.
	CtrStoreDeletes = "store.deletes"
	// CtrStoreJournalRecords counts records appended to the write-ahead
	// journal (puts, deletes, and quarantine markers).
	CtrStoreJournalRecords = "store.journal.records"
	// CtrStoreJournalBytes accumulates journal bytes written.
	CtrStoreJournalBytes = "store.journal.bytes"
	// CtrStoreJournalFsyncs counts journal fsync calls; under concurrent
	// writers group commit makes this grow slower than journal.records.
	CtrStoreJournalFsyncs = "store.journal.fsyncs"
	// CtrStoreReplayed counts journal records re-applied during recovery.
	CtrStoreReplayed = "store.recovery.replayed"
	// CtrStoreReplaySkipped counts journal records skipped during recovery
	// because a manifest checkpoint already covers their LSN.
	CtrStoreReplaySkipped = "store.recovery.skipped"
	// CtrStoreTornTails counts torn journal tails truncated at recovery.
	CtrStoreTornTails = "store.journal.torn_tails"
	// CtrStoreTornBytes accumulates torn-tail bytes quarantined before
	// truncation (never silently discarded).
	CtrStoreTornBytes = "store.journal.torn_bytes"
	// CtrStoreSegmentsRebuilt counts segment containers rebuilt from
	// journaled chunk payloads during recovery.
	CtrStoreSegmentsRebuilt = "store.recovery.segments_rebuilt"
	// CtrStoreCheckpoints counts manifest checkpoints written.
	CtrStoreCheckpoints = "store.checkpoints"
	// CtrStoreGCSegments counts obsolete segment files removed by
	// checkpoint garbage collection.
	CtrStoreGCSegments = "store.gc.segments"
	// CtrStoreScrubPasses counts completed scrub passes.
	CtrStoreScrubPasses = "store.scrub.passes"
	// CtrStoreScrubChunks counts chunk checksums verified by the scrubber.
	CtrStoreScrubChunks = "store.scrub.chunks"
	// CtrStoreChunksQuarantined counts chunks quarantined after checksum
	// mismatch (by scrub, recovery, or fsck).
	CtrStoreChunksQuarantined = "store.chunks.quarantined"
	// CtrStoreChunksRepaired counts chunks restored from journaled payloads.
	CtrStoreChunksRepaired = "store.chunks.repaired"
	// HistStorePut is the end-to-end store PUT latency histogram (compress,
	// journal+fsync, segment publish).
	HistStorePut = "store.put.latency"
	// HistStoreGet is the store read latency histogram.
	HistStoreGet = "store.get.latency"
)

// PluginErrorKey names the per-plugin error counter ("plugin.sz.errors").
func PluginErrorKey(prefix string) string { return "plugin." + prefix + ".errors" }

// FallbackTierKey names the per-tier served-call counter
// ("resilience.fallback.tier.sz").
func FallbackTierKey(prefix string) string { return "resilience.fallback.tier." + prefix }

// BulkheadShedKey names the per-bulkhead shed counter
// ("service.bulkhead.compress.shed"), so one compartment's overload is
// distinguishable from another's.
func BulkheadShedKey(name string) string { return "service.bulkhead." + name + ".shed" }

// BreakerScopeKey names the per-scope breaker open-transition counter
// ("service.breaker.scope.sz.opened").
func BreakerScopeKey(scope string) string { return "service.breaker.scope." + scope + ".opened" }

// ClusterPeerKey names a per-peer cluster counter
// ("cluster.peer.127.0.0.1:8123.requests"); suffix is one of "requests",
// "failures", or "hedge_wins".
func ClusterPeerKey(peer, suffix string) string { return "cluster.peer." + peer + "." + suffix }

// Counter is a monotonically adjustable int64 telemetry cell.
type Counter struct {
	v atomic.Int64
}

// Add adjusts the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// histBuckets is the number of power-of-two latency buckets: bucket i holds
// observations with nanoseconds in [2^(i-1), 2^i) (bucket 0 holds 0ns).
const histBuckets = 40

// Histogram is a fixed-bucket exponential latency histogram, safe for
// concurrent observation.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		old := h.maxNs.Load()
		if ns <= old || h.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
}

// HistogramSnapshot is an immutable copy of a histogram's state.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count int64
	// Sum is the total of all observed durations.
	Sum time.Duration
	// Max is the largest observed duration.
	Max time.Duration
	// Buckets[i] counts observations with nanoseconds in [2^(i-1), 2^i).
	Buckets [histBuckets]int64
}

// Mean returns the average observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(int64(s.Sum) / s.Count)
}

// Quantile returns an upper bound for the p-quantile (0 < p <= 1) derived
// from the bucket boundaries — coarse (factor-of-two) but monotone. The last
// bucket is unbounded (it absorbs every observation of 2^38 ns ≈ 4.6 min and
// beyond), so a quantile landing there reports Max rather than the
// meaningless 2^39 boundary.
func (s HistogramSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 || p <= 0 {
		return 0
	}
	target := int64(p * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen >= target {
			if i == histBuckets-1 {
				return s.Max
			}
			return time.Duration(int64(1) << uint(i))
		}
	}
	return s.Max
}

func (h *Histogram) snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sumNs.Load())
	s.Max = time.Duration(h.maxNs.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

var (
	regMu      sync.RWMutex
	counters   = map[string]*Counter{}
	histograms = map[string]*Histogram{}
)

// GetCounter returns the named counter, creating it on first use. The
// returned pointer is stable until the next ResetTelemetry, so hot paths can
// resolve once and Add repeatedly — but a pointer held across a reset is
// detached from the registry (see ResetTelemetry).
func GetCounter(name string) *Counter {
	regMu.RLock()
	c := counters[name]
	regMu.RUnlock()
	if c != nil {
		return c
	}
	regMu.Lock()
	defer regMu.Unlock()
	if c = counters[name]; c == nil {
		c = &Counter{}
		counters[name] = c
	}
	return c
}

// CounterAdd adjusts the named counter by n, creating it on first use.
func CounterAdd(name string, n int64) { GetCounter(name).Add(n) }

// CounterValue returns the named counter's value (0 when never touched).
func CounterValue(name string) int64 {
	regMu.RLock()
	c := counters[name]
	regMu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// GetHistogram returns the named histogram, creating it on first use.
func GetHistogram(name string) *Histogram {
	regMu.RLock()
	h := histograms[name]
	regMu.RUnlock()
	if h != nil {
		return h
	}
	regMu.Lock()
	defer regMu.Unlock()
	if h = histograms[name]; h == nil {
		h = &Histogram{}
		histograms[name] = h
	}
	return h
}

// ObserveDuration records d into the named histogram.
func ObserveDuration(name string, d time.Duration) { GetHistogram(name).Observe(d) }

// Counters returns a sorted-key snapshot of every registered counter.
func Counters() map[string]int64 {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make(map[string]int64, len(counters))
	for k, c := range counters {
		out[k] = c.Value()
	}
	return out
}

// Histograms returns a snapshot of every registered histogram.
func Histograms() map[string]HistogramSnapshot {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make(map[string]HistogramSnapshot, len(histograms))
	for k, h := range histograms {
		out[k] = h.snapshot()
	}
	return out
}

// CounterNames returns the registered counter names, sorted.
func CounterNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(counters))
	for k := range counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// ResetTelemetry clears all counters and histograms (for tests and between
// benchmark or ledger phases).
//
// The retained-pointer contract: a *Counter or *Histogram obtained from
// GetCounter/GetHistogram BEFORE a reset remains usable — Add/Observe never
// panic — but it is detached: the registry now holds a fresh zeroed cell
// under the same name, so increments through the stale pointer are invisible
// to CounterValue/Counters/Histograms and to every exporter. Code that must
// survive phase resets (the perf-ledger harness resets between stages) must
// either re-resolve the pointer after each reset or use the name-keyed
// helpers (CounterAdd/ObserveDuration), which resolve on every call.
func ResetTelemetry() {
	regMu.Lock()
	defer regMu.Unlock()
	counters = map[string]*Counter{}
	histograms = map[string]*Histogram{}
}
