package trace

import (
	"testing"
	"time"
)

// The ResetTelemetry retained-pointer contract: pointers obtained before a
// reset stay usable but are detached — their increments are invisible to the
// registry — and re-resolving by name yields the fresh live cell. Ledger
// runs rely on this to reset cleanly between phases.

func TestResetDetachesCounterPointers(t *testing.T) {
	ResetTelemetry()
	defer ResetTelemetry()

	old := GetCounter("contract.counter")
	old.Add(5)
	if got := CounterValue("contract.counter"); got != 5 {
		t.Fatalf("pre-reset value %d, want 5", got)
	}

	ResetTelemetry()
	old.Add(100) // must not panic, must not resurrect the registry value
	if got := CounterValue("contract.counter"); got != 0 {
		t.Fatalf("post-reset registry value %d, want 0 (stale pointer leaked in)", got)
	}

	fresh := GetCounter("contract.counter")
	if fresh == old {
		t.Fatal("GetCounter returned the detached pre-reset pointer")
	}
	fresh.Add(2)
	if got := CounterValue("contract.counter"); got != 2 {
		t.Fatalf("fresh pointer value %d, want 2", got)
	}
	if old.Value() != 105 {
		t.Fatalf("detached pointer lost its own count: %d", old.Value())
	}
}

func TestResetDetachesHistogramPointers(t *testing.T) {
	ResetTelemetry()
	defer ResetTelemetry()

	old := GetHistogram("contract.hist")
	old.Observe(time.Millisecond)

	ResetTelemetry()
	old.Observe(time.Second) // usable but detached

	if s := Histograms()["contract.hist"]; s.Count != 0 {
		t.Fatalf("post-reset registry histogram count %d, want 0", s.Count)
	}
	fresh := GetHistogram("contract.hist")
	if fresh == old {
		t.Fatal("GetHistogram returned the detached pre-reset pointer")
	}
	fresh.Observe(2 * time.Millisecond)
	s := Histograms()["contract.hist"]
	if s.Count != 1 || s.Max != 2*time.Millisecond {
		t.Fatalf("fresh histogram snapshot %+v", s)
	}
	// The name-keyed helper always resolves the live cell, so it is the
	// reset-safe way to instrument code that spans phase boundaries.
	ObserveDuration("contract.hist", 3*time.Millisecond)
	if s := Histograms()["contract.hist"]; s.Count != 2 {
		t.Fatalf("ObserveDuration after reset: count %d, want 2", s.Count)
	}
}

func TestHistogramQuantileMeanEdges(t *testing.T) {
	// Empty histogram: everything is zero.
	var empty HistogramSnapshot
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 || empty.Quantile(1) != 0 {
		t.Error("empty histogram summaries not zero")
	}

	// Single observation: mean is the observation, every in-range quantile
	// is its power-of-two upper bound, p<=0 is zero.
	var one Histogram
	one.Observe(700 * time.Nanosecond) // bucket 10: [512, 1024)
	s := one.snapshot()
	if s.Mean() != 700*time.Nanosecond {
		t.Errorf("single-observation mean %v", s.Mean())
	}
	if got := s.Quantile(0); got != 0 {
		t.Errorf("p=0 quantile %v, want 0", got)
	}
	if got := s.Quantile(-1); got != 0 {
		t.Errorf("negative-p quantile %v, want 0", got)
	}
	for _, p := range []float64{0.001, 0.5, 1} {
		if got := s.Quantile(p); got != 1024*time.Nanosecond {
			t.Errorf("Quantile(%v) = %v, want 1024ns bucket bound", p, got)
		}
	}

	// p=0 vs p=1 on a spread distribution: monotone and bounded by Max's
	// bucket.
	var spread Histogram
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, 100 * time.Millisecond} {
		spread.Observe(d)
	}
	ss := spread.snapshot()
	if p50, p100 := ss.Quantile(0.5), ss.Quantile(1); p50 > p100 {
		t.Errorf("quantiles not monotone: p50 %v > p100 %v", p50, p100)
	}
	if got := ss.Quantile(1); got < 100*time.Millisecond {
		t.Errorf("p=1 quantile %v below the largest observation", got)
	}

	// Overflow bucket: observations at/beyond 2^38 ns land in the last
	// bucket, which is unbounded — quantiles falling there must report the
	// true Max, not the fictitious 2^39 boundary.
	var over Histogram
	huge := 2 * time.Hour
	over.Observe(huge)
	os := over.snapshot()
	if os.Buckets[histBuckets-1] != 1 {
		t.Fatalf("2h observation not in overflow bucket: %+v", os.Buckets)
	}
	if got := os.Quantile(0.99); got != huge {
		t.Errorf("overflow-bucket quantile %v, want Max %v", got, huge)
	}
	if os.Mean() != huge {
		t.Errorf("overflow mean %v, want %v", os.Mean(), huge)
	}

	// Mixed: one normal and one overflow observation; p=1 must hit Max.
	over.Observe(time.Millisecond)
	os = over.snapshot()
	if got := os.Quantile(1); got != huge {
		t.Errorf("mixed p=1 quantile %v, want Max %v", got, huge)
	}
	wantMean := (huge + time.Millisecond) / 2
	if os.Mean() != wantMean {
		t.Errorf("mixed mean %v, want %v", os.Mean(), wantMean)
	}
}
