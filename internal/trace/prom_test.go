package trace

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"compress.calls":              "pressio_compress_calls",
		"service.bulkhead.x.shed":     "pressio_service_bulkhead_x_shed",
		"pressio_goroutines":          "pressio_goroutines",
		"weird-name with spaces":      "pressio_weird_name_with_spaces",
		"colons:are:legal":            "pressio_colons:are:legal",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// promSampleLine matches a sample line of the text exposition format.
var promSampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9eE.]+$`)

func TestWritePrometheus(t *testing.T) {
	ResetTelemetry()
	defer ResetTelemetry()
	CounterAdd("compress.calls", 7)
	ObserveDuration("compress.latency", 3*time.Microsecond)
	ObserveDuration("compress.latency", 5*time.Microsecond)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf,
		Gauge{Name: "pressio_pool_free", Help: "free workers", Value: 4},
		BuildInfoGauge("test"),
	); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE pressio_compress_calls_total counter\npressio_compress_calls_total 7\n",
		"# TYPE pressio_compress_latency_seconds histogram\n",
		"pressio_compress_latency_seconds_count 2\n",
		"pressio_compress_latency_seconds_bucket{le=\"+Inf\"} 2\n",
		"# TYPE pressio_pool_free gauge\npressio_pool_free 4\n",
		"# TYPE pressio_build_info gauge\n",
		"goarch=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Every non-comment line must be a well-formed sample, and histogram
	// buckets must be cumulative (non-decreasing).
	var lastBucket int64 = -1
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSampleLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
		if strings.HasPrefix(line, "pressio_compress_latency_seconds_bucket") {
			v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			if v < lastBucket {
				t.Errorf("buckets not cumulative: %d after %d", v, lastBucket)
			}
			lastBucket = v
		}
	}
	if lastBucket != 2 {
		t.Errorf("final bucket %d, want 2", lastBucket)
	}
}

func TestWriteMetricsJSON(t *testing.T) {
	ResetTelemetry()
	defer ResetTelemetry()
	CounterAdd("decompress.calls", 3)
	ObserveDuration("decompress.latency", time.Millisecond)

	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, Gauge{Name: "pressio_goroutines", Value: 12}); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count  int64 `json:"count"`
			MeanNs int64 `json:"mean_ns"`
			P99Ns  int64 `json:"p99_ns"`
		} `json:"histograms"`
		Gauges map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("json mode did not parse: %v\n%s", err, buf.String())
	}
	if got.Counters["decompress.calls"] != 3 {
		t.Errorf("counter = %d, want 3", got.Counters["decompress.calls"])
	}
	h := got.Histograms["decompress.latency"]
	if h.Count != 1 || h.MeanNs != int64(time.Millisecond) {
		t.Errorf("histogram %+v", h)
	}
	if got.Gauges["pressio_goroutines"] != 12 {
		t.Errorf("gauge = %v, want 12", got.Gauges["pressio_goroutines"])
	}
}

func TestRuntimeGauges(t *testing.T) {
	gs := RuntimeGauges()
	byName := map[string]float64{}
	for _, g := range gs {
		byName[g.Name] = g.Value
	}
	if byName["pressio_goroutines"] < 1 {
		t.Errorf("goroutines gauge %v", byName["pressio_goroutines"])
	}
	if byName["pressio_heap_alloc_bytes"] <= 0 {
		t.Errorf("heap alloc gauge %v", byName["pressio_heap_alloc_bytes"])
	}
}
