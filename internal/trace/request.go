package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing: a RequestTrace is a private span collector owned by
// one request, independent of the process-global span buffer and of the
// global Enabled switch. A server creates one per request, threads it through
// the call stack via the context, and harvests the completed span tree when
// the request ends — no global state, no cross-request filtering, and no
// pressure on the bounded global buffer from a long-running daemon.
//
// Identity is W3C Trace Context compatible: the trace id is 16 random bytes
// rendered as 32 lowercase hex digits, parseable from and serializable to a
// `traceparent` header ("00-<trace-id>-<parent-id>-<flags>").

// traceparentVersion is the only W3C Trace Context version we emit.
const traceparentVersion = "00"

// RequestTrace collects the span tree of a single request. All methods are
// safe for concurrent use and nil-receiver safe, so handler code can record
// unconditionally whether or not a trace was attached.
type RequestTrace struct {
	traceID string

	mu     sync.Mutex
	nextID uint64
	rootID uint64
	epoch  time.Time
	spans  []SpanRecord
}

// maxRequestSpans bounds one request's span tree; a request that records
// more is misbehaving and further spans are dropped silently.
const maxRequestSpans = 4096

// NewRequestTrace starts a request trace under the given W3C trace id
// (32 lowercase hex digits). An empty or malformed id gets a fresh random
// one, so callers can pass whatever the inbound header contained.
func NewRequestTrace(traceID string) *RequestTrace {
	if !validTraceID(traceID) {
		traceID = randomTraceID()
	}
	return &RequestTrace{traceID: traceID, epoch: time.Now()}
}

// validTraceID reports whether s is 32 lowercase hex digits and not all
// zeros (the W3C invalid trace id).
func validTraceID(s string) bool {
	if len(s) != 32 {
		return false
	}
	zero := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

func randomTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// timestamp-derived id rather than panicking in a serving path.
		now := uint64(time.Now().UnixNano())
		for i := 0; i < 8; i++ {
			b[i] = byte(now >> (8 * i))
			b[i+8] = byte(now >> (8 * (7 - i)))
		}
	}
	return hex.EncodeToString(b[:])
}

// ParseTraceparent extracts the trace id from a W3C traceparent header
// ("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"). It accepts
// any version byte and ignores the parent-id and flags; ok is false when the
// header is structurally invalid.
func ParseTraceparent(h string) (traceID string, ok bool) {
	// version(2) '-' traceid(32) '-' parentid(16) '-' flags(2)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", false
	}
	id := h[3:35]
	if !validTraceID(id) {
		return "", false
	}
	return id, true
}

// TraceID returns the 32-hex-digit trace id.
func (t *RequestTrace) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// Traceparent renders the outbound W3C traceparent header for this trace,
// using the root span id (or zero before any span started) as the parent-id.
func (t *RequestTrace) Traceparent() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	root := t.rootID
	t.mu.Unlock()
	return fmt.Sprintf("%s-%s-%016x-01", traceparentVersion, t.traceID, root)
}

// RequestSpan is one timed region inside a RequestTrace. Like the global
// *Span, every method is nil-receiver safe.
type RequestSpan struct {
	t      *RequestTrace
	id     uint64
	parent uint64
	name   string
	attrs  []Attr
	begin  time.Time
	ended  atomic.Bool
}

// Start opens a root-level span in the request's tree. The first span
// started becomes the root whose id appears in Traceparent().
func (t *RequestTrace) Start(name string, attrs ...Attr) *RequestSpan {
	return t.newSpan(name, attrs, 0)
}

func (t *RequestTrace) newSpan(name string, attrs []Attr, parent uint64) *RequestSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	if t.rootID == 0 {
		t.rootID = id
	}
	t.mu.Unlock()
	return &RequestSpan{t: t, id: id, parent: parent, name: name, attrs: attrs, begin: time.Now()}
}

// Child opens a span parented under s (in s's request trace).
func (s *RequestSpan) Child(name string, attrs ...Attr) *RequestSpan {
	if s == nil {
		return nil
	}
	return s.t.newSpan(name, attrs, s.id)
}

// End closes the span and records it into the request's tree. Idempotent and
// nil-safe, mirroring the global Span contract.
func (s *RequestSpan) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	end := time.Now()
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxRequestSpans {
		return
	}
	t.spans = append(t.spans, SpanRecord{
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Attrs:    s.attrs,
		Start:    s.begin.Sub(t.epoch),
		Duration: end.Sub(s.begin),
	})
}

// Spans returns a copy of the completed spans, in completion order. The
// SpanRecord Start offsets are relative to the trace's creation.
func (t *RequestTrace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// reqTraceKey is the context key for the request's trace.
type reqTraceKey struct{}

// WithRequestTrace attaches t to the context, making it available to every
// layer the request flows through.
func WithRequestTrace(ctx context.Context, t *RequestTrace) context.Context {
	return context.WithValue(ctx, reqTraceKey{}, t)
}

// RequestTraceFrom returns the context's request trace, or nil — and because
// every RequestTrace/RequestSpan method is nil-safe, callers never need to
// check.
func RequestTraceFrom(ctx context.Context) *RequestTrace {
	t, _ := ctx.Value(reqTraceKey{}).(*RequestTrace)
	return t
}
