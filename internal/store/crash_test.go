package store

// The crash campaign: the store's durability argument, executed.
//
// Two matrices cover every declared filesystem crash point (enumerated via
// fsx.FSPoints(), so a new point added anywhere in the dependency graph
// fails these tests until it gets a matrix entry):
//
//   - TestCrashPointsFailMode injects FSModeFail at each point in-process:
//     the operation aborts exactly where a crash would, the store reopens,
//     and the per-point outcome (acknowledged data present byte-exact,
//     unacknowledged data fully present or fully absent) is asserted.
//
//   - TestCrashMatrixHardStop re-execs the test binary as a child pointed at
//     a store directory, arms FSModeExit via PRESSIO_FS_CRASH, and lets the
//     child die mid-PUT-load with os.Exit — no deferred cleanup, the
//     SIGKILL equivalent. The child appends to a durable ack log after each
//     acknowledged write. The parent kills the child twice (the second run
//     crashes during or after recovery of the first crash), then reopens and
//     proves: every acknowledged write present byte-exact, deletes honored,
//     zero phantom objects, and fsck clean after a checkpoint.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"pressio/internal/core"
	"pressio/internal/fsx"
)

const (
	envCrashDir = "PRESSIO_STORE_CRASH_DIR"
	envCrashAck = "PRESSIO_STORE_CRASH_ACK"
	envCrashRun = "PRESSIO_STORE_CRASH_RUN"
)

func TestMain(m *testing.M) {
	if os.Getenv(envCrashDir) != "" {
		os.Exit(storeCrashChild())
	}
	os.Exit(m.Run())
}

// childData derives a deterministic dataset from (name, run) so the parent
// can recompute exactly what any child wrote and compare byte-for-byte.
func childData(name, run string) *core.Data {
	h := fnv.New64a()
	h.Write([]byte(name + "/" + run))
	seed := h.Sum64()
	vals := make([]float64, 96)
	for i := range vals {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		vals[i] = float64(z%4096) / 8
	}
	return core.FromFloat64s(vals, uint64(len(vals)))
}

// crashOp is one state-changing operation of the child workload.
type crashOp struct {
	kind string // "put" or "del"
	name string
	run  string
}

// crashSchedule is the child's deterministic workload for one run: ten puts
// with a delete and two checkpoints interleaved (checkpoints change no
// object state and are not ack'd). Parent and child share this function —
// it is how the parent knows which single operation can be in flight at the
// moment of any crash.
func crashSchedule(run string) []crashOp {
	var ops []crashOp
	for i := 0; i < 10; i++ {
		ops = append(ops, crashOp{kind: "put", name: fmt.Sprintf("obj-%02d", i), run: run})
		if i == 4 {
			ops = append(ops, crashOp{kind: "del", name: "obj-01", run: run})
		}
	}
	return ops
}

// storeCrashChild is the re-exec entry point: arm the fault from the
// environment, open the store, run the workload, ack each acknowledged write
// durably. Exit 0 means the armed point never fired this run.
func storeCrashChild() int {
	fail := func(code int, err error) int {
		fmt.Fprintf(os.Stderr, "crash child: %v\n", err)
		return code
	}
	if _, err := fsx.ArmFSFromEnv(); err != nil {
		return fail(2, err)
	}
	run := os.Getenv(envCrashRun)
	ack, err := os.OpenFile(os.Getenv(envCrashAck), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fail(2, err)
	}
	s, err := Open(os.Getenv(envCrashDir), Options{CheckpointBytes: -1})
	if err != nil {
		return fail(3, err)
	}
	acked := func(op crashOp) error {
		if _, err := fmt.Fprintf(ack, "%s %s %s\n", op.kind, op.name, op.run); err != nil {
			return err
		}
		return ack.Sync()
	}
	i := 0
	for _, op := range crashSchedule(run) {
		switch op.kind {
		case "put":
			if _, err := s.Put(op.name, childData(op.name, run), PutOptions{Filter: "flate", ChunkRows: 7}); err != nil {
				return fail(4, err)
			}
		case "del":
			if err := s.Delete(op.name); err != nil {
				return fail(4, err)
			}
		}
		if err := acked(op); err != nil {
			return fail(2, err)
		}
		if op.kind == "put" {
			if i == 3 || i == 7 {
				if err := s.Checkpoint(); err != nil {
					return fail(4, err)
				}
			}
			i++
		}
	}
	if err := s.Close(); err != nil {
		return fail(4, err)
	}
	return 0
}

// runCrashChild re-execs the test binary as a crash child and returns its
// exit code (0 = workload completed, fsx.FSExitCode = armed point fired).
func runCrashChild(t *testing.T, dir, ackPath, run, point string, after int) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		envCrashDir+"="+dir,
		envCrashAck+"="+ackPath,
		envCrashRun+"="+run,
		fsx.EnvFSCrash+"="+fmt.Sprintf("%s:%s:%d", point, fsx.FSModeExit, after),
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("child failed to run: %v\n%s", err, out)
	}
	code := exitErr.ExitCode()
	if code != fsx.FSExitCode {
		t.Fatalf("child exited %d (want 0 or %d) at %s after=%d:\n%s", code, fsx.FSExitCode, point, after, out)
	}
	return code
}

// foldOps applies a sequence of operations to an object→run-version map.
func foldOps(ops []crashOp) map[string]string {
	m := map[string]string{}
	for _, op := range ops {
		if op.kind == "del" {
			delete(m, op.name)
		} else {
			m[op.name] = op.run
		}
	}
	return m
}

// crashCandidates enumerates every legal final state: the acknowledged
// history, with each crashed run's single possibly-in-flight operation
// either applied or not (applied-in-order — run 1's straggler lands before
// run 2's acknowledged writes replay over it).
func crashCandidates(acked []crashOp) []map[string]string {
	byRun := map[string][]crashOp{}
	for _, op := range acked {
		byRun[op.run] = append(byRun[op.run], op)
	}
	inflight := map[string]*crashOp{}
	for _, run := range []string{"1", "2"} {
		sched := crashSchedule(run)
		if n := len(byRun[run]); n < len(sched) {
			op := sched[n]
			inflight[run] = &op
		}
	}
	var out []map[string]string
	for b1 := 0; b1 < 2; b1++ {
		for b2 := 0; b2 < 2; b2++ {
			var seq []crashOp
			seq = append(seq, byRun["1"]...)
			if b1 == 1 && inflight["1"] != nil {
				seq = append(seq, *inflight["1"])
			}
			seq = append(seq, byRun["2"]...)
			if b2 == 1 && inflight["2"] != nil {
				seq = append(seq, *inflight["2"])
			}
			out = append(out, foldOps(seq))
		}
	}
	return out
}

func sameState(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestCrashMatrixHardStop is the multi-process proof. For every declared
// crash point and two After offsets (first hit, and mid-load on the third),
// a child is hard-stopped twice — the second crash lands during or after
// recovery of the first — and the surviving directory must contain exactly
// one of the legal states: no acknowledged write lost, no phantom objects,
// every payload byte-exact, fsck clean after checkpoint.
func TestCrashMatrixHardStop(t *testing.T) {
	points := fsx.FSPoints()
	if len(points) < 10 {
		t.Fatalf("expected at least 10 declared crash points, have %v", points)
	}
	for _, point := range points {
		// Mid-load offset: the put-path points hit once per put, so skipping
		// two hits crashes the third write; the checkpoint-path points hit
		// only twice per run, so skip one and crash the second checkpoint.
		afterMid := 2
		if point == PointManifest || point == PointJournalTrunc {
			afterMid = 1
		}
		for _, after := range []int{0, afterMid} {
			point, after := point, after
			t.Run(fmt.Sprintf("%s/after=%d", point, after), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				ackPath := filepath.Join(dir, "acked.log") // outside the store dir
				storeDir := filepath.Join(dir, "store")

				fired := 0
				for _, run := range []string{"1", "2"} {
					if runCrashChild(t, storeDir, ackPath, run, point, after) == fsx.FSExitCode {
						fired++
					}
				}
				if fired == 0 {
					t.Fatalf("point %s after=%d never fired: no crash coverage", point, after)
				}

				// Parse the durable ack history.
				var acked []crashOp
				if raw, err := os.ReadFile(ackPath); err == nil {
					for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
						if line == "" {
							continue
						}
						f := strings.Fields(line)
						if len(f) != 3 {
							t.Fatalf("malformed ack line %q", line)
						}
						acked = append(acked, crashOp{kind: f[0], name: f[1], run: f[2]})
					}
				}

				// Reopen: recovery must land on a legal state.
				s, err := Open(storeDir, Options{CheckpointBytes: -1})
				if err != nil {
					t.Fatalf("reopen after crashes: %v", err)
				}
				got := map[string]string{}
				for _, info := range s.List() {
					if !strings.HasPrefix(info.Name, "obj-") {
						t.Fatalf("phantom object %q", info.Name)
					}
					d, _, err := s.Get(info.Name)
					if err != nil {
						t.Fatalf("get %q after recovery: %v", info.Name, err)
					}
					version := ""
					for _, run := range []string{"1", "2"} {
						if d.Equal(childData(info.Name, run)) {
							version = run
						}
					}
					if version == "" {
						t.Fatalf("object %q has bytes matching no version ever written", info.Name)
					}
					got[info.Name] = version
				}
				legal := false
				for _, cand := range crashCandidates(acked) {
					if sameState(got, cand) {
						legal = true
						break
					}
				}
				if !legal {
					t.Fatalf("recovered state %v matches no legal candidate (acks: %v)", got, acked)
				}

				// Checkpoint collects crash debris (orphan segments); after
				// that, fsck must have nothing left to say.
				if err := s.Checkpoint(); err != nil {
					t.Fatalf("checkpoint after recovery: %v", err)
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				rep, err := Fsck(storeDir, FsckOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Clean() {
					t.Fatalf("fsck after recovery+checkpoint: %v", rep.Problems())
				}
			})
		}
	}
}

// TestCrashPointsFailMode drives every declared point in-process with
// FSModeFail: the mutation reports the injected crash, and after a reopen
// the per-point contract holds. The table must name every declared point —
// a new crash point fails this test until its expected outcome is written
// down here.
func TestCrashPointsFailMode(t *testing.T) {
	// What the unacknowledged write "w1" must look like after reopen:
	//   absent     — the crash preceded the commit fsync; the write never
	//                happened.
	//   present    — the crash followed the commit; recovery must finish the
	//                publish (rebuild the segment from the journal).
	//   either     — the crash hit the commit fsync itself; the record may or
	//                may not have reached the device, but never partially
	//                (torn tails are truncated).
	//   checkpoint — the point is on the checkpoint path, not the put path:
	//                the put is acknowledged, then Checkpoint reports the
	//                crash, and nothing may be lost.
	expect := map[string]string{
		PointJournalTorn:  "absent",
		PointJournalWrite: "absent",
		PointJournalFsync: "either",
		PointSegmentSave:  "present",
		fsx.PointWrite:    "present",
		fsx.PointFsync:    "present",
		fsx.PointRename:   "present",
		fsx.PointDirSync:  "present",
		PointManifest:     "checkpoint",
		PointJournalTrunc: "checkpoint",
	}
	points := fsx.FSPoints()
	for _, p := range points {
		if _, ok := expect[p]; !ok {
			t.Fatalf("declared crash point %q has no fail-mode matrix entry", p)
		}
	}

	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			defer fsx.DisarmFS()
			dir := t.TempDir()
			s, err := Open(dir, Options{CheckpointBytes: -1})
			if err != nil {
				t.Fatal(err)
			}
			keep := childData("keep", "0")
			mustPut(t, s, "keep", keep, PutOptions{Filter: "flate", ChunkRows: 7})

			if err := fsx.ArmFS(fsx.FSFault{Point: point, Mode: fsx.FSModeFail}); err != nil {
				t.Fatal(err)
			}
			w1 := childData("w1", "0")
			want := expect[point]
			if want == "checkpoint" {
				// Not on the put path: the put is acknowledged first.
				mustPut(t, s, "w1", w1, PutOptions{Filter: "flate", ChunkRows: 7})
				if err := s.Checkpoint(); !errors.Is(err, fsx.ErrFSCrash) {
					t.Fatalf("checkpoint with %s armed: %v", point, err)
				}
			} else {
				if _, err := s.Put("w1", w1, PutOptions{Filter: "flate", ChunkRows: 7}); !errors.Is(err, fsx.ErrFSCrash) {
					t.Fatalf("put with %s armed: %v", point, err)
				}
			}
			fsx.DisarmFS()
			_ = s.Close() // a broken journal may refuse a clean close; reopen decides

			r, err := Open(dir, Options{CheckpointBytes: -1})
			if err != nil {
				t.Fatalf("reopen after injected crash at %s: %v", point, err)
			}
			defer r.Close()
			if d, _, err := r.Get("keep"); err != nil || !d.Equal(keep) {
				t.Fatalf("acknowledged object lost after crash at %s: %v", point, err)
			}
			d, _, gerr := r.Get("w1")
			switch want {
			case "present", "checkpoint":
				if gerr != nil || !d.Equal(w1) {
					t.Fatalf("write must survive crash at %s: %v", point, gerr)
				}
			case "absent":
				if !errors.Is(gerr, ErrNotFound) {
					t.Fatalf("unacknowledged write visible after crash at %s: %v", point, gerr)
				}
			case "either":
				if gerr == nil {
					if !d.Equal(w1) {
						t.Fatalf("partially applied write after crash at %s", point)
					}
				} else if !errors.Is(gerr, ErrNotFound) {
					t.Fatalf("crash at %s left w1 in a third state: %v", point, gerr)
				}
			}
		})
	}
}
