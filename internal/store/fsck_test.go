package store

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFsckCleanStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "a", testData(40), PutOptions{Filter: "flate", ChunkRows: 8})
	mustPut(t, s, "b", testData(16), PutOptions{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(dir, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean store reported problems: %v", rep.Problems())
	}
	if rep.Objects != 2 || rep.JournalRecords != 2 || rep.ChunksChecked != 6 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestFsckDetectsAndRepairs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	hurt := mustPut(t, s, "hurt", testData(64), PutOptions{Filter: "flate", ChunkRows: 10})
	fine := testData(24)
	mustPut(t, s, "fine", fine, PutOptions{Filter: "flate", ChunkRows: 6})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint put: its journal record (with payloads) survives, so
	// deleting its segment is repairable by rebuild.
	rebuilt := mustPut(t, s, "rebuildme", testData(20), PutOptions{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Damage: bit-rot one checkpointed chunk, remove a rebuildable segment,
	// drop in a torn journal tail and a stray temp file.
	flipChunkByte(t, filepath.Join(dir, objectsDir, hurt.Segment), 3)
	if err := os.Remove(filepath.Join(dir, objectsDir, rebuilt.Segment)); err != nil {
		t.Fatal(err)
	}
	jf, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.Write([]byte("PJL1torntorntorn")); err != nil {
		t.Fatal(err)
	}
	jf.Close()
	if err := os.WriteFile(filepath.Join(dir, objectsDir, "x.h5l.tmp-123"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Check mode sees all four problems and fixes none of them.
	rep, err := Fsck(dir, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("damaged store reported clean")
	}
	if len(rep.CorruptChunks) != 1 || rep.CorruptChunks[0].Object != "hurt" || rep.CorruptChunks[0].Chunk != 3 {
		t.Fatalf("corrupt chunks: %+v", rep.CorruptChunks)
	}
	if len(rep.RebuildableSegments) != 1 || rep.RebuildableSegments[0] != "rebuildme" {
		t.Fatalf("rebuildable: %v", rep.RebuildableSegments)
	}
	if rep.TornTailBytes == 0 || len(rep.TempFiles) != 1 {
		t.Fatalf("torn=%d temps=%v", rep.TornTailBytes, rep.TempFiles)
	}

	// Repair fixes everything fixable; the bit-rotted chunk is quarantined
	// (consistent, but flagged in the repair summary).
	rep, err = Fsck(dir, FsckOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired == nil {
		t.Fatal("repair summary missing")
	}
	if rep.Repaired.Recovery.SegmentsRebuilt != 1 {
		t.Fatalf("rebuild not performed: %+v", rep.Repaired.Recovery)
	}
	if rep.Repaired.Recovery.ChunksQuarantined != 1 {
		t.Fatalf("recovery quarantined %d chunks, want 1: %+v", rep.Repaired.Recovery.ChunksQuarantined, rep.Repaired.Recovery)
	}
	if got := len(rep.Repaired.Scrub.Corrupt); got != 0 {
		t.Fatalf("scrub re-condemned %d chunks after recovery handled them", got)
	}
	if !rep.Clean() {
		t.Fatalf("store not clean after repair: %v", rep.Problems())
	}

	// The store opens and serves: intact object byte-exact, rebuilt object
	// byte-exact, hurt object quarantined only at chunk 3.
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if d, _, err := r.Get("fine"); err != nil || !d.Equal(fine) {
		t.Fatalf("intact object damaged by repair: %v", err)
	}
	if _, _, err := r.Get("rebuildme"); err != nil {
		t.Fatalf("rebuilt object unreadable: %v", err)
	}
	info, err := r.Stat("hurt")
	if err != nil || len(info.QuarantinedChunks) != 1 || info.QuarantinedChunks[0] != 3 {
		t.Fatalf("hurt object state: %+v %v", info, err)
	}

	// A second check is idempotent: still clean.
	rep, err = Fsck(dir, FsckOptions{})
	if err != nil || !rep.Clean() {
		t.Fatalf("post-repair check: %v %v", rep.Problems(), err)
	}
}
