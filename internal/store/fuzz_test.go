package store

import (
	"errors"
	"testing"

	"pressio/internal/core"
)

// FuzzDecodeRecord asserts the journal decoder's contract on arbitrary
// bytes: it never panics, never allocates unbounded (the caps in
// journal.go), every rejection wraps core.ErrCorrupt, and an accepted
// record re-encodes to the identical frame (so replay is deterministic).
// The committed seed corpus in testdata/fuzz/FuzzDecodeRecord covers each
// record type plus classic corruptions.
func FuzzDecodeRecord(f *testing.F) {
	put, err := encodeRecord(testPutRecord(3, "obj/a", []byte("chunk0"), []byte("chunk-1")))
	if err != nil {
		f.Fatal(err)
	}
	del, err := encodeRecord(record{op: opDelete, lsn: 9, meta: recordMeta{Name: "obj/a"}})
	if err != nil {
		f.Fatal(err)
	}
	quar, err := encodeRecord(record{op: opQuarantine, lsn: 10, meta: recordMeta{Name: "obj/a", Chunks: []int{1}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(put)
	f.Add(del)
	f.Add(quar)
	f.Add(put[:len(put)-2])
	f.Add([]byte(journalMagic))
	f.Add([]byte{})
	f.Add(append(append([]byte(nil), put...), del...))

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := decodeRecord(b)
		if err != nil {
			if !errors.Is(err, core.ErrCorrupt) {
				t.Fatalf("rejection %v does not wrap ErrCorrupt", err)
			}
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		re, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("accepted record failed to re-encode: %v", err)
		}
		// The JSON meta can serialize map keys differently, so compare the
		// decoded forms rather than raw bytes.
		again, m, err := decodeRecord(re)
		if err != nil {
			t.Fatalf("re-encoded record rejected: %v", err)
		}
		if m != len(re) || again.op != rec.op || again.lsn != rec.lsn || len(again.chunks) != len(rec.chunks) {
			t.Fatalf("record changed across round trip: %+v vs %+v", rec, again)
		}
	})
}
