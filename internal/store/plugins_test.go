package store

// Register the compressor plugins the tests exercise as chunk filters.
import (
	_ "pressio/internal/lossless"
)
