package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pressio/internal/core"
	"pressio/internal/fsx"
	"pressio/internal/h5lite"
	"pressio/internal/trace"
)

// On-disk layout of a store directory:
//
//	MANIFEST.json   checkpoint (atomic rewrite; see manifest.go)
//	JOURNAL.pjl     write-ahead log (see journal.go)
//	objects/        one h5lite container per object version, named by the
//	                LSN of the put that created it ("%016x.h5l")
//	quarantine/     evidence the store refuses to delete: torn journal
//	                tails, corrupt manifests, corrupt segment copies
//
// Mutations are journal-first: a put compresses, appends a record carrying
// the full chunk payloads, group-commit fsyncs it (the acknowledgement
// point), then publishes the segment container and applies to memory.
// Recovery replays the journal against the manifest, so a crash anywhere
// loses nothing acknowledged and invents nothing unacknowledged.

// Store directory entries.
const (
	manifestFile  = "MANIFEST.json"
	journalFile   = "JOURNAL.pjl"
	objectsDir    = "objects"
	quarantineDir = "quarantine"
	// datasetName is the fixed dataset name inside a segment container.
	datasetName = "data"
)

// defaultCheckpointBytes is the journal size that triggers an automatic
// manifest checkpoint when Options.CheckpointBytes is zero.
const defaultCheckpointBytes = 64 << 20

// PointSegmentSave fires after a put's journal commit, before any segment
// byte is written: the acknowledged record exists but its container does
// not, so recovery must rebuild the segment from the journaled payloads.
var PointSegmentSave = fsx.RegisterFSPoint("store.segment.save")

// Typed failures surfaced to callers (the daemon maps them onto HTTP).
var (
	// ErrNotFound reports a name with no live object.
	ErrNotFound = errors.New("store: object not found")
	// ErrQuarantined reports a read overlapping a chunk that failed its
	// checksum and was quarantined pending repair.
	ErrQuarantined = errors.New("store: data quarantined pending repair")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("store: closed")
)

// Options configures a store.
type Options struct {
	// CheckpointBytes is the journal size that triggers an automatic
	// manifest checkpoint after a mutation. Zero means the 64 MiB default;
	// negative disables automatic checkpoints (Checkpoint can still be
	// called explicitly).
	CheckpointBytes int64
}

// PutOptions configures how one object is compressed and chunked.
type PutOptions struct {
	// Filter names a registered compressor applied per chunk ("" = none).
	Filter string
	// FilterOptions are numeric options for the filter (error bounds etc.).
	FilterOptions map[string]float64
	// ChunkRows is the number of dim-0 rows per chunk (0 = single chunk).
	ChunkRows uint64
}

// ObjectInfo is the caller-facing description of a stored object.
type ObjectInfo struct {
	Name              string             `json:"name"`
	DType             string             `json:"dtype"`
	Dims              []uint64           `json:"dims"`
	Filter            string             `json:"filter,omitempty"`
	FilterOptions     map[string]float64 `json:"filter_options,omitempty"`
	Chunks            int                `json:"chunks"`
	QuarantinedChunks []int              `json:"quarantined_chunks,omitempty"`
	LSN               uint64             `json:"lsn"`
	Segment           string             `json:"segment"`
	StoredBytes       uint64             `json:"stored_bytes"`
	UncompressedBytes uint64             `json:"uncompressed_bytes"`
}

// RecoveryStats summarizes what Open had to do to reconcile the directory.
type RecoveryStats struct {
	// ManifestObjects is the object count seeded from the checkpoint.
	ManifestObjects int `json:"manifest_objects"`
	// ManifestQuarantined reports a checkpoint that failed validation and
	// was moved to quarantine/ (recovery then starts from an empty state
	// and replays the journal).
	ManifestQuarantined bool `json:"manifest_quarantined,omitempty"`
	// Replayed and Skipped count journal records re-applied vs already
	// covered by the checkpoint.
	Replayed int `json:"replayed"`
	Skipped  int `json:"skipped"`
	// TornTailBytes is the length of the torn journal tail quarantined and
	// truncated (0 = clean shutdown or clean tail).
	TornTailBytes int64 `json:"torn_tail_bytes"`
	// SegmentsRebuilt counts containers reconstructed from journaled chunk
	// payloads because the crash destroyed or never produced them.
	SegmentsRebuilt int `json:"segments_rebuilt"`
	// TempFilesRemoved counts *.tmp-* artifacts swept (by construction
	// unpublished, so removable).
	TempFilesRemoved int `json:"temp_files_removed"`
	// QuarantinedSegments lists segment files moved to quarantine/ because
	// they could not be reconciled with any journal record (external
	// corruption, not crashes, causes this).
	QuarantinedSegments []string `json:"quarantined_segments,omitempty"`
	// DroppedObjects lists objects removed from the live set because their
	// segment was unreconcilable.
	DroppedObjects []string `json:"dropped_objects,omitempty"`
	// ChunksQuarantined counts checkpointed chunks whose on-disk payload
	// failed its CRC during recovery; the object stays live, the damaged
	// chunks are quarantined (chunk-granular, journaled).
	ChunksQuarantined int `json:"chunks_quarantined,omitempty"`
	// OrphanSegments counts unreferenced segment files left for checkpoint
	// GC (unacknowledged writes that died before their journal record).
	OrphanSegments int `json:"orphan_segments"`
}

// object is one live object: immutable meta plus mutable quarantine state
// (both guarded by the store mutex) and a lazily opened container handle.
type object struct {
	meta        ObjectMeta
	quarantined map[int]bool

	fileMu sync.Mutex
	file   *h5lite.File
}

// Store is a crash-consistent compressed object store rooted at one
// directory. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu       sync.RWMutex
	cond     *sync.Cond // signaled when an in-flight mutation resolves
	objects  map[string]*object
	inflight map[uint64]struct{}
	closed   bool

	j         *journal
	recovered atomic.Bool
	stats     RecoveryStats
}

// Open opens (creating if needed) the store at dir, running crash recovery
// before returning: temp sweep, manifest load, journal replay with segment
// verification and rebuild, torn-tail quarantine and truncation. The
// returned store is fully consistent; Ready reports true from here on.
func Open(dir string, opts Options) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, objectsDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		objects:  map[string]*object{},
		inflight: map[uint64]struct{}{},
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.recovered.Store(true)
	return s, nil
}

// Ready reports whether recovery has completed — the daemon gates /readyz
// on it, so no traffic reaches a store still reconciling its directory.
func (s *Store) Ready() bool { return s.recovered.Load() }

// Recovery returns what Open had to do.
func (s *Store) Recovery() RecoveryStats { return s.stats }

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

func (s *Store) manifestPath() string { return filepath.Join(s.dir, manifestFile) }
func (s *Store) journalPath() string  { return filepath.Join(s.dir, journalFile) }
func (s *Store) segmentPath(name string) string {
	return filepath.Join(s.dir, objectsDir, name)
}

// recover reconciles the directory: see the package comment for the state
// machine (also documented step by step in docs/STORE.md).
func (s *Store) recover() error {
	// 1. Sweep atomic-write temp artifacts: unpublished by construction.
	for _, d := range []string{s.dir, filepath.Join(s.dir, objectsDir)} {
		entries, err := os.ReadDir(d)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && fsx.IsTempArtifact(e.Name()) {
				if err := os.Remove(filepath.Join(d, e.Name())); err != nil {
					return err
				}
				s.stats.TempFilesRemoved++
			}
		}
	}

	// 2. Load the checkpoint. A corrupt manifest is quarantined — never
	// deleted — and recovery continues from an empty state plus the journal.
	man, err := loadManifest(s.manifestPath())
	if err != nil {
		if qerr := s.quarantineFile(s.manifestPath(), "MANIFEST.corrupt"); qerr != nil {
			return fmt.Errorf("store: manifest unreadable (%v) and unquarantinable: %w", err, qerr)
		}
		s.stats.ManifestQuarantined = true
		man = manifest{Version: manifestVersion, Objects: map[string]manifestObject{}}
	}

	// 3. Seed state from the checkpoint, verifying each segment against its
	// durable chunk table. A checkpointed object's journal record is gone,
	// so damage here cannot be rebuilt: a structurally unreadable segment is
	// quarantined whole and the object dropped; individual chunks failing
	// their CRC get a chunk-granular quarantine (journaled once the journal
	// handle opens below) that keeps the intact chunks readable.
	type pendingCondemn struct {
		meta   ObjectMeta
		chunks []int
	}
	var pending []pendingCondemn
	for name, mo := range man.Objects {
		skip := map[int]bool{}
		for _, idx := range mo.Quarantined {
			skip[idx] = true
		}
		bad, verr := inspectSegment(s.segmentPath(mo.Meta.Segment), mo.Meta.Chunks, skip)
		if verr != nil {
			if qerr := s.quarantineFile(s.segmentPath(mo.Meta.Segment), mo.Meta.Segment+".corrupt"); qerr != nil && !os.IsNotExist(qerr) {
				return qerr
			}
			s.stats.QuarantinedSegments = append(s.stats.QuarantinedSegments, mo.Meta.Segment)
			s.stats.DroppedObjects = append(s.stats.DroppedObjects, name)
			continue
		}
		s.objects[name] = &object{meta: mo.Meta, quarantined: skip}
		s.stats.ManifestObjects++
		if len(bad) > 0 {
			pending = append(pending, pendingCondemn{meta: mo.Meta, chunks: bad})
		}
	}

	// 4. Replay the journal above the checkpoint's low-water mark. Put
	// records carry their chunk payloads, so a segment the crash destroyed
	// (or never produced) is rebuilt rather than lost.
	recs, validSize, total, err := scanJournal(s.journalPath())
	if err != nil {
		return err
	}
	maxLSN := man.LastLSN
	for _, rec := range recs {
		if rec.lsn > maxLSN {
			maxLSN = rec.lsn
		}
		if rec.lsn <= man.LastLSN {
			s.stats.Skipped++
			trace.CounterAdd(trace.CtrStoreReplaySkipped, 1)
			continue
		}
		switch rec.op {
		case opPut:
			om := *rec.meta.Object
			if err := s.replayPut(om, rec.chunks); err != nil {
				return err
			}
		case opDelete:
			if cur, ok := s.objects[rec.meta.Name]; ok && cur.meta.LSN < rec.lsn {
				delete(s.objects, rec.meta.Name)
			}
		case opQuarantine:
			if cur, ok := s.objects[rec.meta.Name]; ok {
				for _, idx := range rec.meta.Chunks {
					if idx >= 0 && idx < len(cur.meta.Chunks) {
						cur.quarantined[idx] = true
					}
				}
			}
		}
		s.stats.Replayed++
		trace.CounterAdd(trace.CtrStoreReplayed, 1)
	}

	// 5. Quarantine and truncate a torn tail. The tail bytes are preserved
	// as evidence before the truncate makes the journal clean.
	if validSize < total {
		tail, err := readTail(s.journalPath(), validSize, total)
		if err != nil {
			return err
		}
		tailName := fmt.Sprintf("journal-tail-lsn%016x-%d.bin", maxLSN, total-validSize)
		if err := fsx.AtomicWriteFile(filepath.Join(s.dir, quarantineDir, tailName), tail, 0o644); err != nil {
			return err
		}
		if err := fsx.FSCrash(PointJournalTrunc); err != nil {
			return err
		}
		if err := os.Truncate(s.journalPath(), validSize); err != nil {
			return err
		}
		if err := syncFile(s.journalPath()); err != nil {
			return err
		}
		s.stats.TornTailBytes = total - validSize
		trace.CounterAdd(trace.CtrStoreTornTails, 1)
		trace.CounterAdd(trace.CtrStoreTornBytes, total-validSize)
	}

	// 6. Count orphan segments (unacknowledged writes that died before
	// their journal record became durable); checkpoint GC removes them.
	referenced := map[string]bool{}
	for _, o := range s.objects {
		referenced[o.meta.Segment] = true
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, objectsDir))
	if err != nil {
		return err
	}
	for _, e := range entries {
		if isSegmentName(e.Name()) && !referenced[e.Name()] {
			s.stats.OrphanSegments++
		}
	}

	j, err := openJournal(s.journalPath(), validSize, maxLSN)
	if err != nil {
		return err
	}
	s.j = j

	// 7. Journal the chunk-granular quarantines collected in step 3, now
	// that the journal handle exists. The verdict must be durable: bit rot
	// found on this reopen stays quarantined on the next one.
	for _, pc := range pending {
		if err := s.condemnChunks(pc.meta, pc.chunks); err != nil {
			return err
		}
		s.stats.ChunksQuarantined += len(pc.chunks)
	}
	return nil
}

// replayPut applies one journaled put during recovery, verifying the
// published segment against the record and rebuilding it from the carried
// payloads when it is missing or disagrees.
func (s *Store) replayPut(om ObjectMeta, chunks [][]byte) error {
	path := s.segmentPath(om.Segment)
	bad, err := inspectSegment(path, om.Chunks, nil)
	if err != nil || len(bad) > 0 {
		if err == nil || !os.IsNotExist(errRoot(err)) {
			// A present-but-wrong segment is evidence: quarantine before
			// rebuilding over the name.
			if qerr := s.quarantineFile(path, om.Segment+".corrupt"); qerr != nil && !os.IsNotExist(qerr) {
				return qerr
			}
			s.stats.QuarantinedSegments = append(s.stats.QuarantinedSegments, om.Segment)
		}
		if err := writeSegment(path, om, chunks); err != nil {
			return fmt.Errorf("store: rebuilding segment %s: %w", om.Segment, err)
		}
		s.stats.SegmentsRebuilt++
		trace.CounterAdd(trace.CtrStoreSegmentsRebuilt, 1)
		trace.CounterAdd(trace.CtrStoreChunksRepaired, int64(len(chunks)))
	}
	if cur, ok := s.objects[om.Name]; !ok || cur.meta.LSN < om.LSN {
		s.objects[om.Name] = &object{meta: om, quarantined: map[int]bool{}}
	}
	return nil
}

// quarantineFile moves a file into quarantine/ under a free name derived
// from base ("base", "base.1", "base.2", ...). The original is renamed, not
// copied: nothing is deleted, nothing is left to be mistaken for live state.
func (s *Store) quarantineFile(path, base string) error {
	for i := 0; ; i++ {
		name := base
		if i > 0 {
			name = fmt.Sprintf("%s.%d", base, i)
		}
		dst := filepath.Join(s.dir, quarantineDir, name)
		if _, err := os.Lstat(dst); err == nil {
			continue
		} else if !os.IsNotExist(err) {
			return err
		}
		if err := os.Rename(path, dst); err != nil {
			return err
		}
		return fsx.SyncDir(filepath.Join(s.dir, quarantineDir))
	}
}

// inspectSegment opens a container and checks it against the expected chunk
// table. A structural problem — unreadable container, missing dataset,
// wrong chunk count — is the returned error; per-chunk damage (rows,
// length, or CRC32-C disagreeing with the durable table) comes back as the
// bad index list. Chunks in skip (already quarantined: the store knows they
// are damaged) are exempt so a quarantined object is not re-condemned on
// every reopen.
func inspectSegment(path string, want []ChunkMeta, skip map[int]bool) ([]int, error) {
	f, err := h5lite.Open(path)
	if err != nil {
		return nil, err
	}
	raw, err := f.RawChunks(datasetName)
	if err != nil {
		return nil, err
	}
	if len(raw) != len(want) {
		return nil, corrupt("segment %s has %d chunks, meta declares %d", filepath.Base(path), len(raw), len(want))
	}
	var bad []int
	for i, ch := range raw {
		if skip[i] {
			continue
		}
		if ch.Rows != want[i].Rows || uint64(len(ch.Payload)) != want[i].Length ||
			crc32.Checksum(ch.Payload, castagnoli) != want[i].CRC {
			bad = append(bad, i)
		}
	}
	return bad, nil
}

// writeSegment publishes a container for om from raw chunk payloads.
func writeSegment(path string, om ObjectMeta, chunks [][]byte) error {
	raw := make([]h5lite.RawChunk, len(chunks))
	for i, ch := range chunks {
		raw[i] = h5lite.RawChunk{Rows: om.Chunks[i].Rows, Payload: ch}
	}
	g := h5lite.Create(path)
	if err := g.WriteRawDataset(datasetName, om.DType, om.Dims, om.Filter, om.FilterOptions, raw); err != nil {
		return err
	}
	return g.Save()
}

// readTail reads bytes [from, to) of a file.
func readTail(path string, from, to int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, to-from)
	if _, err := f.ReadAt(buf, from); err != nil {
		return nil, err
	}
	return buf, nil
}

// syncFile fsyncs a file by path.
func syncFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// errRoot unwraps to the deepest cause, so os.IsNotExist sees through the
// wrapping inspectSegment applies.
func errRoot(err error) error {
	for {
		next := errors.Unwrap(err)
		if next == nil {
			return err
		}
		err = next
	}
}

// Put stores d under name, replacing any existing object. The data is
// chunked and filtered through the named compressor, journaled with a
// group-commit fsync (the acknowledgement point: when Put returns nil the
// write survives any crash), then published as a segment container.
func (s *Store) Put(name string, d *core.Data, po PutOptions) (ObjectInfo, error) {
	start := time.Now()
	if err := validateName(name); err != nil {
		return ObjectInfo{}, err
	}
	if d == nil || !d.HasData() || d.NumDims() == 0 {
		return ObjectInfo{}, fmt.Errorf("store: %w", core.ErrNilData)
	}

	// Compress into an unsaved container to reuse h5lite's chunked filter
	// pipeline, then lift out the post-filter payloads.
	tmp := h5lite.Create("")
	if err := tmp.WriteDataset(datasetName, d, h5lite.DatasetOptions{
		ChunkRows: po.ChunkRows, Filter: po.Filter, FilterOptions: po.FilterOptions,
	}); err != nil {
		return ObjectInfo{}, err
	}
	raw, err := tmp.RawChunks(datasetName)
	if err != nil {
		return ObjectInfo{}, err
	}
	meta, err := tmp.Meta(datasetName)
	if err != nil {
		return ObjectInfo{}, err
	}
	om := ObjectMeta{
		Name:          name,
		DType:         meta.DType,
		Dims:          meta.Dims,
		Filter:        meta.Filter,
		FilterOptions: meta.Options,
		Chunks:        make([]ChunkMeta, len(raw)),
	}
	chunks := make([][]byte, len(raw))
	for i, ch := range raw {
		chunks[i] = ch.Payload
		om.Chunks[i] = ChunkMeta{
			Rows:   ch.Rows,
			Length: uint64(len(ch.Payload)),
			CRC:    crc32.Checksum(ch.Payload, castagnoli),
		}
	}

	lsn, end, err := s.beginMutation(opPut, recordMeta{Object: &om}, chunks)
	if err != nil {
		return ObjectInfo{}, err
	}
	applied := false
	defer func() {
		if !applied {
			s.resolveMutation(lsn, nil)
		}
	}()

	// Group-commit fsync: the acknowledgement point.
	if err := s.j.commit(end); err != nil {
		return ObjectInfo{}, err
	}

	// Publish the segment. A failure here (or a crash) is recoverable: the
	// journaled payloads rebuild it on the next Open, but THIS call must not
	// claim success for state it did not publish.
	if err := fsx.FSCrash(PointSegmentSave); err != nil {
		return ObjectInfo{}, err
	}
	if err := writeSegment(s.segmentPath(om.Segment), om, chunks); err != nil {
		return ObjectInfo{}, err
	}

	applied = true
	jsize := s.resolveMutation(lsn, &om)
	trace.CounterAdd(trace.CtrStorePuts, 1)
	trace.CounterAdd(trace.CtrStorePutBytes, int64(d.ByteLen()))
	trace.ObserveDuration(trace.HistStorePut, time.Since(start))
	s.maybeCheckpoint(jsize)
	return infoOf(om, nil), nil
}

// beginMutation appends a record and registers its LSN as in-flight, all
// under the store lock so a concurrent checkpoint's low-water mark can never
// skip past an unapplied record.
func (s *Store) beginMutation(op byte, meta recordMeta, chunks [][]byte) (lsn uint64, end int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0, ErrClosed
	}
	if op == opDelete {
		if _, ok := s.objects[meta.Name]; !ok {
			return 0, 0, fmt.Errorf("%w: %q", ErrNotFound, meta.Name)
		}
	}
	//lint:ignore blockinglock LSN assignment and in-flight registration must be one atomic step under the store lock, and the append assigns the LSN
	lsn, end, err = s.j.append(op, meta, chunks)
	if err != nil {
		return 0, 0, err
	}
	s.inflight[lsn] = struct{}{}
	return lsn, end, nil
}

// resolveMutation finishes an in-flight mutation. A successful put passes
// its meta to install the new object version (guarded by LSN so a racing
// newer put is never overwritten by an older one); aborts and failures pass
// nil and only drop the in-flight mark. Returns the journal size for
// checkpoint triggering.
func (s *Store) resolveMutation(lsn uint64, install *ObjectMeta) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if install != nil {
		if cur, ok := s.objects[install.Name]; !ok || cur.meta.LSN < install.LSN {
			s.objects[install.Name] = &object{meta: *install, quarantined: map[int]bool{}}
		}
	}
	delete(s.inflight, lsn)
	s.cond.Broadcast()
	return s.j.size
}

// maybeCheckpoint runs an automatic checkpoint when the journal has grown
// past the configured threshold. Failures are not surfaced to the mutation
// that tripped it — the mutation itself is durable — but the checkpoint
// counter not advancing makes the condition observable.
func (s *Store) maybeCheckpoint(journalSize int64) {
	threshold := s.opts.CheckpointBytes
	if threshold < 0 {
		return
	}
	if threshold == 0 {
		threshold = defaultCheckpointBytes
	}
	if journalSize >= threshold {
		_ = s.Checkpoint()
	}
}

// Checkpoint publishes the manifest snapshot and truncates the journal. It
// waits for in-flight mutations to resolve (new ones queue behind the store
// lock), so the low-water mark covers only fully published state.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for len(s.inflight) > 0 {
		s.cond.Wait() //lint:ignore blockinglock sync.Cond.Wait releases the lock while blocked; this is the canonical condvar drain
	}
	lwm := s.j.lastAssigned()
	man := manifest{Version: manifestVersion, LastLSN: lwm, Objects: map[string]manifestObject{}}
	for name, o := range s.objects {
		man.Objects[name] = manifestObject{Meta: o.meta, Quarantined: sortedIndices(o.quarantined)}
	}
	//lint:ignore blockinglock crash-point probe; blocks only when a crash test armed it
	if err := fsx.FSCrash(PointManifest); err != nil {
		return err
	}
	//lint:ignore blockinglock the checkpoint must exclude every mutation end to end; holding the store lock across the manifest write is its correctness condition
	if err := saveManifest(s.manifestPath(), man); err != nil {
		return err
	}
	//lint:ignore blockinglock crash-point probe; blocks only when a crash test armed it
	if err := fsx.FSCrash(PointJournalTrunc); err != nil {
		return err
	}
	//lint:ignore blockinglock journal truncation belongs to the same exclusive checkpoint transaction as the manifest write above
	if err := s.j.reset(); err != nil {
		return err
	}
	//lint:ignore blockinglock segment GC must not race a new put re-referencing an LSN; it runs inside the checkpoint's critical section
	s.gcSegmentsLocked(lwm)
	trace.CounterAdd(trace.CtrStoreCheckpoints, 1)
	return nil
}

// gcSegmentsLocked removes segment files that no live object references and
// whose LSN is at or below the checkpoint low-water mark (anything above it
// may belong to a mutation the next replay will re-apply). Quarantined
// evidence is untouched — it lives in quarantine/, not objects/.
func (s *Store) gcSegmentsLocked(lwm uint64) {
	referenced := map[string]bool{}
	for _, o := range s.objects {
		referenced[o.meta.Segment] = true
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, objectsDir))
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !isSegmentName(name) || referenced[name] {
			continue
		}
		var lsn uint64
		if _, err := fmt.Sscanf(name, "%016x.h5l", &lsn); err != nil || lsn > lwm {
			continue
		}
		if os.Remove(filepath.Join(s.dir, objectsDir, name)) == nil {
			trace.CounterAdd(trace.CtrStoreGCSegments, 1)
		}
	}
}

// Get reads a whole object back, decompressing every chunk.
func (s *Store) Get(name string) (*core.Data, ObjectInfo, error) {
	start := time.Now()
	o, info, err := s.lookup(name)
	if err != nil {
		return nil, ObjectInfo{}, err
	}
	if len(info.QuarantinedChunks) > 0 {
		return nil, info, fmt.Errorf("%w: object %q chunks %v", ErrQuarantined, name, info.QuarantinedChunks)
	}
	f, err := s.container(o)
	if err != nil {
		return nil, info, err
	}
	d, err := f.ReadDataset(datasetName)
	if err != nil {
		return nil, info, err
	}
	trace.CounterAdd(trace.CtrStoreGets, 1)
	trace.CounterAdd(trace.CtrStoreGetBytes, int64(d.ByteLen()))
	trace.ObserveDuration(trace.HistStoreGet, time.Since(start))
	return d, info, nil
}

// GetRows reads the hyperslab rows [start, start+count) along dimension 0,
// decompressing only the chunks it touches. Quarantined chunks outside the
// slab do not block the read.
func (s *Store) GetRows(name string, startRow, count uint64) (*core.Data, ObjectInfo, error) {
	start := time.Now()
	o, info, err := s.lookup(name)
	if err != nil {
		return nil, ObjectInfo{}, err
	}
	if bad := overlapQuarantine(o.meta.Chunks, info.QuarantinedChunks, startRow, count); len(bad) > 0 {
		return nil, info, fmt.Errorf("%w: object %q chunks %v overlap rows [%d, %d)",
			ErrQuarantined, name, bad, startRow, startRow+count)
	}
	f, err := s.container(o)
	if err != nil {
		return nil, info, err
	}
	d, err := f.ReadRows(datasetName, startRow, count)
	if err != nil {
		return nil, info, err
	}
	trace.CounterAdd(trace.CtrStoreGets, 1)
	trace.CounterAdd(trace.CtrStoreGetBytes, int64(d.ByteLen()))
	trace.ObserveDuration(trace.HistStoreGet, time.Since(start))
	return d, info, nil
}

// GetRange reads the uncompressed byte range [off, off+length), touching
// only the chunks whose rows overlap it — the HTTP Range handler sits on
// this.
func (s *Store) GetRange(name string, off, length int64) ([]byte, ObjectInfo, error) {
	_, info, err := s.lookup(name)
	if err != nil {
		return nil, ObjectInfo{}, err
	}
	rowBytes := int64(rowBytesOf(info))
	total := int64(info.UncompressedBytes)
	if off < 0 || length <= 0 || off+length > total {
		return nil, info, fmt.Errorf("store: byte range [%d, %d) outside object of %d bytes", off, off+length, total)
	}
	startRow := off / rowBytes
	endRow := (off + length + rowBytes - 1) / rowBytes
	d, info, err := s.GetRows(name, uint64(startRow), uint64(endRow-startRow))
	if err != nil {
		return nil, info, err
	}
	lo := off - startRow*rowBytes
	return d.Bytes()[lo : lo+length], info, nil
}

// Delete removes an object. Like Put, the delete is journal-first: it is
// acknowledged only after the tombstone record is fsynced.
func (s *Store) Delete(name string) error {
	if err := validateName(name); err != nil {
		return err
	}
	lsn, end, err := s.beginMutation(opDelete, recordMeta{Name: name}, nil)
	if err != nil {
		return err
	}
	applied := false
	defer func() {
		if !applied {
			s.resolveMutation(lsn, nil)
		}
	}()
	if err := s.j.commit(end); err != nil {
		return err
	}
	applied = true
	s.mu.Lock()
	if cur, ok := s.objects[name]; ok && cur.meta.LSN < lsn {
		delete(s.objects, name)
	}
	delete(s.inflight, lsn)
	s.cond.Broadcast()
	jsize := s.j.size
	s.mu.Unlock()
	trace.CounterAdd(trace.CtrStoreDeletes, 1)
	s.maybeCheckpoint(jsize)
	return nil
}

// List returns every live object, sorted by name.
func (s *Store) List() []ObjectInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ObjectInfo, 0, len(s.objects))
	for _, o := range s.objects {
		out = append(out, infoOf(o.meta, sortedIndices(o.quarantined)))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}

// Stat returns one object's info.
func (s *Store) Stat(name string) (ObjectInfo, error) {
	_, info, err := s.lookup(name)
	return info, err
}

// quarantineChunks journals and applies a chunk quarantine for an object
// (scrub and fsck call this when checksums fail). The segment file itself
// is additionally copied into quarantine/ by the caller when appropriate.
func (s *Store) quarantineChunks(name string, chunks []int) error {
	if len(chunks) == 0 {
		return nil
	}
	sort.Ints(chunks)
	lsn, end, err := s.beginMutation(opQuarantine, recordMeta{Name: name, Chunks: chunks}, nil)
	if err != nil {
		return err
	}
	applied := false
	defer func() {
		if !applied {
			s.resolveMutation(lsn, nil)
		}
	}()
	if err := s.j.commit(end); err != nil {
		return err
	}
	applied = true
	s.mu.Lock()
	if cur, ok := s.objects[name]; ok {
		for _, idx := range chunks {
			if idx >= 0 && idx < len(cur.meta.Chunks) {
				cur.quarantined[idx] = true
			}
		}
	}
	delete(s.inflight, lsn)
	s.cond.Broadcast()
	s.mu.Unlock()
	trace.CounterAdd(trace.CtrStoreChunksQuarantined, int64(len(chunks)))
	return nil
}

// lookup snapshots an object under the read lock.
func (s *Store) lookup(name string) (*object, ObjectInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ObjectInfo{}, ErrClosed
	}
	o, ok := s.objects[name]
	if !ok {
		return nil, ObjectInfo{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return o, infoOf(o.meta, sortedIndices(o.quarantined)), nil
}

// container opens (and caches) an object's segment file.
func (s *Store) container(o *object) (*h5lite.File, error) {
	o.fileMu.Lock()
	defer o.fileMu.Unlock()
	if o.file != nil {
		return o.file, nil
	}
	//lint:ignore blockinglock single-flight lazy open: the per-object lock exists to serialize exactly this Open against concurrent readers
	f, err := h5lite.Open(s.segmentPath(o.meta.Segment))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %q (segment vanished)", ErrNotFound, o.meta.Name)
		}
		return nil, err
	}
	o.file = f
	return f, nil
}

// Close drains in-flight mutations and closes the journal. It does NOT
// checkpoint — the next Open replays the journal — so callers wanting a
// fast restart call Checkpoint first (the daemon's lifecycle Stop does).
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	for len(s.inflight) > 0 {
		s.cond.Wait() //lint:ignore blockinglock sync.Cond.Wait releases the lock while blocked; this is the canonical condvar drain
	}
	s.closed = true
	s.mu.Unlock()
	return s.j.close()
}

// infoOf builds the caller-facing info from durable meta.
func infoOf(om ObjectMeta, quarantined []int) ObjectInfo {
	info := ObjectInfo{
		Name:              om.Name,
		DType:             om.DType,
		Dims:              append([]uint64(nil), om.Dims...),
		Filter:            om.Filter,
		FilterOptions:     om.FilterOptions,
		Chunks:            len(om.Chunks),
		QuarantinedChunks: quarantined,
		LSN:               om.LSN,
		Segment:           om.Segment,
	}
	for _, ch := range om.Chunks {
		info.StoredBytes += ch.Length
	}
	if dt, err := core.ParseDType(om.DType); err == nil {
		n := uint64(dt.Size())
		for _, d := range om.Dims {
			n *= d
		}
		info.UncompressedBytes = n
	}
	return info
}

// rowBytesOf computes the byte width of one dim-0 row.
func rowBytesOf(info ObjectInfo) uint64 {
	dt, err := core.ParseDType(info.DType)
	if err != nil {
		return 1
	}
	n := uint64(dt.Size())
	for _, d := range info.Dims[1:] {
		n *= d
	}
	if n == 0 {
		n = 1
	}
	return n
}

// overlapQuarantine returns the quarantined chunk indices whose row spans
// intersect [startRow, startRow+count).
func overlapQuarantine(chunks []ChunkMeta, quarantined []int, startRow, count uint64) []int {
	if len(quarantined) == 0 {
		return nil
	}
	spans := make([][2]uint64, len(chunks))
	row := uint64(0)
	for i, ch := range chunks {
		spans[i] = [2]uint64{row, row + ch.Rows}
		row += ch.Rows
	}
	var bad []int
	lo, hi := startRow, startRow+count
	for _, idx := range quarantined {
		if idx < 0 || idx >= len(spans) {
			continue
		}
		if spans[idx][0] < hi && spans[idx][1] > lo {
			bad = append(bad, idx)
		}
	}
	return bad
}

// sortedIndices flattens a quarantine set.
func sortedIndices(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for idx := range m {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}
