package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pressio/internal/core"
)

func testData(n int) *core.Data {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%97) * 0.5
	}
	return core.FromFloat64s(vals, uint64(n))
}

func mustPut(t *testing.T, s *Store, name string, d *core.Data, po PutOptions) ObjectInfo {
	t.Helper()
	info, err := s.Put(name, d, po)
	if err != nil {
		t.Fatalf("put %q: %v", name, err)
	}
	return info
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	d := testData(100)
	info := mustPut(t, s, "sim/run1", d, PutOptions{Filter: "flate", ChunkRows: 16})
	if info.Chunks != 7 {
		t.Fatalf("expected 7 chunks, got %d", info.Chunks)
	}
	got, gotInfo, err := s.Get("sim/run1")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Fatal("round trip mismatch")
	}
	if gotInfo.LSN != info.LSN || gotInfo.Segment != info.Segment {
		t.Fatalf("info mismatch: %+v vs %+v", gotInfo, info)
	}

	// Overwrite wins; the old version stays on disk until checkpoint GC.
	d2 := testData(50)
	mustPut(t, s, "sim/run1", d2, PutOptions{})
	got, _, err = s.Get("sim/run1")
	if err != nil || !got.Equal(d2) {
		t.Fatalf("overwrite lost: %v", err)
	}

	if _, _, err := s.Get("no/such"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing object: %v", err)
	}
}

func TestGetRowsAndRangeTouchOnlyOverlappingChunks(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d := testData(64)
	mustPut(t, s, "x", d, PutOptions{Filter: "flate", ChunkRows: 10})

	rows, _, err := s.GetRows("x", 25, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := d.Float64s()[25:35]
	got := rows.Float64s()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row slab mismatch at %d", i)
		}
	}

	// Byte range: rows are 8 bytes wide, ask for an unaligned span.
	raw, _, err := s.GetRange("x", 13, 40)
	if err != nil {
		t.Fatal(err)
	}
	full := d.Bytes()
	if string(raw) != string(full[13:53]) {
		t.Fatal("byte range mismatch")
	}
	if _, _, err := s.GetRange("x", 500, 40); err == nil {
		t.Fatal("out-of-bounds range accepted")
	}
}

func TestDeleteAndList(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustPut(t, s, "b", testData(8), PutOptions{})
	mustPut(t, s, "a", testData(8), PutOptions{})

	names := []string{}
	for _, info := range s.List() {
		names = append(names, info.Name)
	}
	if fmt.Sprint(names) != "[a b]" {
		t.Fatalf("list order: %v", names)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if got := len(s.List()); got != 1 {
		t.Fatalf("after delete, %d objects", got)
	}
}

func TestReopenReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	d := testData(40)
	mustPut(t, s, "kept", d, PutOptions{Filter: "flate", ChunkRows: 8})
	mustPut(t, s, "gone", testData(10), PutOptions{})
	if err := s.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Ready() {
		t.Fatal("recovered store not ready")
	}
	st := r.Recovery()
	if st.Replayed != 3 || st.Skipped != 0 {
		t.Fatalf("replay stats: %+v", st)
	}
	got, _, err := r.Get("kept")
	if err != nil || !got.Equal(d) {
		t.Fatalf("replayed object lost: %v", err)
	}
	if _, _, err := r.Get("gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstone not replayed: %v", err)
	}
}

func TestCheckpointTruncatesJournalAndCollectsGarbage(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	d := testData(32)
	mustPut(t, s, "x", d, PutOptions{})
	old := mustPut(t, s, "x", d, PutOptions{}) // replaced version becomes garbage
	neu := mustPut(t, s, "x", d, PutOptions{})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, journalFile)); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not truncated: %v size=%d", err, fi.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, objectsDir, old.Segment)); !os.IsNotExist(err) {
		t.Fatalf("replaced segment not collected: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, objectsDir, neu.Segment)); err != nil {
		t.Fatalf("live segment collected: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: state comes entirely from the manifest, nothing to replay.
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Recovery(); st.Replayed != 0 || st.ManifestObjects != 1 {
		t.Fatalf("post-checkpoint recovery stats: %+v", st)
	}
	got, info, err := r.Get("x")
	if err != nil || !got.Equal(d) {
		t.Fatalf("checkpointed object lost: %v", err)
	}
	if info.LSN != neu.LSN {
		t.Fatalf("wrong version after checkpoint: lsn %d vs %d", info.LSN, neu.LSN)
	}

	// LSNs keep increasing across checkpoints: a new put must outrank the
	// checkpointed version.
	later := mustPut(t, r, "x", d, PutOptions{})
	if later.LSN <= neu.LSN {
		t.Fatalf("LSN regressed across checkpoint: %d then %d", neu.LSN, later.LSN)
	}
}

func TestAutoCheckpointTriggers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CheckpointBytes: 1}) // every mutation trips it
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustPut(t, s, "x", testData(16), PutOptions{})
	if fi, err := os.Stat(filepath.Join(dir, journalFile)); err != nil || fi.Size() != 0 {
		t.Fatalf("auto checkpoint did not run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestFile)); err != nil {
		t.Fatal("manifest missing after auto checkpoint")
	}
}

func TestConcurrentPutsAndReads(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CheckpointBytes: 4 << 10}) // checkpoints mid-storm
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("obj-%d", w)
			d := testData(64 + w)
			for i := 0; i < 10; i++ {
				if _, err := s.Put(name, d, PutOptions{Filter: "flate", ChunkRows: 16}); err != nil {
					t.Errorf("worker %d put: %v", w, err)
					return
				}
				if got, _, err := s.Get(name); err != nil || !got.Equal(d) {
					t.Errorf("worker %d get: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := len(r.List()); got != workers {
		t.Fatalf("after storm, %d objects want %d", got, workers)
	}
	for w := 0; w < workers; w++ {
		d := testData(64 + w)
		got, _, err := r.Get(fmt.Sprintf("obj-%d", w))
		if err != nil || !got.Equal(d) {
			t.Fatalf("object obj-%d lost after reopen: %v", w, err)
		}
	}
}

func TestValidateNameRejectsGarbage(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, bad := range []string{"", ".", "..", "a\x00b", "ctl\x1fchar", string(make([]byte, maxNameLen+1))} {
		if _, err := s.Put(bad, testData(4), PutOptions{}); err == nil {
			t.Fatalf("name %q accepted", bad)
		}
	}
	if _, err := s.Put("ok/nested.name-v2", testData(4), PutOptions{}); err != nil {
		t.Fatalf("reasonable name rejected: %v", err)
	}
}

func TestCloseRejectsFurtherUse(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "x", testData(4), PutOptions{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("y", testData(4), PutOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if _, _, err := s.Get("x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("get after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close not idempotent")
	}
}
