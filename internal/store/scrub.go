package store

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"pressio/internal/fsx"
	"pressio/internal/h5lite"
	"pressio/internal/trace"
)

// The scrubber is the store's defense against bit rot: corruption that
// arrives without a crash, after the data was durably written. It re-reads
// every segment from disk (never from the read cache), recomputes each
// chunk's CRC32-C against the durable chunk table, and quarantines exactly
// the chunks that disagree — the object's intact chunks stay readable
// through range reads, and the corrupt segment file is copied (not moved:
// intact chunks are still being served from it) into quarantine/ as
// evidence.

// ChunkRef names one chunk of one object.
type ChunkRef struct {
	Object  string `json:"object"`
	Segment string `json:"segment"`
	Chunk   int    `json:"chunk"`
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	// Objects and ChunksChecked count what the pass covered (chunks already
	// quarantined are skipped, not re-counted).
	Objects       int `json:"objects"`
	ChunksChecked int `json:"chunks_checked"`
	// Corrupt lists the chunks whose on-disk payloads failed their CRC.
	Corrupt []ChunkRef `json:"corrupt,omitempty"`
	// Quarantined counts chunks newly quarantined by this pass.
	Quarantined int `json:"quarantined"`
	// Unreadable lists objects whose segment could not be opened at all
	// (every chunk is quarantined in that case).
	Unreadable []string `json:"unreadable,omitempty"`
}

// ScrubOnce runs one full-store scrub pass synchronously. Corrupt chunks
// are quarantined through the journal (so the verdict survives a crash) and
// the affected segment is copied into quarantine/ before the pass moves on.
func (s *Store) ScrubOnce() (ScrubReport, error) {
	var rep ScrubReport

	// Snapshot the live set; the pass then works lock-free against
	// immutable metas, tolerating objects that vanish mid-pass.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return rep, ErrClosed
	}
	type target struct {
		meta        ObjectMeta
		quarantined []int
	}
	targets := make([]target, 0, len(s.objects))
	for _, o := range s.objects {
		targets = append(targets, target{meta: o.meta, quarantined: sortedIndices(o.quarantined)})
	}
	s.mu.RUnlock()
	sort.Slice(targets, func(i, k int) bool { return targets[i].meta.Name < targets[k].meta.Name })

	for _, tg := range targets {
		skip := map[int]bool{}
		for _, idx := range tg.quarantined {
			skip[idx] = true
		}
		path := s.segmentPath(tg.meta.Segment)
		f, err := h5lite.Open(path)
		var raw []h5lite.RawChunk
		if err == nil {
			raw, err = f.RawChunks(datasetName)
		}
		if err != nil || len(raw) != len(tg.meta.Chunks) {
			// The container itself is unreadable (or structurally wrong):
			// every not-yet-quarantined chunk is suspect.
			rep.Unreadable = append(rep.Unreadable, tg.meta.Name)
			var all []int
			for i := range tg.meta.Chunks {
				if !skip[i] {
					all = append(all, i)
					rep.Corrupt = append(rep.Corrupt, ChunkRef{Object: tg.meta.Name, Segment: tg.meta.Segment, Chunk: i})
				}
			}
			if err := s.condemnChunks(tg.meta, all); err != nil {
				return rep, err
			}
			rep.Objects++
			continue
		}
		var bad []int
		for i, ch := range raw {
			if skip[i] {
				continue
			}
			rep.ChunksChecked++
			trace.CounterAdd(trace.CtrStoreScrubChunks, 1)
			if ch.Rows != tg.meta.Chunks[i].Rows ||
				uint64(len(ch.Payload)) != tg.meta.Chunks[i].Length ||
				crc32.Checksum(ch.Payload, castagnoli) != tg.meta.Chunks[i].CRC {
				bad = append(bad, i)
				rep.Corrupt = append(rep.Corrupt, ChunkRef{Object: tg.meta.Name, Segment: tg.meta.Segment, Chunk: i})
			}
		}
		if err := s.condemnChunks(tg.meta, bad); err != nil {
			return rep, err
		}
		rep.Objects++
	}
	trace.CounterAdd(trace.CtrStoreScrubPasses, 1)
	rep.Quarantined = len(rep.Corrupt)
	return rep, nil
}

// condemnChunks quarantines the listed chunks of one object and preserves a
// copy of the segment as evidence. The copy is best-effort second to the
// journaled quarantine record: losing the evidence is acceptable, serving
// corrupt bytes as intact is not.
func (s *Store) condemnChunks(meta ObjectMeta, chunks []int) error {
	if len(chunks) == 0 {
		return nil
	}
	if err := s.quarantineChunks(meta.Name, chunks); err != nil {
		return fmt.Errorf("store: quarantining chunks %v of %q: %w", chunks, meta.Name, err)
	}
	if raw, err := os.ReadFile(s.segmentPath(meta.Segment)); err == nil {
		_ = fsx.AtomicWriteFile(evidencePath(s.dir, meta.Segment), raw, 0o644)
	}
	return nil
}

// evidencePath picks a free quarantine name for a corrupt segment copy.
func evidencePath(dir, segment string) string {
	for i := 0; ; i++ {
		name := segment + ".corrupt"
		if i > 0 {
			name = fmt.Sprintf("%s.corrupt.%d", segment, i)
		}
		p := filepath.Join(dir, quarantineDir, name)
		if _, err := os.Lstat(p); os.IsNotExist(err) {
			return p
		}
	}
}

// Scrubber runs ScrubOnce on a jittered schedule until stopped. The jitter
// (a deterministic ±25% from a splitmix64 stream) keeps a fleet of stores
// from scrubbing — and hammering their disks — in phase.
type Scrubber struct {
	s        *Store
	interval time.Duration
	seed     uint64

	mu     sync.Mutex
	stop   chan struct{}
	done   chan struct{}
	last   ScrubReport
	lastOK bool
}

// NewScrubber builds a scrubber; interval <= 0 disables it (Start becomes a
// no-op), which is how the daemon expresses "no background scrub".
func NewScrubber(s *Store, interval time.Duration, seed uint64) *Scrubber {
	return &Scrubber{s: s, interval: interval, seed: seed}
}

// Start launches the background loop.
func (sc *Scrubber) Start() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.interval <= 0 || sc.stop != nil {
		return
	}
	sc.stop = make(chan struct{})
	sc.done = make(chan struct{})
	//lint:ignore blockinglock goroutine launch, not a call: loop runs without the lock
	go sc.loop(sc.stop, sc.done)
}

// Stop halts the loop and waits for an in-progress pass to finish.
func (sc *Scrubber) Stop() {
	sc.mu.Lock()
	stop, done := sc.stop, sc.done
	sc.stop, sc.done = nil, nil
	sc.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// LastReport returns the most recent completed pass (ok=false before the
// first one).
func (sc *Scrubber) LastReport() (ScrubReport, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.last, sc.lastOK
}

func (sc *Scrubber) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	rng := sc.seed
	for pass := 0; ; pass++ {
		d := jitter(sc.interval, &rng)
		timer := time.NewTimer(d)
		select {
		case <-stop:
			timer.Stop()
			return
		case <-timer.C:
		}
		rep, err := sc.s.ScrubOnce()
		if err != nil {
			// ErrClosed means the store shut down under us; anything else is
			// retried next tick.
			continue
		}
		sc.mu.Lock()
		sc.last, sc.lastOK = rep, true
		sc.mu.Unlock()
	}
}

// jitter spreads interval to interval*[0.75, 1.25) using a splitmix64 step.
func jitter(interval time.Duration, state *uint64) time.Duration {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	frac := float64(z>>11) / float64(1<<53) // [0, 1)
	return time.Duration(float64(interval) * (0.75 + frac/2))
}
