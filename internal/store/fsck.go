package store

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"pressio/internal/fsx"
	"pressio/internal/h5lite"
)

// Fsck is the offline integrity verb behind cmd/pressio-fsck. Check mode is
// strictly read-only: it computes the state recovery *would* reach —
// manifest plus journal replay — and verifies every reachable chunk against
// its durable checksum, reporting anything a repair would change. Repair
// mode reaches that state for real: it runs recovery (torn-tail truncation,
// segment rebuild, temp sweep), a full scrub pass (quarantining chunks that
// fail their CRC), and a checkpoint (collecting orphans), then re-checks.

// FsckOptions configures a pass.
type FsckOptions struct {
	// Repair applies fixes instead of only reporting.
	Repair bool
}

// RepairSummary records what a repair pass did.
type RepairSummary struct {
	Recovery RecoveryStats `json:"recovery"`
	Scrub    ScrubReport   `json:"scrub"`
}

// FsckReport is the typed result of one fsck pass. With Repair set, the
// counts describe the directory state *after* the repair (Repaired holds
// what the repair did).
type FsckReport struct {
	Dir string `json:"dir"`
	// ManifestOK reports a present-and-valid (or validly absent) checkpoint.
	ManifestOK    bool   `json:"manifest_ok"`
	ManifestError string `json:"manifest_error,omitempty"`
	// JournalRecords / JournalSkipped count valid records and those below
	// the checkpoint low-water mark.
	JournalRecords int `json:"journal_records"`
	JournalSkipped int `json:"journal_skipped"`
	// TornTailBytes is the length of the unparseable journal tail.
	TornTailBytes int64 `json:"torn_tail_bytes"`
	// Objects / ChunksChecked count the reachable state verified.
	Objects       int `json:"objects"`
	ChunksChecked int `json:"chunks_checked"`
	// AlreadyQuarantined counts chunks recorded as quarantined (a consistent
	// condition, not a problem: the store knows the data is damaged).
	AlreadyQuarantined int `json:"already_quarantined"`
	// CorruptChunks lists reachable chunks failing their CRC and not yet
	// quarantined.
	CorruptChunks []ChunkRef `json:"corrupt_chunks,omitempty"`
	// MissingSegments lists objects whose container file is absent and whose
	// journal record (with its payloads) is gone too.
	MissingSegments []string `json:"missing_segments,omitempty"`
	// RebuildableSegments lists objects whose container is absent or wrong
	// but whose journaled payloads can rebuild it (repair fixes these
	// losslessly).
	RebuildableSegments []string `json:"rebuildable_segments,omitempty"`
	// OrphanSegments lists container files no reachable object references.
	OrphanSegments []string `json:"orphan_segments,omitempty"`
	// TempFiles lists atomic-write leftovers.
	TempFiles []string `json:"temp_files,omitempty"`
	// Repaired is set in repair mode.
	Repaired *RepairSummary `json:"repaired,omitempty"`
}

// Problems lists the actionable findings, one human-readable line each. An
// empty list is a clean store.
func (r *FsckReport) Problems() []string {
	var out []string
	if !r.ManifestOK {
		out = append(out, fmt.Sprintf("manifest invalid: %s", r.ManifestError))
	}
	if r.TornTailBytes > 0 {
		out = append(out, fmt.Sprintf("journal has a torn tail of %d bytes", r.TornTailBytes))
	}
	for _, c := range r.CorruptChunks {
		out = append(out, fmt.Sprintf("object %q chunk %d (segment %s) fails its checksum", c.Object, c.Chunk, c.Segment))
	}
	for _, name := range r.RebuildableSegments {
		out = append(out, fmt.Sprintf("object %q segment is missing or wrong (rebuildable from journal)", name))
	}
	for _, name := range r.MissingSegments {
		out = append(out, fmt.Sprintf("object %q segment is missing and unrecoverable", name))
	}
	for _, seg := range r.OrphanSegments {
		out = append(out, fmt.Sprintf("segment %s is referenced by no object", seg))
	}
	for _, tmp := range r.TempFiles {
		out = append(out, fmt.Sprintf("unpublished temp file %s", tmp))
	}
	return out
}

// Clean reports a store with nothing for repair to do.
func (r *FsckReport) Clean() bool { return len(r.Problems()) == 0 }

// Fsck checks (and with o.Repair, repairs) the store directory, which must
// not be concurrently open.
func Fsck(dir string, o FsckOptions) (*FsckReport, error) {
	if o.Repair {
		summary := &RepairSummary{}
		s, err := Open(dir, Options{CheckpointBytes: -1})
		if err != nil {
			return nil, err
		}
		summary.Recovery = s.Recovery()
		rep, err := s.ScrubOnce()
		if err != nil {
			_ = s.Close()
			return nil, err
		}
		summary.Scrub = rep
		if err := s.Checkpoint(); err != nil {
			_ = s.Close()
			return nil, err
		}
		if err := s.Close(); err != nil {
			return nil, err
		}
		report, err := fsckCheck(dir)
		if err != nil {
			return nil, err
		}
		report.Repaired = summary
		return report, nil
	}
	return fsckCheck(dir)
}

// fsckCheck is the read-only pass.
func fsckCheck(dir string) (*FsckReport, error) {
	rep := &FsckReport{Dir: dir, ManifestOK: true}

	// Temp artifacts.
	for _, d := range []string{dir, filepath.Join(dir, objectsDir)} {
		entries, err := os.ReadDir(d)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if !e.IsDir() && fsx.IsTempArtifact(e.Name()) {
				rel, _ := filepath.Rel(dir, filepath.Join(d, e.Name()))
				rep.TempFiles = append(rep.TempFiles, rel)
			}
		}
	}

	// Manifest.
	man, err := loadManifest(filepath.Join(dir, manifestFile))
	if err != nil {
		rep.ManifestOK = false
		rep.ManifestError = err.Error()
		man = manifest{Version: manifestVersion, Objects: map[string]manifestObject{}}
	}

	// Journal.
	recs, validSize, total, err := scanJournal(filepath.Join(dir, journalFile))
	if err != nil {
		return nil, err
	}
	rep.TornTailBytes = total - validSize

	// Fold manifest + journal into the state recovery would reach. Put
	// records keep their payloads so chunk verification can distinguish
	// "rebuildable" from "lost".
	type fsckObject struct {
		meta        ObjectMeta
		quarantined map[int]bool
		payloads    [][]byte // nil when only the manifest knows the object
	}
	state := map[string]*fsckObject{}
	for name, mo := range man.Objects {
		q := map[int]bool{}
		for _, idx := range mo.Quarantined {
			q[idx] = true
		}
		state[name] = &fsckObject{meta: mo.Meta, quarantined: q}
	}
	for _, rec := range recs {
		if rec.lsn <= man.LastLSN {
			rep.JournalSkipped++
			continue
		}
		rep.JournalRecords++
		switch rec.op {
		case opPut:
			om := *rec.meta.Object
			if cur, ok := state[om.Name]; !ok || cur.meta.LSN < om.LSN {
				state[om.Name] = &fsckObject{meta: om, quarantined: map[int]bool{}, payloads: rec.chunks}
			}
		case opDelete:
			if cur, ok := state[rec.meta.Name]; ok && cur.meta.LSN < rec.lsn {
				delete(state, rec.meta.Name)
			}
		case opQuarantine:
			if cur, ok := state[rec.meta.Name]; ok {
				for _, idx := range rec.meta.Chunks {
					if idx >= 0 && idx < len(cur.meta.Chunks) {
						cur.quarantined[idx] = true
					}
				}
			}
		}
	}

	// Verify every reachable chunk.
	names := make([]string, 0, len(state))
	for name := range state {
		names = append(names, name)
	}
	sort.Strings(names)
	referenced := map[string]bool{}
	for _, name := range names {
		fo := state[name]
		referenced[fo.meta.Segment] = true
		rep.Objects++
		rep.AlreadyQuarantined += len(fo.quarantined)
		path := filepath.Join(dir, objectsDir, fo.meta.Segment)
		f, err := h5lite.Open(path)
		var raw []h5lite.RawChunk
		if err == nil {
			raw, err = f.RawChunks(datasetName)
		}
		if err != nil || len(raw) != len(fo.meta.Chunks) {
			if fo.payloads != nil {
				rep.RebuildableSegments = append(rep.RebuildableSegments, name)
			} else if os.IsNotExist(errRoot(err)) {
				rep.MissingSegments = append(rep.MissingSegments, name)
			} else {
				// Present but unreadable, and no payloads to rebuild from:
				// every unquarantined chunk is corrupt.
				for i := range fo.meta.Chunks {
					if !fo.quarantined[i] {
						rep.CorruptChunks = append(rep.CorruptChunks, ChunkRef{Object: name, Segment: fo.meta.Segment, Chunk: i})
					}
				}
			}
			continue
		}
		for i, ch := range raw {
			if fo.quarantined[i] {
				continue
			}
			rep.ChunksChecked++
			ok := ch.Rows == fo.meta.Chunks[i].Rows &&
				uint64(len(ch.Payload)) == fo.meta.Chunks[i].Length &&
				crc32.Checksum(ch.Payload, castagnoli) == fo.meta.Chunks[i].CRC
			if !ok {
				if fo.payloads != nil {
					rep.RebuildableSegments = append(rep.RebuildableSegments, name)
					break
				}
				rep.CorruptChunks = append(rep.CorruptChunks, ChunkRef{Object: name, Segment: fo.meta.Segment, Chunk: i})
			}
		}
	}

	// Orphans.
	entries, err := os.ReadDir(filepath.Join(dir, objectsDir))
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	for _, e := range entries {
		if isSegmentName(e.Name()) && !referenced[e.Name()] {
			rep.OrphanSegments = append(rep.OrphanSegments, e.Name())
		}
	}
	return rep, nil
}
