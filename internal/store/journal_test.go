package store

import (
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pressio/internal/core"
	"pressio/internal/trace"
)

// testPutRecord builds a valid put record for codec tests.
func testPutRecord(lsn uint64, name string, payloads ...[]byte) record {
	om := &ObjectMeta{
		Name:    name,
		DType:   "float64",
		Dims:    []uint64{uint64(len(payloads))},
		Segment: segmentName(lsn),
		LSN:     lsn,
		Chunks:  make([]ChunkMeta, len(payloads)),
	}
	for i, p := range payloads {
		om.Chunks[i] = ChunkMeta{Rows: 1, Length: uint64(len(p)), CRC: crc32.Checksum(p, castagnoli)}
	}
	return record{op: opPut, lsn: lsn, meta: recordMeta{Object: om}, chunks: payloads}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	recs := []record{
		testPutRecord(1, "a", []byte("chunk-one"), []byte("chunk-two")),
		{op: opDelete, lsn: 2, meta: recordMeta{Name: "a"}},
		{op: opQuarantine, lsn: 3, meta: recordMeta{Name: "b", Chunks: []int{0, 3}}},
	}
	var buf []byte
	for _, rec := range recs {
		b, err := encodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, b...)
	}
	off := 0
	for i, want := range recs {
		got, n, err := decodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.op != want.op || got.lsn != want.lsn {
			t.Fatalf("record %d header mismatch: %+v", i, got)
		}
		if want.op == opPut {
			if got.meta.Object == nil || got.meta.Object.Name != want.meta.Object.Name {
				t.Fatalf("record %d object meta lost", i)
			}
			for k, ch := range want.chunks {
				if string(got.chunks[k]) != string(ch) {
					t.Fatalf("record %d chunk %d payload mismatch", i, k)
				}
			}
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestDecodeRecordRejectsCorruption(t *testing.T) {
	valid, err := encodeRecord(testPutRecord(7, "x", []byte("payload")))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"short":      valid[:6],
		"bad magic":  append([]byte("XXXX"), valid[4:]...),
		"truncated":  valid[:len(valid)-1],
		"no payload": valid[:12],
	}
	// Flip a payload byte: the CRC must catch it.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x40
	cases["bitflip"] = flipped
	// Declare a huge payload length.
	big := append([]byte(nil), valid...)
	big[4], big[5], big[6], big[7] = 0xff, 0xff, 0xff, 0xff
	cases["huge length"] = big
	for name, b := range cases {
		if _, _, err := decodeRecord(b); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("%s: %v does not wrap ErrCorrupt", name, err)
		}
	}
}

func TestDecodeRecordRejectsBadSemantics(t *testing.T) {
	// A structurally sound record whose meta lies about the chunks.
	rec := testPutRecord(1, "x", []byte("data"))
	rec.meta.Object.Chunks[0].CRC++ // CRC disagrees with the payload
	b, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := decodeRecord(b); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("chunk CRC lie accepted: %v", err)
	}

	rec = testPutRecord(2, "x", []byte("data"))
	rec.meta.Object.Segment = "../../etc/passwd" // path traversal via segment
	b, err = encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := decodeRecord(b); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("traversal segment name accepted: %v", err)
	}

	rec = testPutRecord(3, "x", []byte("data"))
	rec.meta.Object.LSN = 99 // object LSN disagrees with record LSN
	b, err = encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := decodeRecord(b); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("LSN mismatch accepted: %v", err)
	}
}

func TestScanJournalStopsAtTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.pjl")
	var buf []byte
	for lsn := uint64(1); lsn <= 3; lsn++ {
		b, err := encodeRecord(testPutRecord(lsn, "x", []byte("payload")))
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, b...)
	}
	cleanLen := int64(len(buf))
	torn, err := encodeRecord(testPutRecord(4, "x", []byte("payload")))
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, torn[:len(torn)/2]...)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, validSize, total, err := scanJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || validSize != cleanLen || total != int64(len(buf)) {
		t.Fatalf("scan: %d recs, valid %d (want %d), total %d", len(recs), validSize, cleanLen, total)
	}

	// An LSN regression mid-file is corruption, not history.
	var regress []byte
	for _, lsn := range []uint64{5, 4} {
		b, err := encodeRecord(testPutRecord(lsn, "x", []byte("p")))
		if err != nil {
			t.Fatal(err)
		}
		regress = append(regress, b...)
	}
	if err := os.WriteFile(path, regress, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, _, _, err = scanJournal(path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("LSN regression: %d recs, %v", len(recs), err)
	}
}

func TestGroupCommitSharesFsyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.pjl")
	j, err := openJournal(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()

	const writers = 16
	before := trace.GetCounter(trace.CtrStoreJournalFsyncs).Value()
	ends := make([]int64, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		_, end, err := j.append(opDelete, recordMeta{Name: "x"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ends[w] = end
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(end int64) {
			defer wg.Done()
			if err := j.commit(end); err != nil {
				t.Error(err)
			}
		}(ends[w])
	}
	wg.Wait()
	fsyncs := trace.GetCounter(trace.CtrStoreJournalFsyncs).Value() - before
	if fsyncs < 1 || fsyncs > writers {
		t.Fatalf("fsyncs %d outside [1, %d]", fsyncs, writers)
	}
	// The highest watermark committer flushed for everyone; at minimum the
	// final commit of the max offset must not have required `writers` syncs.
	if fsyncs == writers {
		t.Logf("no grouping observed (legal but unexpected): %d fsyncs", fsyncs)
	}

	// All records are on disk and scan back.
	recs, _, _, err := scanJournal(path)
	if err != nil || len(recs) != writers {
		t.Fatalf("scan after group commit: %d recs, %v", len(recs), err)
	}
}
