package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pressio/internal/h5lite"
)

// flipChunkByte corrupts one byte of the given chunk's payload inside the
// segment file, bypassing the store (this is bit rot, not a crash).
func flipChunkByte(t *testing.T, segPath string, chunk int) {
	t.Helper()
	f, err := h5lite.Open(segPath)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := f.RawChunks(datasetName)
	if err != nil {
		t.Fatal(err)
	}
	if chunk >= len(raw) {
		t.Fatalf("segment has %d chunks, wanted %d", len(raw), chunk)
	}
	disk, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	off := bytes.Index(disk, raw[chunk].Payload)
	if off < 0 {
		t.Fatal("chunk payload not found in segment file")
	}
	disk[off+len(raw[chunk].Payload)/2] ^= 0x20
	if err := os.WriteFile(segPath, disk, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestScrubQuarantinesExactlyTheCorruptChunks(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	victim := mustPut(t, s, "victim", testData(64), PutOptions{Filter: "flate", ChunkRows: 10})
	intactData := testData(32)
	mustPut(t, s, "intact", intactData, PutOptions{Filter: "flate", ChunkRows: 8})

	// Flip a byte in chunks 2 and 5 of the victim (7 chunks total).
	flipChunkByte(t, s.segmentPath(victim.Segment), 2)
	flipChunkByte(t, s.segmentPath(victim.Segment), 5)

	rep, err := s.ScrubOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 2 || rep.Quarantined != 2 {
		t.Fatalf("scrub found %+v, want exactly chunks 2 and 5", rep.Corrupt)
	}
	got := map[int]bool{}
	for _, c := range rep.Corrupt {
		if c.Object != "victim" {
			t.Fatalf("scrub condemned wrong object %q", c.Object)
		}
		got[c.Chunk] = true
	}
	if !got[2] || !got[5] {
		t.Fatalf("scrub condemned chunks %v, want {2, 5}", got)
	}

	// The intact object is untouched and fully readable.
	d, info, err := s.Get("intact")
	if err != nil || !d.Equal(intactData) {
		t.Fatalf("intact object unreadable after scrub: %v", err)
	}
	if len(info.QuarantinedChunks) != 0 {
		t.Fatalf("intact object quarantined: %v", info.QuarantinedChunks)
	}

	// Full read of the victim fails typed; non-overlapping range reads work.
	if _, _, err := s.Get("victim"); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("full read of quarantined object: %v", err)
	}
	if _, _, err := s.GetRows("victim", 0, 10); err != nil {
		t.Fatalf("read of intact chunk 0 blocked: %v", err)
	}
	if _, _, err := s.GetRows("victim", 20, 10); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("read overlapping corrupt chunk 2: %v", err)
	}

	// The evidence copy landed in quarantine/.
	ents, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(ents) == 0 {
		t.Fatalf("no evidence in quarantine/: %v", err)
	}

	// The verdict survives a reopen (it went through the journal).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	info, err = r.Stat("victim")
	if err != nil || len(info.QuarantinedChunks) != 2 {
		t.Fatalf("quarantine state lost across reopen: %+v %v", info, err)
	}
	d, _, err = r.Get("intact")
	if err != nil || !d.Equal(intactData) {
		t.Fatalf("intact object lost across reopen: %v", err)
	}

	// A second scrub pass is stable: already-quarantined chunks are skipped,
	// nothing new is condemned.
	rep2, err := r.ScrubOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Corrupt) != 0 {
		t.Fatalf("second pass re-condemned: %+v", rep2.Corrupt)
	}
}

func TestScrubberRunsInBackground(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustPut(t, s, "x", testData(16), PutOptions{Filter: "flate", ChunkRows: 4})

	sc := NewScrubber(s, 5*time.Millisecond, 42)
	sc.Start()
	defer sc.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if rep, ok := sc.LastReport(); ok {
			if rep.Objects != 1 || len(rep.Corrupt) != 0 {
				t.Fatalf("background pass report: %+v", rep)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scrubber never completed a pass")
		}
		time.Sleep(time.Millisecond)
	}
	sc.Stop()
	// Stop is idempotent and a disabled scrubber's Start is a no-op.
	sc.Stop()
	NewScrubber(s, 0, 0).Start()
}
