package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"pressio/internal/core"
	"pressio/internal/fsx"
	"pressio/internal/trace"
)

// The write-ahead journal makes every store mutation durable before it is
// acknowledged. Each record is a self-delimiting frame in the LPFR idiom of
// internal/resilience: length-prefixed, CRC32-C checked, decoded with hard
// caps on every attacker-controlled size so a corrupted or truncated journal
// is rejected deterministically rather than trusted.
//
// Record layout (multi-byte integers little-endian unless marked uvarint):
//
//	offset  size  field
//	0       4     magic "PJL1" (version folded into the magic)
//	4       4     uint32 payload length
//	8       4     uint32 CRC32-C of the payload
//	12      n     payload
//
// Payload layout:
//
//	1 byte   op (1 = put, 2 = delete, 3 = quarantine)
//	uvarint  LSN
//	uvarint  meta length, then meta JSON (recordMeta)
//	uvarint  chunk count, then per chunk: uvarint length + payload bytes
//	         (put records carry the full post-filter chunk payloads, so
//	         recovery can rebuild a segment the crash destroyed; other ops
//	         carry zero chunks)
//
// A put is acknowledged only after its record is fsynced. The fsync is a
// group commit: concurrent appenders share one fsync via a synced-offset
// watermark, so N writers cost far fewer than N flushes.

// journalMagic identifies a journal record (the trailing '1' is the layout
// version).
const journalMagic = "PJL1"

// Record operations.
const (
	opPut        = 1
	opDelete     = 2
	opQuarantine = 3
)

// Decode caps: every size read from the journal is checked against one of
// these constants before it is allocated, looped over, or indexed with.
const (
	// maxRecordBytes bounds one framed record (header + payload).
	maxRecordBytes = 1 << 30
	// maxMetaBytes bounds the embedded metadata JSON.
	maxMetaBytes = 1 << 20
	// maxChunksPerObject bounds the chunk count of one object.
	maxChunksPerObject = 1 << 16
	// maxNameLen bounds an object name.
	maxNameLen = 512
	// maxRank bounds dataset rank, matching the framework-wide limit.
	maxRank = 16
	// maxDim bounds one dataset dimension (and, via an overflow-safe running
	// product, the total element count).
	maxDim = 1 << 48
)

// Journal crash points, one per ordering-critical filesystem operation. The
// crash matrix in crash_matrix_test.go enumerates these (plus the fsx.atomic
// points) and proves recovery at every one of them.
var (
	// PointJournalTorn fires mid-append: half the record reaches the file,
	// simulating a torn write that recovery must truncate.
	PointJournalTorn = fsx.RegisterFSPoint("store.journal.append.torn")
	// PointJournalWrite fires before the record write: nothing appended.
	PointJournalWrite = fsx.RegisterFSPoint("store.journal.append.write")
	// PointJournalFsync fires after the append, before the group-commit
	// fsync: the record exists but is not yet durable, so the write must not
	// be acknowledged.
	PointJournalFsync = fsx.RegisterFSPoint("store.journal.append.fsync")
	// PointJournalTrunc fires before a checkpoint (or recovery) truncates
	// the journal.
	PointJournalTrunc = fsx.RegisterFSPoint("store.journal.truncate")
)

// castagnoli is the CRC32-C table shared with the resilience frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChunkMeta describes one stored chunk of an object: the dim-0 rows it
// covers, its post-filter byte length, and the CRC32-C of those bytes.
type ChunkMeta struct {
	Rows   uint64 `json:"rows"`
	Length uint64 `json:"length"`
	CRC    uint32 `json:"crc"`
}

// ObjectMeta is the durable description of one stored object.
type ObjectMeta struct {
	Name          string             `json:"name"`
	DType         string             `json:"dtype"`
	Dims          []uint64           `json:"dims"`
	Filter        string             `json:"filter,omitempty"`
	FilterOptions map[string]float64 `json:"filter_options,omitempty"`
	// Segment is the container file name under objects/, derived from LSN.
	Segment string      `json:"segment"`
	Chunks  []ChunkMeta `json:"chunks"`
	// LSN is the journal sequence number of the put that created this
	// version; replay and concurrent applies are ordered by it.
	LSN uint64 `json:"lsn"`
}

// recordMeta is the JSON carried inside a journal record.
type recordMeta struct {
	// Object is set on put records.
	Object *ObjectMeta `json:"object,omitempty"`
	// Name is set on delete and quarantine records.
	Name string `json:"name,omitempty"`
	// Chunks lists the quarantined chunk indices on quarantine records.
	Chunks []int `json:"chunks,omitempty"`
}

// record is one decoded journal record.
type record struct {
	op     byte
	lsn    uint64
	meta   recordMeta
	chunks [][]byte
}

// corrupt builds the canonical journal-corruption error.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("store: %w: "+format, append([]any{core.ErrCorrupt}, args...)...)
}

// encodeRecord frames one record.
func encodeRecord(rec record) ([]byte, error) {
	metaJSON, err := json.Marshal(rec.meta)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 0, 1+10+len(metaJSON)+64)
	payload = append(payload, rec.op)
	payload = binary.AppendUvarint(payload, rec.lsn)
	payload = binary.AppendUvarint(payload, uint64(len(metaJSON)))
	payload = append(payload, metaJSON...)
	payload = binary.AppendUvarint(payload, uint64(len(rec.chunks)))
	for _, ch := range rec.chunks {
		payload = binary.AppendUvarint(payload, uint64(len(ch)))
		payload = append(payload, ch...)
	}
	out := make([]byte, 0, len(journalMagic)+8+len(payload))
	out = append(out, journalMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	out = append(out, payload...)
	if len(out) > maxRecordBytes {
		return nil, fmt.Errorf("store: record of %d bytes exceeds cap", len(out))
	}
	return out, nil
}

// decodeRecord parses and validates one framed record from the head of b,
// returning the bytes consumed so a scan can iterate. Every rejection wraps
// core.ErrCorrupt; a rejection at the head of a scan position means the tail
// from there on is torn. The input is a journal read back from disk after an
// arbitrary crash (or fed by the fuzzer), so nothing in it is trusted: every
// size is capped before allocation, every slice bound checked before use.
//
//pressio:untrusted
func decodeRecord(b []byte) (record, int, error) {
	var rec record
	if len(b) < len(journalMagic)+8 {
		return rec, 0, corrupt("truncated record header")
	}
	if string(b[:len(journalMagic)]) != journalMagic {
		return rec, 0, corrupt("missing record magic")
	}
	plen := int(binary.LittleEndian.Uint32(b[len(journalMagic):]))
	if plen > maxRecordBytes {
		return rec, 0, corrupt("declared payload of %d bytes exceeds cap", plen)
	}
	sum := binary.LittleEndian.Uint32(b[len(journalMagic)+4:])
	head := len(journalMagic) + 8
	if len(b)-head < plen {
		return rec, 0, corrupt("payload is %d bytes, header declares %d", len(b)-head, plen)
	}
	payload := b[head : head+plen]
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return rec, 0, corrupt("record checksum mismatch: payload %08x, header %08x", got, sum)
	}
	// From here on the payload is integrity-checked, but its *contents* are
	// still only as trustworthy as whoever wrote the file: keep every bound
	// explicit.
	if len(payload) < 1 {
		return rec, 0, corrupt("empty payload")
	}
	rec.op = payload[0]
	if rec.op != opPut && rec.op != opDelete && rec.op != opQuarantine {
		return rec, 0, corrupt("unknown op %d", rec.op)
	}
	pos := 1
	lsn, n := binary.Uvarint(payload[pos:])
	if n <= 0 {
		return rec, 0, corrupt("truncated lsn")
	}
	rec.lsn = lsn
	pos += n
	mlen, n := binary.Uvarint(payload[pos:])
	if n <= 0 || mlen > maxMetaBytes {
		return rec, 0, corrupt("bad meta length")
	}
	pos += n
	if uint64(len(payload)-pos) < mlen {
		return rec, 0, corrupt("truncated meta")
	}
	if err := json.Unmarshal(payload[pos:pos+int(mlen)], &rec.meta); err != nil {
		return rec, 0, corrupt("meta does not parse: %v", err)
	}
	pos += int(mlen)
	nchunks, n := binary.Uvarint(payload[pos:])
	if n <= 0 || nchunks > maxChunksPerObject {
		return rec, 0, corrupt("bad chunk count")
	}
	pos += n
	if nchunks > uint64(len(payload)-pos) {
		// Each chunk costs at least its one-byte length prefix, so the count
		// can never exceed the remaining bytes: reject before allocating.
		return rec, 0, corrupt("chunk count %d exceeds remaining payload", nchunks)
	}
	rec.chunks = make([][]byte, nchunks)
	for i := range rec.chunks {
		clen, n := binary.Uvarint(payload[pos:])
		if n <= 0 || clen > maxRecordBytes {
			return rec, 0, corrupt("bad chunk length")
		}
		pos += n
		if uint64(len(payload)-pos) < clen {
			return rec, 0, corrupt("truncated chunk")
		}
		rec.chunks[i] = payload[pos : pos+int(clen)]
		pos += int(clen)
	}
	if pos != len(payload) {
		return rec, 0, corrupt("%d trailing payload bytes", len(payload)-pos)
	}
	if err := validateRecord(&rec); err != nil {
		return rec, 0, err
	}
	return rec, head + plen, nil
}

// validateRecord cross-checks the decoded metadata against the carried
// payloads, so nothing downstream of the decoder needs to re-verify shape
// arithmetic or checksums.
func validateRecord(rec *record) error {
	switch rec.op {
	case opPut:
		om := rec.meta.Object
		if om == nil {
			return corrupt("put record without object meta")
		}
		if err := validateObjectMeta(om); err != nil {
			return err
		}
		if om.LSN != rec.lsn {
			return corrupt("object lsn %d does not match record lsn %d", om.LSN, rec.lsn)
		}
		if len(rec.chunks) != len(om.Chunks) {
			return corrupt("record carries %d chunks, meta declares %d", len(rec.chunks), len(om.Chunks))
		}
		for i, ch := range rec.chunks {
			if uint64(len(ch)) != om.Chunks[i].Length {
				return corrupt("chunk %d is %d bytes, meta declares %d", i, len(ch), om.Chunks[i].Length)
			}
			if got := crc32.Checksum(ch, castagnoli); got != om.Chunks[i].CRC {
				return corrupt("chunk %d checksum mismatch", i)
			}
		}
	case opDelete, opQuarantine:
		if err := validateName(rec.meta.Name); err != nil {
			return corrupt("bad record name: %v", err)
		}
		if len(rec.chunks) != 0 {
			return corrupt("op %d record carries chunk payloads", rec.op)
		}
		if rec.op == opQuarantine {
			if len(rec.meta.Chunks) == 0 || len(rec.meta.Chunks) > maxChunksPerObject {
				return corrupt("bad quarantine chunk list")
			}
			for _, idx := range rec.meta.Chunks {
				if idx < 0 || idx >= maxChunksPerObject {
					return corrupt("quarantine chunk index %d out of range", idx)
				}
			}
		}
	}
	return nil
}

// validateObjectMeta checks the bounds of a durable object description read
// from the journal or manifest.
func validateObjectMeta(om *ObjectMeta) error {
	if err := validateName(om.Name); err != nil {
		return corrupt("bad object name: %v", err)
	}
	if _, err := core.ParseDType(om.DType); err != nil {
		return corrupt("bad dtype %q", om.DType)
	}
	if len(om.Dims) == 0 || len(om.Dims) > maxRank {
		return corrupt("rank %d out of range", len(om.Dims))
	}
	total := uint64(1)
	for _, d := range om.Dims {
		if d > maxDim {
			return corrupt("declared dim too large")
		}
		if d > 0 {
			// Overflow-safe running product, as in the resilience frame.
			if total > maxDim/d {
				return corrupt("declared shape too large")
			}
			total *= d
		}
	}
	if !isSegmentName(om.Segment) {
		return corrupt("bad segment name %q", om.Segment)
	}
	if len(om.Chunks) > maxChunksPerObject {
		return corrupt("chunk count %d exceeds cap", len(om.Chunks))
	}
	var rows uint64
	for _, ch := range om.Chunks {
		if ch.Rows > maxDim || ch.Length > maxRecordBytes {
			return corrupt("chunk bounds out of range")
		}
		rows += ch.Rows
	}
	if rows != om.Dims[0] {
		return corrupt("chunks cover %d rows, dims declare %d", rows, om.Dims[0])
	}
	return nil
}

// validateName bounds an object name: it is only ever a map key and a JSON
// string — never a file path — but control bytes would still leak into logs
// and listings.
func validateName(name string) error {
	if name == "" || len(name) > maxNameLen {
		return fmt.Errorf("store: %w: object name length %d out of range [1, %d]", core.ErrInvalidOption, len(name), maxNameLen)
	}
	for i := 0; i < len(name); i++ {
		if name[i] < 0x20 || name[i] == 0x7f {
			return fmt.Errorf("store: %w: object name contains control byte 0x%02x", core.ErrInvalidOption, name[i])
		}
	}
	if name == "." || name == ".." {
		return fmt.Errorf("store: %w: reserved object name %q", core.ErrInvalidOption, name)
	}
	return nil
}

// isSegmentName reports whether s is a well-formed segment file name
// (16 lowercase hex digits + ".h5l"). Segment names from the journal are
// joined into file paths, so anything else — separators, dots, traversal —
// is rejected at decode time.
func isSegmentName(s string) bool {
	const suffix = ".h5l"
	if len(s) != 16+len(suffix) || s[16:] != suffix {
		return false
	}
	for i := 0; i < 16; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// segmentName derives the container file name for the put at lsn.
func segmentName(lsn uint64) string { return fmt.Sprintf("%016x.h5l", lsn) }

// journal is the append-only record log. Appends are serialized by mu; the
// fsync is group-committed through syncMu and the synced watermark.
type journal struct {
	path string

	mu      sync.Mutex // guards f appends, size, lastLSN, broken
	f       *os.File
	size    int64
	lastLSN uint64
	// broken is set when a failed append could not be rolled back: the file
	// may end mid-record, so further appends would be unreachable by replay.
	broken bool

	syncMu sync.Mutex // guards synced, serializes fsyncs
	synced int64
}

// openJournal opens (creating if needed) the journal for appending. size
// must be the scanned valid length and lastLSN the highest LSN seen across
// manifest and journal — recovery establishes both.
func openJournal(path string, size int64, lastLSN uint64) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{path: path, f: f, size: size, lastLSN: lastLSN, synced: size}, nil
}

// append assigns the next LSN, frames the record, and writes it to the log.
// It does NOT fsync — the caller acknowledges nothing until commit(end)
// returns. LSN assignment happens under the append lock, so file order and
// LSN order coincide (replay depends on this).
//
// For put records the object meta's LSN and Segment fields are filled in
// here, once the LSN is known.
func (j *journal) append(op byte, meta recordMeta, chunks [][]byte) (lsn uint64, end int64, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken {
		return 0, 0, fmt.Errorf("store: journal needs recovery after failed append")
	}
	lsn = j.lastLSN + 1
	if meta.Object != nil {
		meta.Object.LSN = lsn
		meta.Object.Segment = segmentName(lsn)
	}
	rec, err := encodeRecord(record{op: op, lsn: lsn, meta: meta, chunks: chunks})
	if err != nil {
		return 0, 0, err
	}
	if fsx.FSArmed(PointJournalTorn) {
		// Stage a torn append: half the record reaches the device, then the
		// crash fires. Recovery must quarantine and truncate this tail.
		if _, werr := j.f.Write(rec[:len(rec)/2]); werr == nil { //lint:ignore blockinglock torn-write staging fires only in crash tests, and must land inside the append lock like the write it mimics
			_ = j.f.Sync()
		}
		j.broken = true
		//lint:ignore blockinglock crash-point probe; blocks only when a crash test armed it
		return 0, 0, fsx.FSCrash(PointJournalTorn)
	}
	//lint:ignore blockinglock crash-point probe; blocks only when a crash test armed it
	if err := fsx.FSCrash(PointJournalTorn); err != nil {
		// Unreachable when due (the staging branch above runs instead); this
		// call exists to consume the fault's After count on skipped hits.
		return 0, 0, err
	}
	//lint:ignore blockinglock crash-point probe; blocks only when a crash test armed it
	if err := fsx.FSCrash(PointJournalWrite); err != nil {
		return 0, 0, err
	}
	//lint:ignore blockinglock the append lock is the WAL ordering contract — file order must equal LSN order — so the write happens inside it
	n, err := j.f.Write(rec)
	if err != nil {
		// Roll a partial append back so later records stay reachable; if even
		// that fails the journal is declared broken and the store read-only.
		if n > 0 {
			//lint:ignore blockinglock the rollback must finish before the lock releases, or a later record lands after the tear
			if terr := j.f.Truncate(j.size); terr != nil {
				j.broken = true
			}
		}
		return 0, 0, err
	}
	j.size += int64(n)
	j.lastLSN = lsn
	trace.CounterAdd(trace.CtrStoreJournalRecords, 1)
	trace.CounterAdd(trace.CtrStoreJournalBytes, int64(n))
	return lsn, j.size, nil
}

// commit makes everything up to offset end durable. Concurrent committers
// share fsyncs: whoever holds syncMu flushes for the group, and followers
// whose end is already under the watermark return without syncing.
func (j *journal) commit(end int64) error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	if j.synced >= end {
		return nil
	}
	//lint:ignore blockinglock crash-point probe; blocks only when a crash test armed it
	if err := fsx.FSCrash(PointJournalFsync); err != nil {
		return err
	}
	//lint:ignore blockinglock holding syncMu across the fsync IS group commit: followers queue on it and return once the watermark covers them
	if err := j.f.Sync(); err != nil {
		return err
	}
	// The fsync covered at least [0, end); possibly more, but end is what is
	// proven.
	j.synced = end
	trace.CounterAdd(trace.CtrStoreJournalFsyncs, 1)
	return nil
}

// reset truncates the journal to empty after a manifest checkpoint made its
// records redundant. LSNs keep increasing across resets.
func (j *journal) reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	//lint:ignore blockinglock checkpoint truncation must fence out appenders and committers; both locks exist to exclude exactly this I/O
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	//lint:ignore blockinglock the truncate must be durable before either lock releases, or a crash resurrects checkpointed records
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.size = 0
	j.synced = 0
	j.broken = false
	return nil
}

// sizeNow returns the current journal length (for checkpoint triggering).
func (j *journal) sizeNow() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// lastAssigned returns the highest LSN handed out.
func (j *journal) lastAssigned() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastLSN
}

// close flushes and closes the log.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync() //lint:ignore blockinglock final flush and close under the append lock, so no late append can race the file handle going away
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// scanJournal reads the log back and decodes records until the first
// corruption. It returns the decoded records, the byte offset up to which
// the log is valid, and the total file length; validSize < total means the
// tail from validSize on is torn and must be quarantined and truncated. A
// missing file is an empty, clean log. LSNs must be strictly increasing in
// file order — a regression is treated as corruption at that point.
func scanJournal(path string) (recs []record, validSize, total int64, err error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, err
	}
	total = int64(len(raw))
	off := 0
	var lastLSN uint64
	for off < len(raw) {
		rec, n, derr := decodeRecord(raw[off:])
		if derr != nil {
			break
		}
		if rec.lsn <= lastLSN {
			break
		}
		lastLSN = rec.lsn
		// Chunk payloads alias raw; copy so the scan buffer can be released.
		for i, ch := range rec.chunks {
			rec.chunks[i] = append([]byte(nil), ch...)
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, int64(off), total, nil
}
