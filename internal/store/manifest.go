package store

import (
	"encoding/json"
	"fmt"
	"os"

	"pressio/internal/fsx"
)

// The manifest is the checkpoint the journal is truncated against: a JSON
// snapshot of every live object plus the LSN low-water mark below which all
// records have been fully applied and published. Recovery loads it, then
// replays only journal records above LastLSN. It is always written through
// fsx.AtomicWriteFile, so a crashed checkpoint leaves the previous manifest
// generation intact.

// manifestVersion is the current manifest layout version.
const manifestVersion = 1

// maxManifestBytes bounds a manifest file read back from disk.
const maxManifestBytes = 64 << 20

// maxManifestObjects bounds the object count of a manifest.
const maxManifestObjects = 1 << 20

// PointManifest fires before a checkpoint publishes the manifest.
var PointManifest = fsx.RegisterFSPoint("store.checkpoint.manifest")

// manifestObject is one checkpointed object: its durable meta plus any
// quarantined chunk indices.
type manifestObject struct {
	Meta        ObjectMeta `json:"meta"`
	Quarantined []int      `json:"quarantined,omitempty"`
}

// manifest is the checkpoint file layout.
type manifest struct {
	Version int `json:"version"`
	// LastLSN is the low-water mark: every journal record with an LSN at or
	// below it is fully applied and its segment published, so replay skips
	// it. Records above it may or may not be reflected — replay re-applies
	// them idempotently.
	LastLSN uint64                    `json:"last_lsn"`
	Objects map[string]manifestObject `json:"objects"`
}

// loadManifest reads and validates a checkpoint. A missing file returns an
// empty manifest; anything unparseable or out of bounds is an error wrapping
// core.ErrCorrupt (recovery quarantines the file and starts empty). The
// input is a file read back after an arbitrary crash, so every count and
// index in it is bounds-checked before use.
//
//pressio:untrusted
func loadManifest(path string) (manifest, error) {
	man := manifest{Version: manifestVersion, Objects: map[string]manifestObject{}}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return man, nil
	}
	if err != nil {
		return man, err
	}
	if len(raw) > maxManifestBytes {
		return man, corrupt("manifest of %d bytes exceeds cap", len(raw))
	}
	var got manifest
	if err := json.Unmarshal(raw, &got); err != nil {
		return man, corrupt("manifest does not parse: %v", err)
	}
	if got.Version != manifestVersion {
		return man, corrupt("unsupported manifest version %d", got.Version)
	}
	if len(got.Objects) > maxManifestObjects {
		return man, corrupt("manifest object count %d exceeds cap", len(got.Objects))
	}
	if got.Objects == nil {
		got.Objects = map[string]manifestObject{}
	}
	for name, mo := range got.Objects {
		if name != mo.Meta.Name {
			return man, corrupt("manifest key %q names object %q", name, mo.Meta.Name)
		}
		if err := validateObjectMeta(&mo.Meta); err != nil {
			return man, fmt.Errorf("manifest object %q: %w", name, err)
		}
		if len(mo.Quarantined) > len(mo.Meta.Chunks) {
			return man, corrupt("manifest object %q quarantines %d of %d chunks",
				name, len(mo.Quarantined), len(mo.Meta.Chunks))
		}
		for _, idx := range mo.Quarantined {
			if idx < 0 || idx >= len(mo.Meta.Chunks) {
				return man, corrupt("manifest object %q quarantine index %d out of range", name, idx)
			}
		}
	}
	return got, nil
}

// saveManifest publishes a checkpoint crash-consistently.
func saveManifest(path string, man manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return fsx.AtomicWriteFile(path, data, 0o644)
}
