package launch

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"pressio/internal/core"
)

// stallScript writes a worker stub that reads nothing and sleeps far past
// any test deadline — the pathological external tool the Deadline field
// exists for.
func stallScript(t *testing.T) string {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("stalling-worker stub is a shell script")
	}
	path := filepath.Join(t.TempDir(), "stall.sh")
	if err := os.WriteFile(path, []byte("#!/bin/sh\nsleep 60\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestExternalDeadlineKillsStalledWorker(t *testing.T) {
	e := &External{Binary: stallScript(t), Deadline: 100 * time.Millisecond}
	start := time.Now()
	_, _, err := e.Compress("noop", nil, sample())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stalled worker returned success")
	}
	if !errors.Is(err, core.ErrTimeout) {
		t.Errorf("error %v does not wrap core.ErrTimeout", err)
	}
	if !core.IsTransient(err) {
		t.Error("worker timeout must classify as transient")
	}
	if elapsed > 10*time.Second {
		t.Errorf("deadline did not kill the worker: call took %s", elapsed)
	}
}

func TestExternalNoDeadlineStillErrorsOnBadWorker(t *testing.T) {
	// A worker that exits immediately without the protocol handshake must
	// fail as a protocol/worker error, not a timeout.
	path := filepath.Join(t.TempDir(), "exit.sh")
	if runtime.GOOS == "windows" {
		t.Skip("worker stub is a shell script")
	}
	if err := os.WriteFile(path, []byte("#!/bin/sh\nexit 3\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	e := &External{Binary: path}
	_, _, err := e.Compress("noop", nil, sample())
	if err == nil {
		t.Fatal("broken worker returned success")
	}
	if errors.Is(err, core.ErrTimeout) {
		t.Errorf("non-timeout failure misreported as timeout: %v", err)
	}
}
