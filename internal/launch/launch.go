// Package launch implements the two "how not to integrate compression"
// baselines that §V of the paper quantifies, so the repository can measure
// them against the embedded generic interface:
//
//   - External: compression through a separate worker process with the data
//     copied across pipes (the NumCodecs/Z-Checker external-tool pattern) —
//     embeddable-interface overhead;
//   - string-ly typed configuration: options carried as strings and parsed
//     against the compressor's introspected types at runtime (the
//     ADIOS2/CBench pattern) — which also demonstrates why opaque types
//     such as communicators cannot be configured that way.
package launch

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"time"

	"pressio/internal/core"
)

// ErrProtocol reports a malformed worker exchange.
var ErrProtocol = errors.New("launch: protocol error")

// Request is one unit of work shipped to a worker process.
type Request struct {
	// Op is "compress" or "decompress".
	Op string
	// Compressor names the plugin the worker should use.
	Compressor string
	// Options are string-typed options (parsed by the worker).
	Options map[string]string
	// Payload is the input buffer.
	Payload *core.Data
	// Hint carries the output dtype/dims for decompression.
	Hint *core.Data
}

const reqMagic = "LPRQ"

func writeString(w io.Writer, s string) error {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(s)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > 1<<24 {
		return "", ErrProtocol
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeData(w io.Writer, d *core.Data) error {
	if d == nil {
		d = core.NewEmpty(core.DTypeUnset)
	}
	var hdr []byte
	hdr = append(hdr, byte(d.DType()), byte(d.NumDims()))
	for _, dim := range d.Dims() {
		hdr = binary.AppendUvarint(hdr, dim)
	}
	hdr = binary.AppendUvarint(hdr, d.ByteLen())
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if d.ByteLen() > 0 {
		if _, err := w.Write(d.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

func readData(r *bufReader) (*core.Data, error) {
	dtypeB, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	rankB, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	dtype := core.DType(dtypeB)
	rank := int(rankB)
	if rank > 16 {
		return nil, ErrProtocol
	}
	dims := make([]uint64, rank)
	for i := range dims {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		dims[i] = v
	}
	blen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if blen > 1<<34 {
		return nil, ErrProtocol
	}
	buf := make([]byte, blen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if blen == 0 {
		return core.NewEmpty(dtype, dims...), nil
	}
	d, err := core.NewMove(dtype, buf, dims...)
	if err != nil {
		// Fall back to an opaque byte payload (used for compressed data).
		return core.NewBytes(buf), nil
	}
	return d, nil
}

// bufReader is the minimal ByteReader+Reader the decoder needs.
type bufReader struct {
	r io.Reader
}

func (b *bufReader) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *bufReader) ReadByte() (byte, error) {
	var one [1]byte
	if _, err := io.ReadFull(b.r, one[:]); err != nil {
		return 0, err
	}
	return one[0], nil
}

// WriteRequest serializes a request to w.
func WriteRequest(w io.Writer, req Request) error {
	if _, err := io.WriteString(w, reqMagic); err != nil {
		return err
	}
	if err := writeString(w, req.Op); err != nil {
		return err
	}
	if err := writeString(w, req.Compressor); err != nil {
		return err
	}
	var kv bytes.Buffer
	n := 0
	for k, v := range req.Options {
		if err := writeString(&kv, k); err != nil {
			return err
		}
		if err := writeString(&kv, v); err != nil {
			return err
		}
		n++
	}
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(n))
	if _, err := w.Write(cnt[:]); err != nil {
		return err
	}
	if _, err := w.Write(kv.Bytes()); err != nil {
		return err
	}
	if err := writeData(w, req.Payload); err != nil {
		return err
	}
	return writeData(w, req.Hint)
}

// ReadRequest parses a request from r.
func ReadRequest(r io.Reader) (Request, error) {
	br := &bufReader{r}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return Request{}, err
	}
	if string(magic) != reqMagic {
		return Request{}, ErrProtocol
	}
	var req Request
	var err error
	if req.Op, err = readString(br); err != nil {
		return req, err
	}
	if req.Compressor, err = readString(br); err != nil {
		return req, err
	}
	var cnt [4]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return req, err
	}
	n := binary.LittleEndian.Uint32(cnt[:])
	if n > 1<<16 {
		return req, ErrProtocol
	}
	req.Options = make(map[string]string, n)
	for i := uint32(0); i < n; i++ {
		k, err := readString(br)
		if err != nil {
			return req, err
		}
		v, err := readString(br)
		if err != nil {
			return req, err
		}
		req.Options[k] = v
	}
	if req.Payload, err = readData(br); err != nil {
		return req, err
	}
	if req.Hint, err = readData(br); err != nil {
		return req, err
	}
	return req, nil
}

// Serve handles one request read from r and writes the response Data to w.
// It is the body of a worker process's main loop.
func Serve(r io.Reader, w io.Writer) error {
	req, err := ReadRequest(r)
	if err != nil {
		return err
	}
	c, err := core.NewCompressor(req.Compressor)
	if err != nil {
		return err
	}
	if err := ApplyStringOptions(c, req.Options); err != nil {
		return err
	}
	switch req.Op {
	case "compress":
		out, err := core.Compress(c, req.Payload)
		if err != nil {
			return err
		}
		return writeData(w, out)
	case "decompress":
		out := core.NewEmpty(req.Hint.DType(), req.Hint.Dims()...)
		if err := c.Decompress(req.Payload, out); err != nil {
			return err
		}
		return writeData(w, out)
	default:
		return fmt.Errorf("%w: op %q", ErrProtocol, req.Op)
	}
}

// External invokes compression through a worker subprocess, copying the
// data across the process boundary both ways — the §V non-embeddable
// pattern whose overhead the bench harness measures.
type External struct {
	// Binary is the worker executable; Args are prepended arguments that
	// select its worker mode.
	Binary string
	Args   []string
	// StartupDelay simulates expensive worker initialization (e.g. an
	// MPI-launched compressor); zero for a plain process spawn.
	StartupDelay time.Duration
	// Deadline bounds one whole worker exchange (spawn, write, compute,
	// read). When it passes the subprocess is killed and the call returns an
	// error wrapping core.ErrTimeout, which classifies as transient so a
	// guard layer may retry. Zero means no deadline.
	Deadline time.Duration
}

// Compress runs one compression in the worker and reports the total
// wall-clock time of the external exchange.
func (e *External) Compress(compressor string, opts map[string]string, in *core.Data) (*core.Data, time.Duration, error) {
	start := time.Now()
	var reqBuf bytes.Buffer
	err := WriteRequest(&reqBuf, Request{
		Op: "compress", Compressor: compressor, Options: opts, Payload: in,
	})
	if err != nil {
		return nil, 0, err
	}
	args := append([]string(nil), e.Args...)
	if e.StartupDelay > 0 {
		args = append(args, fmt.Sprintf("-startup-delay=%s", e.StartupDelay))
	}
	ctx := context.Background()
	if e.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.Deadline)
		defer cancel()
	}
	cmd := exec.CommandContext(ctx, e.Binary, args...)
	if e.Deadline > 0 {
		// Without this, Run blocks past the kill while any grandchild that
		// inherited the stdout pipe keeps it open.
		cmd.WaitDelay = 100 * time.Millisecond
	}
	cmd.Stdin = &reqBuf
	var out bytes.Buffer
	var errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		if ctx.Err() == context.DeadlineExceeded {
			return nil, 0, fmt.Errorf("launch: %w: worker exceeded deadline %s (killed)",
				core.ErrTimeout, e.Deadline)
		}
		return nil, 0, fmt.Errorf("launch: worker failed: %v: %s", err, errBuf.String())
	}
	d, err := readData(&bufReader{&out})
	if err != nil {
		return nil, 0, err
	}
	return d, time.Since(start), nil
}

// ApplyStringOptions configures c from string-typed key/value pairs by
// introspecting the compressor's option types and parsing each value — the
// "string-ly typed" configuration pattern. Keys the compressor does not
// advertise are tried as double, int64, then string.
func ApplyStringOptions(c *core.Compressor, kv map[string]string) error {
	if len(kv) == 0 {
		return nil
	}
	known := c.Options()
	opts := core.NewOptions()
	for k, v := range kv {
		strOpt := core.NewOption(v)
		if existing, ok := known.Get(k); ok && existing.Type() != core.OptUnset {
			cast, ok := strOpt.Cast(existing.Type(), core.CastSpecial)
			if !ok {
				return fmt.Errorf("%w: cannot parse %q as %v for %s",
					core.ErrInvalidOption, v, existing.Type(), k)
			}
			opts.Set(k, cast)
			continue
		}
		if cast, ok := strOpt.Cast(core.OptDouble, core.CastSpecial); ok {
			opts.Set(k, cast)
		} else if cast, ok := strOpt.Cast(core.OptInt64, core.CastSpecial); ok {
			opts.Set(k, cast)
		} else {
			opts.Set(k, strOpt)
		}
	}
	return c.SetOptions(opts)
}
