package launch

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"pressio/internal/core"
	_ "pressio/internal/lossless"
	_ "pressio/internal/sz"
)

func sample() *core.Data {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float32, 32*32)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i)/15) + 0.01*rng.NormFloat64())
	}
	return core.FromFloat32s(vals, 32, 32)
}

func TestRequestRoundTrip(t *testing.T) {
	in := sample()
	req := Request{
		Op:         "compress",
		Compressor: "sz_threadsafe",
		Options:    map[string]string{"pressio:abs": "0.001", "mode": "fast"},
		Payload:    in,
		Hint:       core.NewEmpty(core.DTypeFloat32, 32, 32),
	}
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != req.Op || got.Compressor != req.Compressor {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Options["pressio:abs"] != "0.001" || got.Options["mode"] != "fast" {
		t.Fatalf("options mismatch: %v", got.Options)
	}
	if !got.Payload.Equal(in) {
		t.Fatal("payload mismatch")
	}
	if got.Hint.DType() != core.DTypeFloat32 || got.Hint.Len() != 1024 {
		t.Fatalf("hint mismatch: %v", got.Hint)
	}
}

func TestServeCompressDecompressInProcess(t *testing.T) {
	// Run the worker protocol over in-memory pipes (both directions).
	in := sample()
	var req1, resp1 bytes.Buffer
	err := WriteRequest(&req1, Request{
		Op: "compress", Compressor: "sz_threadsafe",
		Options: map[string]string{"pressio:abs": "0.001"},
		Payload: in,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Serve(&req1, &resp1); err != nil {
		t.Fatal(err)
	}
	compressed, err := readData(&bufReader{&resp1})
	if err != nil {
		t.Fatal(err)
	}
	if compressed.ByteLen() == 0 || compressed.ByteLen() >= in.ByteLen() {
		t.Fatalf("compressed size %d", compressed.ByteLen())
	}
	var req2, resp2 bytes.Buffer
	err = WriteRequest(&req2, Request{
		Op: "decompress", Compressor: "sz_threadsafe",
		Payload: compressed,
		Hint:    core.NewEmpty(core.DTypeFloat32, 32, 32),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Serve(&req2, &resp2); err != nil {
		t.Fatal(err)
	}
	dec, err := readData(&bufReader{&resp2})
	if err != nil {
		t.Fatal(err)
	}
	orig := in.Float32s()
	got := dec.Float32s()
	for i := range orig {
		if math.Abs(float64(got[i]-orig[i])) > 0.001 {
			t.Fatalf("elem %d: bound violated through worker protocol", i)
		}
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	var out bytes.Buffer
	if err := Serve(bytes.NewReader([]byte("nope")), &out); err == nil {
		t.Fatal("expected protocol error")
	}
	var req bytes.Buffer
	if err := WriteRequest(&req, Request{Op: "explode", Compressor: "sz_threadsafe", Payload: sample()}); err != nil {
		t.Fatal(err)
	}
	if err := Serve(&req, &out); err == nil {
		t.Fatal("expected unknown-op error")
	}
}

func TestApplyStringOptions(t *testing.T) {
	c, err := core.NewCompressor("sz_threadsafe")
	if err != nil {
		t.Fatal(err)
	}
	err = ApplyStringOptions(c, map[string]string{
		"sz_threadsafe:abs_err_bound": "0.25",
		"pressio:lossless":            "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Options().GetFloat64("sz_threadsafe:abs_err_bound")
	if err != nil || got != 0.25 {
		t.Fatalf("bound not applied: %v %v", got, err)
	}
	// Unparseable value against an advertised numeric type fails loudly.
	if err := ApplyStringOptions(c, map[string]string{"sz_threadsafe:abs_err_bound": "tiny"}); err == nil {
		t.Fatal("expected parse error")
	}
}
