// Package zfp implements a transform-based error-bounded lossy compressor
// in the style of zfp (Lindstrom, TVCG'14): data is partitioned into 4^d
// blocks; each block is aligned to a common exponent, converted to fixed
// point, run through a separable integer lifting transform, reordered by
// total sequency, converted to negabinary, and coded one bit plane at a
// time with group testing. Fixed-rate, fixed-precision and fixed-accuracy
// modes are supported.
//
// Like the original, the transform works natively in Fortran dimension
// order (fastest dimension first); the plugin translates from the
// framework's C ordering. Partial blocks are padded, which is why passing a
// dimension smaller than the block size wastes bits — the inefficiency the
// paper quantifies in §V.
package zfp

import (
	"pressio/internal/bitstream"
)

// nbmask is the negabinary conversion mask (...101010).
const nbmask = 0xaaaaaaaaaaaaaaaa

// fwdLift applies the forward integer lifting transform to four elements at
// stride s, exactly as in the zfp reference implementation. The transform
// is only approximately invertible (the inverse loses at most one integer
// ulp), which the fixed-point guard bits absorb.
func fwdLift(p []int64, off, s int) {
	x, y, z, w := p[off], p[off+s], p[off+2*s], p[off+3*s]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[off], p[off+s], p[off+2*s], p[off+3*s] = x, y, z, w
}

// invLift applies the inverse lifting transform.
func invLift(p []int64, off, s int) {
	x, y, z, w := p[off], p[off+s], p[off+2*s], p[off+3*s]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[off], p[off+s], p[off+2*s], p[off+3*s] = x, y, z, w
}

// fwdXform applies the separable transform to a 4^d block (d = 1..3),
// lifting along x (stride 1), then y (stride 4), then z (stride 16).
func fwdXform(p []int64, d int) {
	switch d {
	case 1:
		fwdLift(p, 0, 1)
	case 2:
		for y := 0; y < 4; y++ {
			fwdLift(p, 4*y, 1)
		}
		for x := 0; x < 4; x++ {
			fwdLift(p, x, 4)
		}
	case 3:
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				fwdLift(p, 4*y+16*z, 1)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				fwdLift(p, x+16*z, 4)
			}
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				fwdLift(p, x+4*y, 16)
			}
		}
	}
}

// invXform applies the inverse separable transform (z, then y, then x).
func invXform(p []int64, d int) {
	switch d {
	case 1:
		invLift(p, 0, 1)
	case 2:
		for x := 0; x < 4; x++ {
			invLift(p, x, 4)
		}
		for y := 0; y < 4; y++ {
			invLift(p, 4*y, 1)
		}
	case 3:
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				invLift(p, x+4*y, 16)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				invLift(p, x+16*z, 4)
			}
		}
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				invLift(p, 4*y+16*z, 1)
			}
		}
	}
}

// perms holds the sequency-order permutations: coefficients sorted by total
// degree i+j+k so low-frequency (large) coefficients come first in the
// embedded coding.
var perms = [4][]int{nil, makePerm(1), makePerm(2), makePerm(3)}

func makePerm(d int) []int {
	size := 1 << (2 * d)
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	degree := func(i int) int {
		x := i & 3
		y := (i >> 2) & 3
		z := (i >> 4) & 3
		return x + y + z
	}
	// Insertion sort by (degree, index): stable, tiny input.
	for i := 1; i < size; i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j-1], idx[j]
			if degree(a) > degree(b) || (degree(a) == degree(b) && a > b) {
				idx[j-1], idx[j] = b, a
			} else {
				break
			}
		}
	}
	return idx
}

// int64 <-> negabinary.
func int2nb(x int64) uint64 { return (uint64(x) + nbmask) ^ nbmask }
func nb2int(u uint64) int64 { return int64((u ^ nbmask) - nbmask) }

// encodeInts performs the embedded bit-plane coding of the zfp reference
// (encode_ints), transliterated from the C loops: for each plane from the
// MSB, the first n bits (coefficients already known significant) are
// emitted verbatim, and the remainder is group-tested and unary run-length
// coded. It returns the number of bits written, never exceeding maxbits.
func encodeInts(w *bitstream.Writer, data []uint64, intprec, maxprec uint, maxbits uint64) uint64 {
	size := uint(len(data))
	kmin := uint(0)
	if intprec > maxprec {
		kmin = intprec - maxprec
	}
	bits := maxbits
	n := uint(0)
	for k := intprec; bits > 0 && k > kmin; {
		k--
		// Step 1: extract bit plane k.
		var x uint64
		for i := uint(0); i < size; i++ {
			x |= ((data[i] >> k) & 1) << i
		}
		// Step 2: encode the first n bits verbatim.
		m := uint64(n)
		if m > bits {
			m = bits
		}
		bits -= m
		w.WriteBits(x, uint(m))
		x >>= m
		// Step 3: group test + unary run-length encode the remainder.
		for n < size && bits > 0 {
			bits--
			if x == 0 {
				w.WriteBit(0)
				break
			}
			w.WriteBit(1)
			for n < size-1 && bits > 0 {
				bits--
				b := uint(x & 1)
				w.WriteBit(b)
				if b != 0 {
					break // the one is consumed by the outer shift
				}
				x >>= 1
				n++
			}
			x >>= 1
			n++
		}
	}
	return maxbits - bits
}

// decodeInts mirrors encodeInts.
func decodeInts(r *bitstream.Reader, data []uint64, intprec, maxprec uint, maxbits uint64) uint64 {
	size := uint(len(data))
	for i := range data {
		data[i] = 0
	}
	kmin := uint(0)
	if intprec > maxprec {
		kmin = intprec - maxprec
	}
	bits := maxbits
	n := uint(0)
	for k := intprec; bits > 0 && k > kmin; {
		k--
		m := uint64(n)
		if m > bits {
			m = bits
		}
		bits -= m
		x := r.ReadBits(uint(m))
		for n < size && bits > 0 {
			bits--
			if r.ReadBit() == 0 {
				break
			}
			for n < size-1 && bits > 0 {
				bits--
				if r.ReadBit() != 0 {
					break
				}
				n++
			}
			x |= uint64(1) << n
			n++
		}
		for i := uint(0); x != 0; i, x = i+1, x>>1 {
			data[i] |= (x & 1) << k
		}
	}
	return maxbits - bits
}
