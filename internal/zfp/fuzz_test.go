package zfp

import "testing"

// FuzzDecompressSlice drives the block decoder with arbitrary bytes: it
// must never panic, and accepted streams must match their header's shape.
func FuzzDecompressSlice(f *testing.F) {
	good, _ := CompressSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8}, []uint64{2, 4},
		Params{Mode: ModeFixedAccuracy, Tolerance: 0.1})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("ZFG1"))
	f.Fuzz(func(t *testing.T, stream []byte) {
		vals, dims, err := DecompressSlice[float32](stream)
		if err != nil {
			return
		}
		n := uint64(1)
		for _, d := range dims {
			n *= d
		}
		if uint64(len(vals)) != n {
			t.Fatalf("accepted stream with inconsistent shape: %d vs %v", len(vals), dims)
		}
	})
}
