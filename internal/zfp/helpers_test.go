package zfp

import "pressio/internal/bitstream"

func newTestWriter() *bitstream.Writer { return bitstream.NewWriter(256) }

func newTestReader(w *bitstream.Writer) *bitstream.Reader {
	return bitstream.NewReader(w.Bytes())
}
