package zfp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"pressio/internal/bitstream"
	"pressio/internal/core"
	"pressio/internal/trace"
)

// Version is the compressor version reported through the plugin interface.
const Version = "0.5.5-go"

// ErrCorrupt reports a malformed zfp stream.
var ErrCorrupt = errors.New("zfp: corrupt stream")

// Float constrains the element types the codec accepts.
type Float interface {
	~float32 | ~float64
}

// Mode selects the zfp compression mode.
type Mode int

const (
	// ModeFixedAccuracy bounds the pointwise absolute error by Tolerance.
	ModeFixedAccuracy Mode = iota
	// ModeFixedRate spends exactly Rate bits per value, giving fixed-size
	// blocks (random access, no error bound).
	ModeFixedRate
	// ModeFixedPrecision keeps Precision bit planes per block (bounds the
	// relative error).
	ModeFixedPrecision
)

// String names the mode as used in plugin options.
func (m Mode) String() string {
	switch m {
	case ModeFixedAccuracy:
		return "accuracy"
	case ModeFixedRate:
		return "rate"
	case ModeFixedPrecision:
		return "precision"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses a mode name.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "accuracy", "abs":
		return ModeFixedAccuracy, nil
	case "rate":
		return ModeFixedRate, nil
	case "precision":
		return ModeFixedPrecision, nil
	default:
		return 0, fmt.Errorf("%w: zfp mode %q", core.ErrInvalidOption, s)
	}
}

// Params configures a compression call.
type Params struct {
	Mode      Mode
	Rate      float64 // bits per value, ModeFixedRate
	Precision uint    // bit planes, ModeFixedPrecision
	Tolerance float64 // absolute error bound, ModeFixedAccuracy
}

// DefaultParams matches zfp's common default: fixed accuracy 1e-3.
func DefaultParams() Params { return Params{Mode: ModeFixedAccuracy, Tolerance: 1e-3} }

const (
	magic    = "ZFG1"
	ebits    = 12   // biased exponent field width
	ebias    = 1086 // covers the double exponent range after frexp
	hugeBits = uint64(1) << 60
)

// resolved holds the per-stream coding parameters derived from Params.
type resolved struct {
	maxbits uint64
	maxprec uint
	minexp  int
	pad     bool // fixed-rate: pad every block to maxbits
}

func resolve(p Params, intprec uint, blockSize int) (resolved, error) {
	switch p.Mode {
	case ModeFixedRate:
		// The constant clause restates the widest possible dynamic cap
		// (intprec <= 64) so the bound holds on its own.
		if p.Rate <= 0 || p.Rate > 128 || p.Rate > float64(intprec)*2 {
			return resolved{}, fmt.Errorf("zfp: rate %v out of range", p.Rate)
		}
		maxbits := uint64(p.Rate*float64(blockSize) + 0.5)
		if min := uint64(ebits + 2); maxbits < min {
			maxbits = min
		}
		return resolved{maxbits: maxbits, maxprec: intprec, minexp: -1075, pad: true}, nil
	case ModeFixedPrecision:
		if p.Precision == 0 || p.Precision > 64 || p.Precision > intprec {
			return resolved{}, fmt.Errorf("zfp: precision %d out of range (1..%d)", p.Precision, intprec)
		}
		return resolved{maxbits: hugeBits, maxprec: p.Precision, minexp: -1075}, nil
	case ModeFixedAccuracy:
		if p.Tolerance <= 0 || math.IsNaN(p.Tolerance) || math.IsInf(p.Tolerance, 0) {
			return resolved{}, fmt.Errorf("zfp: tolerance %v must be positive and finite", p.Tolerance)
		}
		minexp := int(math.Floor(math.Log2(p.Tolerance)))
		// Pin to the double exponent range: tolerance may be derived from
		// input values (value-range-relative bounds), so the exponent must
		// not be trusted to land in range on its own.
		if minexp < -1075 {
			minexp = -1075
		}
		if minexp > 1024 {
			minexp = 1024
		}
		return resolved{maxbits: hugeBits, maxprec: intprec, minexp: minexp}, nil
	default:
		return resolved{}, fmt.Errorf("zfp: unknown mode %d", p.Mode)
	}
}

// blockPrecision computes the number of bit planes to code for a block with
// maximum exponent emax, following the zfp reference precision() function.
// The 2*(d+1) guard planes absorb transform round-off so the tolerance
// holds.
func (r resolved) blockPrecision(emax, d int) uint {
	p := emax - r.minexp + 2*(d+1)
	if p < 0 {
		p = 0
	}
	if uint(p) > r.maxprec {
		return r.maxprec
	}
	return uint(p)
}

// geometry maps C-order dims onto the codec's Fortran-order spatial extents
// (x fastest) plus an outer batch count for rank > 3.
// maxGeomElems bounds the declared element count (and so every extent and
// partial product), keeping extent arithmetic overflow-free.
const maxGeomElems = 1 << 42

func geometry(dims []uint64) (outer, sx, sy, sz, d int, err error) {
	if len(dims) == 0 {
		return 0, 0, 0, 0, 0, fmt.Errorf("zfp: %w: no dimensions", core.ErrInvalidDims)
	}
	total := uint64(1)
	for _, v := range dims {
		if v == 0 {
			return 0, 0, 0, 0, 0, fmt.Errorf("zfp: %w: zero extent", core.ErrInvalidDims)
		}
		if v > maxGeomElems || total > maxGeomElems/v {
			return 0, 0, 0, 0, 0, fmt.Errorf("zfp: %w: declared geometry %v exceeds %d elements", core.ErrInvalidDims, dims, uint64(maxGeomElems))
		}
		total *= v
	}
	outer, sx, sy, sz = 1, 1, 1, 1
	switch len(dims) {
	case 1:
		sx, d = int(dims[0]), 1
	case 2:
		sy, sx, d = int(dims[0]), int(dims[1]), 2
	case 3:
		sz, sy, sx, d = int(dims[0]), int(dims[1]), int(dims[2]), 3
	default:
		for _, v := range dims[:len(dims)-3] {
			outer *= int(v)
		}
		sz, sy, sx, d = int(dims[len(dims)-3]), int(dims[len(dims)-2]), int(dims[len(dims)-1]), 3
	}
	if outer > maxGeomElems || sx > maxGeomElems || sy > maxGeomElems || sz > maxGeomElems {
		return 0, 0, 0, 0, 0, fmt.Errorf("zfp: %w: extent exceeds %d", core.ErrInvalidDims, uint64(maxGeomElems))
	}
	return outer, sx, sy, sz, d, nil
}

func intprecOf[T Float]() uint {
	var zero T
	if _, ok := any(zero).(float32); ok {
		return 32
	}
	return 64
}

//pressio:hotpath measured by the perf ledger
// CompressSlice compresses vals shaped dims (C order) and returns the
// self-describing stream.
func CompressSlice[T Float](vals []T, dims []uint64, p Params) ([]byte, error) {
	outer, sx, sy, sz, d, err := geometry(dims)
	if err != nil {
		return nil, err
	}
	n := outer * sx * sy * sz
	if n != len(vals) {
		return nil, fmt.Errorf("zfp: %w: dims %v describe %d elements, have %d",
			core.ErrInvalidDims, dims, n, len(vals))
	}
	intprec := intprecOf[T]()
	blockSize := 1 << (2 * d)
	res, err := resolve(p, intprec, blockSize)
	if err != nil {
		return nil, err
	}

	var hdr []byte
	hdr = append(hdr, magic...)
	if intprec == 32 {
		hdr = append(hdr, 1)
	} else {
		hdr = append(hdr, 2)
	}
	hdr = append(hdr, byte(len(dims)))
	for _, v := range dims {
		hdr = binary.AppendUvarint(hdr, v)
	}
	hdr = append(hdr, byte(p.Mode))
	hdr = binary.AppendUvarint(hdr, res.maxbits)
	hdr = binary.AppendUvarint(hdr, uint64(res.maxprec))
	hdr = binary.AppendUvarint(hdr, uint64(res.minexp+2048))

	w := bitstream.NewWriter(n / 2)
	fblock := make([]float64, blockSize)
	iblock := make([]int64, blockSize)
	ublock := make([]uint64, blockSize)

	// The gather/transform/encode sweep is zfp's entire hot loop; one stage
	// span suffices to attribute codec time in a pipeline trace.
	sp := trace.Start("zfp.encode_blocks")
	bx := (sx + 3) / 4
	by := (sy + 3) / 4
	bz := (sz + 3) / 4
	sliceLen := sx * sy * sz
	for o := 0; o < outer; o++ {
		base := vals[o*sliceLen : (o+1)*sliceLen]
		for z := 0; z < bz; z++ {
			for y := 0; y < by; y++ {
				for x := 0; x < bx; x++ {
					gather(base, fblock, x*4, y*4, z*4, sx, sy, sz, d)
					encodeBlock(w, fblock, iblock, ublock, intprec, d, res)
				}
			}
		}
	}
	sp.End()
	return append(hdr, w.Bytes()...), nil
}

// clamp caps an index to the last valid position, replicating the edge value
// for partial blocks.
func clamp(v, hi int) int {
	if v >= hi {
		return hi - 1
	}
	return v
}

// gather copies a 4^d block starting at (x0,y0,z0) into dst, replicating
// edge values for partial blocks (the source of the padding inefficiency
// for extents smaller than 4).
func gather[T Float](src []T, dst []float64, x0, y0, z0, sx, sy, sz, d int) {
	switch d {
	case 1:
		for i := 0; i < 4; i++ {
			dst[i] = float64(src[clamp(x0+i, sx)])
		}
	case 2:
		for j := 0; j < 4; j++ {
			yy := clamp(y0+j, sy)
			for i := 0; i < 4; i++ {
				dst[i+4*j] = float64(src[yy*sx+clamp(x0+i, sx)])
			}
		}
	case 3:
		for k := 0; k < 4; k++ {
			zz := clamp(z0+k, sz)
			for j := 0; j < 4; j++ {
				yy := clamp(y0+j, sy)
				row := (zz*sy + yy) * sx
				for i := 0; i < 4; i++ {
					dst[i+4*j+16*k] = float64(src[row+clamp(x0+i, sx)])
				}
			}
		}
	}
}

// scatter writes a decoded block back, skipping padded lanes.
func scatter[T Float](dst []T, src []float64, x0, y0, z0, sx, sy, sz, d int) {
	switch d {
	case 1:
		for i := 0; i < 4 && x0+i < sx; i++ {
			dst[x0+i] = T(src[i])
		}
	case 2:
		for j := 0; j < 4 && y0+j < sy; j++ {
			for i := 0; i < 4 && x0+i < sx; i++ {
				dst[(y0+j)*sx+x0+i] = T(src[i+4*j])
			}
		}
	case 3:
		for k := 0; k < 4 && z0+k < sz; k++ {
			for j := 0; j < 4 && y0+j < sy; j++ {
				row := ((z0+k)*sy + y0 + j) * sx
				for i := 0; i < 4 && x0+i < sx; i++ {
					dst[row+x0+i] = T(src[i+4*j+16*k])
				}
			}
		}
	}
}

func maxExponent(block []float64) (int, bool) {
	maxAbs := 0.0
	for _, v := range block {
		a := math.Abs(v)
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 || math.IsInf(maxAbs, 0) || math.IsNaN(maxAbs) {
		return 0, false
	}
	_, e := math.Frexp(maxAbs)
	return e, true
}

// encodeBlock codes one gathered block.
func encodeBlock(w *bitstream.Writer, fblock []float64, iblock []int64, ublock []uint64,
	intprec uint, d int, res resolved) {
	emax, nonzero := maxExponent(fblock)
	var used uint64
	if !nonzero {
		w.WriteBit(0)
		used = 1
	} else {
		w.WriteBit(1)
		w.WriteBits(uint64(emax+ebias), ebits)
		used = 1 + ebits
		// Fixed point conversion with two guard bits.
		scale := math.Ldexp(1, int(intprec)-2-emax)
		for i, v := range fblock {
			iblock[i] = int64(scale * v)
		}
		fwdXform(iblock, d)
		perm := perms[d]
		if intprec == 32 {
			for i, pi := range perm {
				ublock[i] = uint64((uint32(int32(iblock[pi])) + 0xaaaaaaaa) ^ 0xaaaaaaaa)
			}
		} else {
			for i, pi := range perm {
				ublock[i] = int2nb(iblock[pi])
			}
		}
		budget := res.maxbits - used
		used += encodeInts(w, ublock, intprec, res.blockPrecision(emax, d), budget)
	}
	if res.pad {
		for used < res.maxbits {
			chunk := res.maxbits - used
			if chunk > 64 {
				chunk = 64
			}
			w.WriteBits(0, uint(chunk))
			used += chunk
		}
	}
}

// decodeBlock mirrors encodeBlock.
func decodeBlock(r *bitstream.Reader, fblock []float64, iblock []int64, ublock []uint64,
	intprec uint, d int, res resolved) {
	var used uint64
	if r.ReadBit() == 0 {
		for i := range fblock {
			fblock[i] = 0
		}
		used = 1
	} else {
		emax := int(r.ReadBits(ebits)) - ebias
		used = 1 + ebits
		budget := res.maxbits - used
		used += decodeInts(r, ublock, intprec, res.blockPrecision(emax, d), budget)
		perm := perms[d]
		if intprec == 32 {
			for i, pi := range perm {
				iblock[pi] = int64(int32((uint32(ublock[i]) ^ 0xaaaaaaaa) - 0xaaaaaaaa))
			}
		} else {
			for i, pi := range perm {
				iblock[pi] = nb2int(ublock[i])
			}
		}
		invXform(iblock, d)
		scale := math.Ldexp(1, emax+2-int(intprec))
		for i := range fblock {
			fblock[i] = scale * float64(iblock[i])
		}
	}
	if res.pad {
		for used < res.maxbits {
			chunk := res.maxbits - used
			if chunk > 64 {
				chunk = 64
			}
			r.ReadBits(uint(chunk))
			used += chunk
		}
	}
}

// Header describes a compressed stream.
type Header struct {
	DType core.DType
	Dims  []uint64
	Mode  Mode
}

// ParseHeader reads the stream header, returning it and the offset of the
// block payload.
func ParseHeader(stream []byte) (Header, resolved, int, error) {
	var h Header
	if len(stream) < 7 || string(stream[:4]) != magic {
		return h, resolved{}, 0, ErrCorrupt
	}
	switch stream[4] {
	case 1:
		h.DType = core.DTypeFloat32
	case 2:
		h.DType = core.DTypeFloat64
	default:
		return h, resolved{}, 0, ErrCorrupt
	}
	rank := int(stream[5])
	if rank == 0 || rank > 16 {
		return h, resolved{}, 0, ErrCorrupt
	}
	pos := 6
	h.Dims = make([]uint64, rank)
	total := uint64(1)
	for i := range h.Dims {
		v, sz := binary.Uvarint(stream[pos:])
		if sz <= 0 || v == 0 || v > 1<<40 {
			return h, resolved{}, 0, ErrCorrupt
		}
		h.Dims[i] = v
		total *= v
		if total > 1<<44 {
			return h, resolved{}, 0, ErrCorrupt
		}
		pos += sz
	}
	if pos >= len(stream) {
		return h, resolved{}, 0, ErrCorrupt
	}
	h.Mode = Mode(stream[pos])
	if h.Mode != ModeFixedAccuracy && h.Mode != ModeFixedRate && h.Mode != ModeFixedPrecision {
		return h, resolved{}, 0, ErrCorrupt
	}
	pos++
	var res resolved
	maxbits, sz := binary.Uvarint(stream[pos:])
	if sz <= 0 || maxbits == 0 {
		return h, resolved{}, 0, ErrCorrupt
	}
	// Fixed-rate streams pad every block out to maxbits, so an unbounded
	// value turns decoding into a near-infinite spin. Genuine encoders emit
	// at most 2*intprec bits per value over a <=64-value block and at least
	// ebits+2 bits total (the floor resolve enforces, which also keeps the
	// per-block budget subtraction from underflowing).
	if h.Mode == ModeFixedRate && (maxbits < ebits+2 || maxbits > 2*64*64) {
		return h, resolved{}, 0, ErrCorrupt
	}
	pos += sz
	maxprec, sz := binary.Uvarint(stream[pos:])
	if sz <= 0 || maxprec > 64 {
		return h, resolved{}, 0, ErrCorrupt
	}
	pos += sz
	minexpBiased, sz := binary.Uvarint(stream[pos:])
	if sz <= 0 || minexpBiased > 4096 {
		return h, resolved{}, 0, ErrCorrupt
	}
	pos += sz
	res.maxbits = maxbits
	res.maxprec = uint(maxprec)
	res.minexp = int(minexpBiased) - 2048
	res.pad = h.Mode == ModeFixedRate
	return h, res, pos, nil
}

//pressio:hotpath measured by the perf ledger
// DecompressSlice decodes a stream produced by CompressSlice.
func DecompressSlice[T Float](stream []byte) ([]T, []uint64, error) {
	h, res, pos, err := ParseHeader(stream)
	if err != nil {
		return nil, nil, err
	}
	want := core.DTypeFloat32
	if intprecOf[T]() == 64 {
		want = core.DTypeFloat64
	}
	if h.DType != want {
		return nil, nil, fmt.Errorf("zfp: %w: stream holds %s", core.ErrInvalidDType, h.DType)
	}
	outer, sx, sy, sz, d, err := geometry(h.Dims)
	if err != nil {
		return nil, nil, err
	}
	n := outer * sx * sy * sz
	// Every block costs at least one bit (the zero-block flag), so the
	// block count of a genuine stream is bounded by the payload's bit
	// length — rejecting 20-byte "bombs" that declare gigavoxel shapes.
	blocks := uint64(outer) * ((uint64(sx) + 3) / 4) *
		((uint64(sy) + 3) / 4) * ((uint64(sz) + 3) / 4)
	if blocks > uint64(len(stream)-pos)*8+64 {
		return nil, nil, fmt.Errorf("%w: %d blocks declared by a %d byte stream",
			ErrCorrupt, blocks, len(stream)-pos)
	}
	intprec := intprecOf[T]()
	blockSize := 1 << (2 * d)
	out := make([]T, n)
	r := bitstream.NewReader(stream[pos:])
	fblock := make([]float64, blockSize)
	iblock := make([]int64, blockSize)
	ublock := make([]uint64, blockSize)
	sp := trace.Start("zfp.decode_blocks")
	bx := (sx + 3) / 4
	by := (sy + 3) / 4
	bz := (sz + 3) / 4
	sliceLen := sx * sy * sz
	for o := 0; o < outer; o++ {
		base := out[o*sliceLen : (o+1)*sliceLen]
		for z := 0; z < bz; z++ {
			for y := 0; y < by; y++ {
				for x := 0; x < bx; x++ {
					decodeBlock(r, fblock, iblock, ublock, intprec, d, res)
					scatter(base, fblock, x*4, y*4, z*4, sx, sy, sz, d)
				}
			}
		}
	}
	sp.End()
	return out, h.Dims, nil
}
