package zfp

import (
	"fmt"

	"pressio/internal/core"
)

// plugin adapts the codec to the framework. The generic error-bound options
// map onto fixed-accuracy mode: "pressio:abs" sets the tolerance directly
// and "pressio:rel" resolves against the input's value range at compress
// time, the translation work native clients would otherwise hand-roll.
type plugin struct {
	mode      Mode
	rate      float64
	precision uint
	tolerance float64
	relBound  float64 // when > 0, resolve tolerance from the value range
}

// Option keys the zfp plugin owns, declared once so spellings cannot drift.
const (
	keyMode      = "zfp:mode"
	keyRate      = "zfp:rate"
	keyPrecision = "zfp:precision"
	keyAccuracy  = "zfp:accuracy"
)

func init() {
	core.RegisterCompressor("zfp", func() core.CompressorPlugin {
		return &plugin{mode: ModeFixedAccuracy, tolerance: 1e-3, rate: 16, precision: 32}
	})
}

func (p *plugin) Prefix() string  { return "zfp" }
func (p *plugin) Version() string { return Version }

func (p *plugin) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keyMode, p.mode.String())
	o.SetValue(keyRate, p.rate)
	o.SetValue(keyPrecision, uint64(p.precision))
	o.SetValue(keyAccuracy, p.tolerance)
	if p.relBound > 0 {
		o.SetValue(core.KeyRel, p.relBound)
		o.SetType(core.KeyAbs, core.OptDouble)
	} else {
		o.SetValue(core.KeyAbs, p.tolerance)
		o.SetType(core.KeyRel, core.OptDouble)
	}
	return o
}

func (p *plugin) SetOptions(o *core.Options) error {
	if s, err := o.GetString(keyMode); err == nil {
		m, err := ParseMode(s)
		if err != nil {
			return err
		}
		p.mode = m
	}
	if v, err := o.GetFloat64(keyRate); err == nil {
		p.rate = v
		if !o.Has(keyMode) {
			p.mode = ModeFixedRate
		}
	}
	if v, err := o.GetUint64(keyPrecision); err == nil {
		p.precision = uint(v)
		if !o.Has(keyMode) {
			p.mode = ModeFixedPrecision
		}
	}
	if v, err := o.GetFloat64(keyAccuracy); err == nil {
		p.tolerance = v
		p.relBound = 0
		if !o.Has(keyMode) {
			p.mode = ModeFixedAccuracy
		}
	}
	if v, err := o.GetFloat64(core.KeyAbs); err == nil {
		p.mode = ModeFixedAccuracy
		p.tolerance = v
		p.relBound = 0
	}
	if v, err := o.GetFloat64(core.KeyRel); err == nil {
		p.mode = ModeFixedAccuracy
		p.relBound = v
	}
	return nil
}

func (p *plugin) CheckOptions(o *core.Options) error {
	clone := *p
	if err := clone.SetOptions(o); err != nil {
		return err
	}
	if _, err := resolve(clone.params(nil), 32, 64); err != nil && clone.relBound <= 0 {
		return fmt.Errorf("%w: %v", core.ErrInvalidOption, err)
	}
	if clone.relBound < 0 {
		return fmt.Errorf("%w: pressio:rel must be positive", core.ErrInvalidOption)
	}
	return nil
}

func (p *plugin) Configuration() *core.Options {
	cfg := core.StandardConfiguration(core.ThreadSafetyMultiple, "stable", Version, false)
	cfg.SetValue("zfp:modes", []string{"accuracy", "rate", "precision"})
	return cfg
}

// params resolves the plugin state into codec Params for the given input
// (needed to resolve value-range-relative bounds).
func (p *plugin) params(in *core.Data) Params {
	prm := Params{Mode: p.mode, Rate: p.rate, Precision: p.precision, Tolerance: p.tolerance}
	if p.mode == ModeFixedAccuracy && p.relBound > 0 && in != nil {
		lo, hi := core.ValueRange(in)
		prm.Tolerance = p.relBound * (hi - lo)
		if prm.Tolerance <= 0 {
			prm.Tolerance = 1e-38
		}
	}
	return prm
}

func (p *plugin) CompressImpl(in, out *core.Data) error {
	prm := p.params(in)
	var stream []byte
	var err error
	switch in.DType() {
	case core.DTypeFloat32:
		stream, err = CompressSlice(in.Float32s(), in.Dims(), prm)
	case core.DTypeFloat64:
		stream, err = CompressSlice(in.Float64s(), in.Dims(), prm)
	default:
		return fmt.Errorf("%w: zfp supports float32/float64, got %s", core.ErrInvalidDType, in.DType())
	}
	if err != nil {
		return err
	}
	out.Become(core.NewBytes(stream))
	return nil
}

func (p *plugin) DecompressImpl(in, out *core.Data) error {
	h, _, _, err := ParseHeader(in.Bytes())
	if err != nil {
		return err
	}
	switch h.DType {
	case core.DTypeFloat32:
		vals, dims, err := DecompressSlice[float32](in.Bytes())
		if err != nil {
			return err
		}
		out.Become(core.FromFloat32s(vals, dims...))
	case core.DTypeFloat64:
		vals, dims, err := DecompressSlice[float64](in.Bytes())
		if err != nil {
			return err
		}
		out.Become(core.FromFloat64s(vals, dims...))
	default:
		return ErrCorrupt
	}
	return nil
}

func (p *plugin) Clone() core.CompressorPlugin {
	clone := *p
	return &clone
}
