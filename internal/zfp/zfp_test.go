package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pressio/internal/core"
)

func TestLiftNearInverse(t *testing.T) {
	// The zfp lifting transform is only approximately invertible: the
	// inverse may lose one integer ulp per element, absorbed by the guard
	// bits. Verify the reconstruction error is tightly bounded.
	f := func(a, b, c, d int32) bool {
		p := []int64{int64(a), int64(b), int64(c), int64(d)}
		orig := append([]int64(nil), p...)
		fwdLift(p, 0, 1)
		invLift(p, 0, 1)
		for i := range p {
			if diff := p[i] - orig[i]; diff < -4 || diff > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationsValid(t *testing.T) {
	for d := 1; d <= 3; d++ {
		perm := perms[d]
		size := 1 << (2 * d)
		if len(perm) != size {
			t.Fatalf("d=%d: perm size %d", d, len(perm))
		}
		seen := make([]bool, size)
		for _, p := range perm {
			if p < 0 || p >= size || seen[p] {
				t.Fatalf("d=%d: invalid perm %v", d, perm)
			}
			seen[p] = true
		}
		// Sequency order: total degree must be nondecreasing.
		deg := func(i int) int { return i&3 + (i>>2)&3 + (i>>4)&3 }
		for i := 1; i < size; i++ {
			if deg(perm[i]) < deg(perm[i-1]) {
				t.Fatalf("d=%d: perm not ordered by degree", d)
			}
		}
	}
}

func TestNegabinaryRoundTrip(t *testing.T) {
	f := func(x int64) bool { return nb2int(int2nb(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for _, x := range []int64{0, 1, -1, math.MaxInt64 / 2, math.MinInt64 / 2} {
		if nb2int(int2nb(x)) != x {
			t.Fatalf("negabinary failed for %d", x)
		}
	}
}

func TestEncodeIntsLosslessWhenUnbounded(t *testing.T) {
	// With full precision and unlimited bits the bit-plane coder is
	// lossless.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]uint64, 16)
		for i := range data {
			data[i] = rng.Uint64() >> uint(rng.Intn(60))
		}
		w := newTestWriter()
		encodeInts(w, data, 64, 64, hugeBits)
		r := newTestReader(w)
		got := make([]uint64, 16)
		decodeInts(r, got, 64, 64, hugeBits)
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func smoothField(nz, ny, nx int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, nz*ny*nx)
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				out[i] = float32(50*math.Sin(float64(x)/9)*math.Cos(float64(y)/7) +
					10*math.Sin(float64(z)/5) + 0.05*rng.NormFloat64())
				i++
			}
		}
	}
	return out
}

func maxErr32(a, b []float32) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > worst {
			worst = d
		}
	}
	return worst
}

func TestAccuracyModeBoundHolds(t *testing.T) {
	vals := smoothField(17, 21, 33, 1) // deliberately non-multiple-of-4 dims
	dims := []uint64{17, 21, 33}
	for _, tol := range []float64{10, 1, 0.1, 1e-3, 1e-5} {
		stream, err := CompressSlice(vals, dims, Params{Mode: ModeFixedAccuracy, Tolerance: tol})
		if err != nil {
			t.Fatalf("tol=%g: %v", tol, err)
		}
		dec, outDims, err := DecompressSlice[float32](stream)
		if err != nil {
			t.Fatalf("tol=%g: %v", tol, err)
		}
		if len(outDims) != 3 || outDims[2] != 33 {
			t.Fatalf("dims %v", outDims)
		}
		if worst := maxErr32(vals, dec); worst > tol {
			t.Fatalf("tol=%g: max error %g exceeds tolerance", tol, worst)
		}
	}
}

func TestAccuracyModeFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 40*40)
	for i := range vals {
		vals[i] = math.Exp(math.Sin(float64(i)/100)) * (1 + 0.001*rng.NormFloat64())
	}
	dims := []uint64{40, 40}
	tol := 1e-7
	stream, err := CompressSlice(vals, dims, Params{Mode: ModeFixedAccuracy, Tolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecompressSlice[float64](stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Abs(vals[i]-dec[i]) > tol {
			t.Fatalf("elem %d: error %g > %g", i, math.Abs(vals[i]-dec[i]), tol)
		}
	}
}

func TestAccuracyBoundPropertyRandomBlocks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(200)
		vals := make([]float32, n)
		scale := math.Pow(10, float64(rng.Intn(10)-5))
		for i := range vals {
			vals[i] = float32(rng.NormFloat64() * scale)
		}
		tol := scale * math.Pow(10, float64(-rng.Intn(5)))
		stream, err := CompressSlice(vals, []uint64{uint64(n)}, Params{Mode: ModeFixedAccuracy, Tolerance: tol})
		if err != nil {
			return false
		}
		dec, _, err := DecompressSlice[float32](stream)
		if err != nil {
			return false
		}
		return maxErr32(vals, dec) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedRateSizeExact(t *testing.T) {
	vals := smoothField(16, 16, 16, 3)
	dims := []uint64{16, 16, 16}
	for _, rate := range []float64{4, 8, 16} {
		stream, err := CompressSlice(vals, dims, Params{Mode: ModeFixedRate, Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		blocks := 4 * 4 * 4
		wantBits := uint64(rate*64+0.5) * uint64(blocks)
		gotBits := uint64(len(stream)) * 8 // includes header + final byte padding
		slack := uint64(64*8 + 64)
		if gotBits < wantBits || gotBits > wantBits+slack {
			t.Fatalf("rate %g: got %d bits, want about %d", rate, gotBits, wantBits)
		}
		if _, _, err := DecompressSlice[float32](stream); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFixedRateQualityImprovesWithRate(t *testing.T) {
	vals := smoothField(16, 16, 16, 4)
	dims := []uint64{16, 16, 16}
	var prev float64 = math.Inf(1)
	for _, rate := range []float64{2, 8, 24} {
		stream, err := CompressSlice(vals, dims, Params{Mode: ModeFixedRate, Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		dec, _, err := DecompressSlice[float32](stream)
		if err != nil {
			t.Fatal(err)
		}
		worst := maxErr32(vals, dec)
		if worst > prev+1e-12 {
			t.Fatalf("rate %g: error %g worse than lower rate (%g)", rate, worst, prev)
		}
		prev = worst
	}
	if prev > 1e-3 {
		t.Fatalf("24 bits/value should be near-exact, error %g", prev)
	}
}

func TestFixedPrecisionMode(t *testing.T) {
	vals := smoothField(8, 12, 16, 5)
	dims := []uint64{8, 12, 16}
	stream, err := CompressSlice(vals, dims, Params{Mode: ModeFixedPrecision, Precision: 24})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecompressSlice[float32](stream)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, float64(v))
		hi = math.Max(hi, float64(v))
	}
	if worst := maxErr32(vals, dec); worst > (hi-lo)*1e-3 {
		t.Fatalf("24-plane precision too lossy: %g", worst)
	}
}

func TestZeroBlocksCompressTiny(t *testing.T) {
	vals := make([]float32, 64*64)
	stream, err := CompressSlice(vals, []uint64{64, 64}, Params{Mode: ModeFixedAccuracy, Tolerance: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) > 200 {
		t.Fatalf("all-zero field should compress to ~1 bit/block, got %d bytes", len(stream))
	}
	dec, _, err := DecompressSlice[float32](stream)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range dec {
		if v != 0 {
			t.Fatal("zeros not preserved")
		}
	}
}

func TestPaddingInefficiency(t *testing.T) {
	// §V: passing an A×B×1 shape forces 3-D blocks that are 15/16 padding;
	// the same bytes as A×B 2-D compress substantially better.
	vals := smoothField(1, 64, 64, 6)
	p := Params{Mode: ModeFixedAccuracy, Tolerance: 1e-3}
	as3d, err := CompressSlice(vals, []uint64{64, 64, 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	as2d, err := CompressSlice(vals, []uint64{64, 64}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(as2d) >= len(as3d) {
		t.Fatalf("A×B×1 should be less efficient than A×B: 3d=%d 2d=%d", len(as3d), len(as2d))
	}
}

func TestHigherRankBatch(t *testing.T) {
	vals := smoothField(3*8, 8, 8, 7)
	stream, err := CompressSlice(vals, []uint64{3, 8, 8, 8}, Params{Mode: ModeFixedAccuracy, Tolerance: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	dec, dims, err := DecompressSlice[float32](stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 4 {
		t.Fatalf("dims %v", dims)
	}
	if worst := maxErr32(vals, dec); worst > 0.01 {
		t.Fatalf("max error %g", worst)
	}
}

func TestInvalidParams(t *testing.T) {
	vals := []float32{1, 2, 3, 4}
	bad := []Params{
		{Mode: ModeFixedAccuracy, Tolerance: 0},
		{Mode: ModeFixedAccuracy, Tolerance: -2},
		{Mode: ModeFixedAccuracy, Tolerance: math.NaN()},
		{Mode: ModeFixedRate, Rate: 0},
		{Mode: ModeFixedRate, Rate: -4},
		{Mode: ModeFixedPrecision, Precision: 0},
		{Mode: ModeFixedPrecision, Precision: 99},
		{Mode: Mode(42)},
	}
	for i, p := range bad {
		if _, err := CompressSlice(vals, []uint64{4}, p); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestCorruptStreams(t *testing.T) {
	vals := smoothField(4, 8, 8, 8)
	stream, err := CompressSlice(vals, []uint64{4, 8, 8}, Params{Mode: ModeFixedAccuracy, Tolerance: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 4, 6} {
		if _, _, err := DecompressSlice[float32](stream[:cut]); err == nil {
			t.Fatalf("truncation at %d: expected error", cut)
		}
	}
	if _, _, err := DecompressSlice[float64](stream); err == nil {
		t.Fatal("expected dtype mismatch")
	}
}

func TestPluginRoundTrip(t *testing.T) {
	vals := smoothField(12, 12, 12, 9)
	in := core.FromFloat32s(vals, 12, 12, 12)
	c, err := core.NewCompressor("zfp")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetOptions(core.NewOptions().SetValue(core.KeyAbs, 0.01)); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 12, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	if worst := maxErr32(vals, dec.Float32s()); worst > 0.01 {
		t.Fatalf("max error %g", worst)
	}
}

func TestPluginModes(t *testing.T) {
	vals := smoothField(8, 8, 8, 10)
	in := core.FromFloat32s(vals, 8, 8, 8)
	c, _ := core.NewCompressor("zfp")
	// Rate mode through zfp:rate.
	if err := c.SetOptions(core.NewOptions().
		SetValue("zfp:mode", "rate").SetValue("zfp:rate", 8.0)); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	if got := comp.ByteLen(); got > uint64(len(vals))+200 {
		t.Fatalf("rate 8 should be ~1 byte/value, got %d bytes", got)
	}
	// Precision mode.
	if err := c.SetOptions(core.NewOptions().
		SetValue("zfp:mode", "precision").SetValue("zfp:precision", uint64(20))); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Compress(c, in); err != nil {
		t.Fatal(err)
	}
	// Value-range relative bound resolves against the input range.
	if err := c.SetOptions(core.NewOptions().SetValue(core.KeyRel, 1e-4)); err != nil {
		t.Fatal(err)
	}
	comp, err = core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := core.ValueRange(in)
	if worst := maxErr32(vals, dec.Float32s()); worst > 1e-4*(hi-lo) {
		t.Fatalf("rel bound violated: %g > %g", worst, 1e-4*(hi-lo))
	}
}

func BenchmarkCompressAccuracy(b *testing.B) {
	vals := smoothField(64, 64, 64, 1)
	dims := []uint64{64, 64, 64}
	p := Params{Mode: ModeFixedAccuracy, Tolerance: 1e-3}
	b.SetBytes(int64(len(vals) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressSlice(vals, dims, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressAccuracy(b *testing.B) {
	vals := smoothField(64, 64, 64, 1)
	stream, err := CompressSlice(vals, []uint64{64, 64, 64}, Params{Mode: ModeFixedAccuracy, Tolerance: 1e-3})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(vals) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecompressSlice[float32](stream); err != nil {
			b.Fatal(err)
		}
	}
}
