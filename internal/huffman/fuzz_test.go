package huffman

import "testing"

// FuzzDecode drives the canonical Huffman decoder with arbitrary bytes: no
// panics, and accepted streams must re-encode consistently.
func FuzzDecode(f *testing.F) {
	good, _ := Encode([]uint32{0, 1, 2, 1, 0, 3, 3, 3}, 8)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		syms, alphabet, err := Decode(data)
		if err != nil {
			return
		}
		for _, s := range syms {
			if s >= alphabet {
				t.Fatalf("decoded symbol %d outside alphabet %d", s, alphabet)
			}
		}
		// An accepted stream's symbols must survive a fresh round trip.
		enc, err := Encode(syms, alphabet)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, _, err := Decode(enc)
		if err != nil || len(back) != len(syms) {
			t.Fatalf("re-decode failed: %v", err)
		}
		for i := range syms {
			if back[i] != syms[i] {
				t.Fatalf("re-decode mismatch at %d", i)
			}
		}
	})
}
