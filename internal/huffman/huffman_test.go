package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, syms []uint32, alphabet uint32) {
	t.Helper()
	enc, err := Encode(syms, alphabet)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, alpha, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if alpha != alphabet {
		t.Fatalf("alphabet: got %d want %d", alpha, alphabet)
	}
	if len(dec) != len(syms) {
		t.Fatalf("length: got %d want %d", len(dec), len(syms))
	}
	for i := range syms {
		if dec[i] != syms[i] {
			t.Fatalf("symbol %d: got %d want %d", i, dec[i], syms[i])
		}
	}
}

func TestEmpty(t *testing.T)        { roundTrip(t, nil, 16) }
func TestSingleSymbol(t *testing.T) { roundTrip(t, []uint32{7, 7, 7, 7, 7}, 16) }
func TestTwoSymbols(t *testing.T)   { roundTrip(t, []uint32{0, 1, 0, 0, 1, 1, 0}, 2) }

func TestUniformAlphabet(t *testing.T) {
	syms := make([]uint32, 4096)
	for i := range syms {
		syms[i] = uint32(i % 256)
	}
	roundTrip(t, syms, 256)
}

func TestSkewedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	syms := make([]uint32, 10000)
	for i := range syms {
		// Geometric-ish skew typical of quantization codes.
		v := uint32(0)
		for rng.Float64() < 0.5 && v < 63 {
			v++
		}
		syms[i] = v
	}
	roundTrip(t, syms, 64)
	// Skewed data must compress well below 6 bits/symbol.
	enc, _ := Encode(syms, 64)
	if len(enc) > 10000*4/8 {
		t.Fatalf("skewed stream poorly compressed: %d bytes", len(enc))
	}
}

func TestLargeAlphabetSparse(t *testing.T) {
	syms := []uint32{65000, 1, 65000, 2, 65000, 65000, 1}
	roundTrip(t, syms, 65536)
}

func TestPropertyRandomStreams(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := uint32(1 + rng.Intn(1000))
		n := rng.Intn(2000)
		syms := make([]uint32, n)
		for i := range syms {
			syms[i] = uint32(rng.Intn(int(alphabet)))
		}
		enc, err := Encode(syms, alphabet)
		if err != nil {
			return false
		}
		dec, _, err := Decode(enc)
		if err != nil || len(dec) != n {
			return false
		}
		for i := range syms {
			if dec[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolOutsideAlphabet(t *testing.T) {
	if _, err := Encode([]uint32{9}, 4); err == nil {
		t.Fatal("expected error for out-of-alphabet symbol")
	}
}

func TestCorruptStreams(t *testing.T) {
	enc, err := Encode([]uint32{1, 2, 3, 1, 2, 3, 3, 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations must error or return wrong-but-safe results, never panic.
	for cut := 0; cut < len(enc); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on truncation at %d: %v", cut, r)
				}
			}()
			_, _, _ = Decode(enc[:cut])
		}()
	}
	// Garbage header.
	if _, _, err := Decode([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("expected error for garbage input")
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]uint32, 1<<16)
	for i := range syms {
		v := uint32(0)
		for rng.Float64() < 0.6 && v < 255 {
			v++
		}
		syms[i] = v
	}
	b.SetBytes(int64(len(syms) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(syms, 256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]uint32, 1<<16)
	for i := range syms {
		v := uint32(0)
		for rng.Float64() < 0.6 && v < 255 {
			v++
		}
		syms[i] = v
	}
	enc, err := Encode(syms, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(syms) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
