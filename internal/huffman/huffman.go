// Package huffman implements a canonical Huffman entropy coder over dense
// unsigned integer alphabets. It is the encoding stage of the sz and mgard
// compressor plugins (quantization-code streams) and is also exposed as a
// standalone lossless compressor plugin.
//
// The encoded form is self-contained: a header carries the alphabet size
// and the canonical code lengths, so decoding needs no side channel.
package huffman

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"pressio/internal/bitstream"
)

// ErrCorrupt reports a malformed huffman stream.
var ErrCorrupt = errors.New("huffman: corrupt stream")

// maxCodeLen bounds canonical code lengths; counts are scaled if a longer
// code would be produced (cannot happen for < 2^32 total count but guards
// adversarial inputs).
const maxCodeLen = 57

// maxAlphabet bounds the symbol alphabet on both sides of the codec: the
// decoder refuses larger length tables, so the encoder refuses to emit
// streams it could never read back.
const maxAlphabet = 1 << 28

// buildLengths computes Huffman code lengths from symbol frequencies using
// the standard two-queue method over sorted leaf weights.
func buildLengths(freq []uint64) []uint8 {
	n := len(freq)
	lengths := make([]uint8, n)
	type node struct {
		weight      uint64
		left, right int32 // indices into nodes; -1 for leaves
		sym         int32
	}
	// A Huffman tree over k leaves has exactly 2k-1 nodes.
	nodes := make([]node, 0, 2*n)
	order := make([]int, 0, n)
	for s, f := range freq {
		if f > 0 {
			order = append(order, s)
		}
	}
	switch len(order) {
	case 0:
		return lengths
	case 1:
		lengths[order[0]] = 1
		return lengths
	}
	sort.Slice(order, func(i, j int) bool { return freq[order[i]] < freq[order[j]] })
	for _, s := range order {
		nodes = append(nodes, node{weight: freq[s], left: -1, right: -1, sym: int32(s)})
	}
	// Two-queue merge: leaves (already sorted) and internal nodes (created
	// in nondecreasing weight order).
	leafQ := 0
	internal := make([]int32, 0, len(order))
	intQ := 0
	pop := func() int32 {
		if leafQ < len(order) && (intQ >= len(internal) || nodes[leafQ].weight <= nodes[internal[intQ]].weight) {
			leafQ++
			return int32(leafQ - 1)
		}
		intQ++
		return internal[intQ-1]
	}
	remaining := len(order)
	for remaining > 1 {
		a := pop()
		b := pop()
		nodes = append(nodes, node{weight: nodes[a].weight + nodes[b].weight, left: a, right: b, sym: -1})
		internal = append(internal, int32(len(nodes)-1))
		remaining--
	}
	// Depth-first assign lengths.
	root := internal[len(internal)-1]
	type item struct {
		idx   int32
		depth uint8
	}
	stack := make([]item, 0, len(nodes))
	stack = append(stack, item{root, 0})
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[it.idx]
		if nd.left < 0 {
			d := it.depth
			if d == 0 {
				d = 1
			}
			lengths[nd.sym] = d
			continue
		}
		stack = append(stack, item{nd.left, it.depth + 1}, item{nd.right, it.depth + 1})
	}
	return lengths
}

// canonicalCodes assigns canonical codes (numerically increasing with
// length, then symbol) from code lengths. Codes are returned bit-reversed so
// they can be emitted LSB-first.
func canonicalCodes(lengths []uint8) ([]uint64, error) {
	maxLen := uint8(0)
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	if maxLen == 0 {
		return make([]uint64, len(lengths)), nil
	}
	if maxLen > maxCodeLen {
		return nil, fmt.Errorf("%w: code length %d exceeds %d", ErrCorrupt, maxLen, maxCodeLen)
	}
	countByLen := make([]uint64, maxLen+1)
	for _, l := range lengths {
		if l > 0 {
			countByLen[l]++
		}
	}
	firstCode := make([]uint64, maxLen+2)
	code := uint64(0)
	for l := uint8(1); l <= maxLen; l++ {
		code = (code + countByLen[l-1]) << 1
		firstCode[l] = code
	}
	// Kraft check to reject invalid length tables early.
	kraft := uint64(0)
	for l := uint8(1); l <= maxLen; l++ {
		kraft += countByLen[l] << (maxLen - l)
	}
	if kraft > 1<<maxLen {
		return nil, fmt.Errorf("%w: over-subscribed code", ErrCorrupt)
	}
	next := append([]uint64(nil), firstCode...)
	codes := make([]uint64, len(lengths))
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		codes[s] = reverseBits(next[l], uint(l))
		next[l]++
	}
	return codes, nil
}

func reverseBits(v uint64, n uint) uint64 {
	var out uint64
	for i := uint(0); i < n; i++ {
		out = out<<1 | (v>>i)&1
	}
	return out
}

//pressio:hotpath measured by the perf ledger
// Encode compresses the symbol stream. alphabet is the exclusive upper bound
// on symbol values; callers typically pass maxSymbol+1.
func Encode(symbols []uint32, alphabet uint32) ([]byte, error) {
	if alphabet > maxAlphabet {
		return nil, fmt.Errorf("huffman: alphabet %d exceeds %d", alphabet, uint32(maxAlphabet))
	}
	freq := make([]uint64, alphabet)
	for _, s := range symbols {
		if s >= alphabet {
			return nil, fmt.Errorf("huffman: symbol %d outside alphabet %d", s, alphabet)
		}
		freq[s]++
	}
	lengths := buildLengths(freq)
	codes, err := canonicalCodes(lengths)
	if err != nil {
		return nil, err
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(alphabet))
	hdr = binary.AppendUvarint(hdr, uint64(len(symbols)))
	hdr = append(hdr, encodeLengths(lengths)...)
	w := bitstream.NewWriter(len(symbols) / 2)
	for _, s := range symbols {
		w.WriteBits(codes[s], uint(lengths[s]))
	}
	body := w.Bytes()
	out := make([]byte, 0, len(hdr)+len(body)+4)
	out = binary.AppendUvarint(out, uint64(len(hdr)))
	out = append(out, hdr...)
	out = append(out, body...)
	return out, nil
}

// encodeLengths run-length encodes the code length table: pairs of
// (length byte, uvarint run).
func encodeLengths(lengths []uint8) []byte {
	// Worst case (all runs of length 1) is two bytes per entry plus the
	// leading count uvarint.
	out := make([]byte, 0, 2*len(lengths)+10)
	out = binary.AppendUvarint(out, uint64(len(lengths)))
	i := 0
	for i < len(lengths) {
		j := i
		for j < len(lengths) && lengths[j] == lengths[i] {
			j++
		}
		out = append(out, lengths[i])
		out = binary.AppendUvarint(out, uint64(j-i))
		i = j
	}
	return out
}

func decodeLengths(b []byte) ([]uint8, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > maxAlphabet {
		return nil, 0, ErrCorrupt
	}
	pos := sz
	lengths := make([]uint8, 0, n)
	for uint64(len(lengths)) < n {
		if pos >= len(b) {
			return nil, 0, ErrCorrupt
		}
		l := b[pos]
		pos++
		run, sz := binary.Uvarint(b[pos:])
		if sz <= 0 || run > maxAlphabet || uint64(len(lengths))+run > n {
			return nil, 0, ErrCorrupt
		}
		pos += sz
		for k := uint64(0); k < run; k++ {
			lengths = append(lengths, l)
		}
	}
	return lengths, pos, nil
}

// decodeTable is a length-indexed canonical decoding structure.
type decodeTable struct {
	maxLen    uint8
	firstCode []uint64 // canonical first code per length (MSB-first value)
	offset    []uint64 // index into symsByLen of first symbol per length
	symsByLen []uint32
}

func buildDecodeTable(lengths []uint8) (*decodeTable, error) {
	// Validate every length into a fresh table: codeLens elements are
	// proven <= maxCodeLen here, so they can index the per-length arrays.
	codeLens := make([]uint8, len(lengths))
	maxLen := uint8(0)
	for i, l := range lengths {
		if l > maxCodeLen {
			return nil, ErrCorrupt
		}
		codeLens[i] = l
		if l > maxLen {
			maxLen = l
		}
	}
	countByLen := make([]uint64, maxLen+1)
	for _, l := range codeLens {
		if l > 0 {
			countByLen[l]++
		}
	}
	t := &decodeTable{maxLen: maxLen,
		firstCode: make([]uint64, maxLen+2),
		offset:    make([]uint64, maxLen+2)}
	code := uint64(0)
	total := uint64(0)
	for l := uint8(1); l <= maxLen; l++ {
		code = (code + countByLen[l-1]) << 1
		t.firstCode[l] = code
		t.offset[l] = total
		total += countByLen[l]
	}
	t.symsByLen = make([]uint32, total)
	next := make([]uint64, maxLen+1)
	for s, l := range codeLens {
		if l == 0 {
			continue
		}
		t.symsByLen[t.offset[l]+next[l]] = uint32(s)
		next[l]++
	}
	return t, nil
}

//pressio:hotpath measured by the perf ledger
// Decode reverses Encode. It returns the symbol stream and the alphabet
// size recorded in the header.
func Decode(data []byte) ([]uint32, uint32, error) {
	hdrLen, sz := binary.Uvarint(data)
	if sz <= 0 || uint64(sz)+hdrLen > uint64(len(data)) {
		return nil, 0, ErrCorrupt
	}
	hdr := data[sz : sz+int(hdrLen)]
	body := data[sz+int(hdrLen):]
	alphabet64, o := binary.Uvarint(hdr)
	if o <= 0 || alphabet64 > 1<<28 {
		return nil, 0, ErrCorrupt
	}
	hdr = hdr[o:]
	count, o := binary.Uvarint(hdr)
	if o <= 0 {
		return nil, 0, ErrCorrupt
	}
	hdr = hdr[o:]
	lengths, _, err := decodeLengths(hdr)
	if err != nil {
		return nil, 0, err
	}
	if uint64(len(lengths)) != alphabet64 {
		return nil, 0, ErrCorrupt
	}
	table, err := buildDecodeTable(lengths)
	if err != nil {
		return nil, 0, err
	}
	// Every symbol costs at least one bit, so the count cannot exceed the
	// body's bit length; and a table with no codes cannot decode anything.
	if count > uint64(len(body))*8+64 || count > 1<<32 {
		return nil, 0, ErrCorrupt
	}
	if count > 0 && table.maxLen == 0 {
		return nil, 0, ErrCorrupt
	}
	out := make([]uint32, count)
	r := bitstream.NewReader(body)
	for i := range out {
		sym, err := table.decodeOne(r)
		if err != nil {
			return nil, 0, err
		}
		out[i] = sym
	}
	return out, uint32(alphabet64), nil
}

func (t *decodeTable) decodeOne(r *bitstream.Reader) (uint32, error) {
	if t.maxLen == 0 {
		return 0, ErrCorrupt
	}
	code := uint64(0)
	for l := uint8(1); l <= t.maxLen; l++ {
		code = code<<1 | uint64(r.ReadBit())
		count := t.offset[l+1] - t.offset[l]
		if l == t.maxLen {
			count = uint64(len(t.symsByLen)) - t.offset[l]
		}
		if count > 0 && code >= t.firstCode[l] && code-t.firstCode[l] < count {
			idx := t.offset[l] + (code - t.firstCode[l])
			if idx < uint64(len(t.symsByLen)) {
				return t.symsByLen[idx], nil
			}
			return 0, ErrCorrupt
		}
	}
	return 0, ErrCorrupt
}
