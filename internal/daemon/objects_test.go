package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pressio/internal/store"
)

// objReq performs one HTTP request against the object surface.
func objReq(t *testing.T, method, url string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestObjectStoreEndToEnd(t *testing.T) {
	storeDir := t.TempDir()
	d, drain, done := startTestDaemon(t, func(c *Config) { c.StoreDir = storeDir })
	base := "http://" + d.Addr()

	// The store component starts ahead of the listener and gates readiness.
	comps := strings.Join(d.runtime.Components(), ",")
	if comps != "store,listener" {
		t.Fatalf("lifecycle order %q, want store before listener", comps)
	}
	if resp := objReq(t, "GET", base+"/readyz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after start: %d", resp.StatusCode)
	}

	_, raw := sampleFloat32(64)
	put := objReq(t, "PUT", base+"/objects/sim/run1?dims=64&dtype=float32&filter=flate&chunk_rows=16", raw, nil)
	if put.StatusCode != http.StatusCreated {
		t.Fatalf("put: %d %s", put.StatusCode, readAll(t, put))
	}
	var info store.ObjectInfo
	if err := json.Unmarshal(readAll(t, put), &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "sim/run1" || info.Chunks != 4 {
		t.Fatalf("put info: %+v", info)
	}

	// Full read: byte-exact, shape in headers.
	get := objReq(t, "GET", base+"/objects/sim/run1", nil, nil)
	if get.StatusCode != http.StatusOK || get.Header.Get(headerDType) != "float32" || get.Header.Get(headerDims) != "64" {
		t.Fatalf("get: %d dtype=%q dims=%q", get.StatusCode, get.Header.Get(headerDType), get.Header.Get(headerDims))
	}
	if got := readAll(t, get); !bytes.Equal(got, raw) {
		t.Fatal("full read not byte-exact")
	}

	// Hyperslab read: rows 16..31 of the dim-0 axis.
	rows := objReq(t, "GET", base+"/objects/sim/run1?rows=16,16", nil, nil)
	if rows.StatusCode != http.StatusOK || rows.Header.Get(headerDims) != "16" {
		t.Fatalf("rows: %d dims=%q", rows.StatusCode, rows.Header.Get(headerDims))
	}
	if got := readAll(t, rows); !bytes.Equal(got, raw[16*4:32*4]) {
		t.Fatal("row read not byte-exact")
	}

	// HTTP range read: bytes 8..23 → 206 with Content-Range.
	rng := objReq(t, "GET", base+"/objects/sim/run1", nil, map[string]string{"Range": "bytes=8-23"})
	if rng.StatusCode != http.StatusPartialContent {
		t.Fatalf("range: %d", rng.StatusCode)
	}
	if cr := rng.Header.Get("Content-Range"); cr != fmt.Sprintf("bytes 8-23/%d", len(raw)) {
		t.Fatalf("content-range: %q", cr)
	}
	if got := readAll(t, rng); !bytes.Equal(got, raw[8:24]) {
		t.Fatal("range read not byte-exact")
	}

	// Listing.
	list := objReq(t, "GET", base+"/objects", nil, nil)
	var listing struct {
		Objects []store.ObjectInfo `json:"objects"`
	}
	if err := json.Unmarshal(readAll(t, list), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Objects) != 1 || listing.Objects[0].Name != "sim/run1" {
		t.Fatalf("listing: %+v", listing)
	}

	// Error shapes: unknown name 404, malformed shape 400, bad rows 400.
	if resp := objReq(t, "GET", base+"/objects/nope", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing object: %d", resp.StatusCode)
	}
	if resp := objReq(t, "PUT", base+"/objects/x?dims=64", raw, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("shapeless put: %d", resp.StatusCode)
	}
	if resp := objReq(t, "GET", base+"/objects/sim/run1?rows=banana", nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad rows: %d", resp.StatusCode)
	}

	// A second object that survives the restart below.
	if resp := objReq(t, "PUT", base+"/objects/keep?dims=16&dtype=float32", raw[:64], nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put keep: %d", resp.StatusCode)
	}

	// Delete: 204, then 404 on the name, idempotently rejected.
	if resp := objReq(t, "DELETE", base+"/objects/sim/run1", nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if resp := objReq(t, "DELETE", base+"/objects/sim/run1", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %d", resp.StatusCode)
	}

	// Drain (checkpoints and closes the store), restart on the same
	// directory: the acknowledged state is all there.
	drain()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	d2, _, _ := startTestDaemon(t, func(c *Config) { c.StoreDir = storeDir })
	base2 := "http://" + d2.Addr()
	if resp := objReq(t, "GET", base2+"/objects/keep", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("keep after restart: %d", resp.StatusCode)
	} else if got := readAll(t, resp); !bytes.Equal(got, raw[:64]) {
		t.Fatal("keep not byte-exact after restart")
	}
	if resp := objReq(t, "GET", base2+"/objects/sim/run1", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted object resurrected: %d", resp.StatusCode)
	}
}

func TestObjectQuarantineAnswers409(t *testing.T) {
	storeDir := t.TempDir()
	d, _, _ := startTestDaemon(t, func(c *Config) { c.StoreDir = storeDir })
	base := "http://" + d.Addr()

	_, raw := sampleFloat32(32)
	put := objReq(t, "PUT", base+"/objects/rot?dims=32&dtype=float32&chunk_rows=8", raw, nil)
	var info store.ObjectInfo
	if err := json.Unmarshal(readAll(t, put), &info); err != nil {
		t.Fatal(err)
	}

	// Structural bit rot: truncate the segment so the scrubber condemns
	// every chunk, then read through the API.
	seg := filepath.Join(storeDir, "objects", info.Segment)
	if err := os.Truncate(seg, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := d.store.ScrubOnce(); err != nil {
		t.Fatal(err)
	}
	resp := objReq(t, "GET", base+"/objects/rot", nil, nil)
	if resp.StatusCode != http.StatusConflict || resp.Header.Get(headerError) != "quarantined" {
		t.Fatalf("quarantined read: %d %q", resp.StatusCode, resp.Header.Get(headerError))
	}
	resp.Body.Close()
	// The listing still shows the object, flagged.
	list := objReq(t, "GET", base+"/objects", nil, nil)
	var listing struct {
		Objects []store.ObjectInfo `json:"objects"`
	}
	if err := json.Unmarshal(readAll(t, list), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Objects) != 1 || len(listing.Objects[0].QuarantinedChunks) != 4 {
		t.Fatalf("listing after quarantine: %+v", listing)
	}
}
