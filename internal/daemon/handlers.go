package daemon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pressio/internal/cluster"
	"pressio/internal/core"
	"pressio/internal/obslog"
	"pressio/internal/service"
	"pressio/internal/trace"
)

// Response headers. Every endpoint sets an explicit Content-Type, and the
// health/metrics endpoints are marked no-store: a cached readiness answer or
// a cached metrics scrape is actively misleading.
const (
	headerRequestID  = "X-Pressio-Request-Id"
	headerCompressor = "X-Pressio-Compressor"
	headerError      = "X-Pressio-Error"
	textContentType  = "text/plain; charset=utf-8"
)

func setNoStore(w http.ResponseWriter, contentType string) {
	h := w.Header()
	h.Set("Content-Type", contentType)
	h.Set("Cache-Control", "no-store")
}

// errKind classifies an error the way writeError will report it, so logging
// and the HTTP shape agree.
func errKind(err error) (kind string, status int) {
	switch {
	case errors.Is(err, core.ErrShed):
		kind = "shed"
		if errors.Is(err, service.ErrBreakerOpen) {
			kind = "breaker-open"
		}
		return kind, http.StatusServiceUnavailable
	case errors.Is(err, core.ErrInvalidOption):
		return "bad-request", http.StatusBadRequest
	default:
		return "fault", http.StatusInternalServerError
	}
}

// writeError maps an error to its HTTP shape. Overload rejections — anything
// wrapping core.ErrShed, including open-breaker rejections — become typed
// 503s with Retry-After, so clients can tell "back off" from "broken".
func writeError(w http.ResponseWriter, err error) int {
	kind, status := errKind(err)
	switch status {
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "1")
		w.Header().Set(headerError, kind)
	case http.StatusInternalServerError:
		w.Header().Set(headerError, kind)
	}
	http.Error(w, err.Error(), status)
	return status
}

// parseShape reads the dims and dtype query parameters every data-plane
// request must carry (compressed streams are not self-describing).
func parseShape(q map[string][]string) (core.DType, []uint64, error) {
	get := func(k string) string {
		if v := q[k]; len(v) > 0 {
			return v[0]
		}
		return ""
	}
	dimsParam, dtypeParam := get("dims"), get("dtype")
	if dimsParam == "" || dtypeParam == "" {
		return 0, nil, errors.New("dims and dtype query parameters are required")
	}
	dtype, err := core.ParseDType(dtypeParam)
	if err != nil {
		return 0, nil, err
	}
	parts := strings.Split(dimsParam, ",")
	dims := make([]uint64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return 0, nil, fmt.Errorf("bad dims %q: %v", dimsParam, err)
		}
		dims = append(dims, v)
	}
	return dtype, dims, nil
}

//pressio:hotpath measured by the perf ledger
// handleData is the shared data-plane path: request trace setup, admission,
// pool checkout, codec call, response. Admission weight is the declared
// Content-Length, so the bulkhead budget bounds resident request bytes, not
// request count.
//
// Every request gets a W3C-compatible trace id (propagated from an inbound
// traceparent header when present, minted otherwise), returned in the
// X-Pressio-Request-Id and Traceparent response headers. The per-stage span
// tree is retrievable afterwards from /tracez?id=<id>.
func (d *Daemon) handleData(w http.ResponseWriter, r *http.Request, decompress bool) {
	op := "compress"
	if decompress {
		op = "decompress"
	}
	inbound, _ := ParseRequestID(r)
	rt := trace.NewRequestTrace(inbound)
	root := rt.Start("daemon.request",
		trace.Str("op", op),
		trace.Str("path", r.URL.Path),
		trace.Int("content_length", r.ContentLength))
	w.Header().Set(headerRequestID, rt.TraceID())
	w.Header().Set("Traceparent", rt.Traceparent())

	begin := time.Now()
	status := http.StatusOK
	d.started.Add(1)
	defer func() {
		d.finished.Add(1)
		if d.draining.Load() {
			trace.CounterAdd(trace.CtrDaemonDrained, 1)
		}
		root.End()
		dur := time.Since(begin)
		trace.ObserveDuration(trace.HistDaemonRequest, dur)
		d.traces.add(rt, r.Method, r.URL.Path, status, begin, dur)
		if d.cfg.SlowRequest > 0 && dur >= d.cfg.SlowRequest {
			obslog.Default().Warnw("slow_request",
				obslog.Str("request_id", rt.TraceID()),
				obslog.Str("op", op),
				obslog.Str("path", r.URL.Path),
				obslog.Int("status", int64(status)),
				obslog.Dur("latency", dur),
				obslog.Dur("threshold", d.cfg.SlowRequest))
		}
	}()
	trace.CounterAdd(trace.CtrDaemonRequests, 1)

	// The request trace rides the context through the admission/codec stack.
	ctx := trace.WithRequestTrace(r.Context(), rt)
	if d.cfg.ReqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.cfg.ReqTimeout)
		defer cancel()
	}

	dtype, dims, err := parseShape(r.URL.Query())
	if err != nil {
		status = http.StatusBadRequest
		http.Error(w, err.Error(), status)
		return
	}

	bh := d.compress
	if decompress {
		bh = d.decompress
	}
	sp := root.Child("daemon.admission", trace.Str("bulkhead", op))
	release, err := bh.Acquire(ctx, r.ContentLength)
	sp.End()
	if err != nil {
		status = writeError(w, err)
		kind, _ := errKind(err)
		obslog.Default().Warnw("request.shed",
			obslog.Str("request_id", rt.TraceID()),
			obslog.Str("op", op),
			obslog.Str("kind", kind))
		return
	}
	defer release()

	sp = root.Child("daemon.read_body")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, d.cfg.MemBudget))
	sp.End()
	if err != nil {
		status = http.StatusRequestEntityTooLarge
		http.Error(w, err.Error(), status)
		return
	}

	var outBytes []byte
	if d.route != nil {
		// Router mode: the request fans out across the ring (hedging and
		// failover inside). The request trace rides ctx, so peer hops carry
		// this request's trace id in their Traceparent headers.
		sp = root.Child("daemon.route", trace.Int("bytes_in", int64(len(body))))
		if decompress {
			outBytes, err = d.route.Decompress(ctx, dtype, dims, body)
		} else {
			outBytes, err = d.route.Compress(ctx, dtype, dims, body)
		}
		sp.End()
	} else {
		var out *core.Data
		if out, err = d.localData(ctx, root, decompress, dtype, dims, body); err == nil {
			outBytes = out.Bytes()
		}
	}
	if err != nil {
		status = writeError(w, err)
		kind, _ := errKind(err)
		lvl, event := obslog.Error, "request.fault"
		if status == http.StatusServiceUnavailable {
			lvl, event = obslog.Warn, "request.shed"
		}
		obslog.Default().Event(lvl, event,
			obslog.Str("request_id", rt.TraceID()),
			obslog.Str("op", op),
			obslog.Str("kind", kind),
			obslog.Err(err))
		return
	}

	sp = root.Child("daemon.write_response", trace.Int("bytes_out", int64(len(outBytes))))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerCompressor, d.name)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(outBytes)
	sp.End()
}

// localData runs one operation against the local compressor pool with the
// single-node span structure (pool_wait, then the codec call) parented
// under parent. It serves both the direct path and, via localBytes, the
// router's whole-fleet-unreachable degradation path.
func (d *Daemon) localData(ctx context.Context, parent *trace.RequestSpan, decompress bool, dtype core.DType, dims []uint64, body []byte) (*core.Data, error) {
	op := "compress"
	if decompress {
		op = "decompress"
	}
	sp := parent.Child("daemon.pool_wait")
	var comp *core.Compressor
	select {
	case comp = <-d.pool:
		sp.End()
	case <-ctx.Done():
		sp.End()
		return nil, fmt.Errorf("daemon: %w: context ended waiting for a worker: %v", core.ErrShed, ctx.Err())
	}
	defer func() { d.pool <- comp }()

	sp = parent.Child("daemon."+op, trace.Int("bytes_in", int64(len(body))))
	defer sp.End()
	if decompress {
		out := core.NewEmpty(dtype, dims...)
		if err := comp.Decompress(core.NewBytes(body), out); err != nil {
			return nil, err
		}
		return out, nil
	}
	in, err := core.NewMove(dtype, body, dims...)
	if err != nil {
		// A payload/shape mismatch is the caller's fault: classify it so
		// writeError answers 400, not 500.
		return nil, fmt.Errorf("%w: %v", core.ErrInvalidOption, err)
	}
	out := core.NewEmpty(core.DTypeByte, 0)
	if err := comp.Compress(in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// localBytes adapts localData to the router's LocalFunc degradation hook.
func (d *Daemon) localBytes(ctx context.Context, op string, dtype core.DType, dims []uint64, body []byte) ([]byte, error) {
	sp := trace.RequestTraceFrom(ctx).Start("daemon.local_fallback", trace.Str("op", op))
	out, err := d.localData(ctx, sp, op == cluster.OpDecompress, dtype, dims, body)
	sp.End()
	if err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// ParseRequestID extracts the W3C trace id from an inbound request: the
// traceparent header when valid, else an X-Pressio-Request-Id carrying a
// bare 32-hex trace id, else "".
func ParseRequestID(r *http.Request) (string, bool) {
	if id, ok := trace.ParseTraceparent(r.Header.Get("Traceparent")); ok {
		return id, true
	}
	if id := r.Header.Get(headerRequestID); id != "" {
		// NewRequestTrace validates; pass it through and let a malformed id
		// be replaced there.
		return id, true
	}
	return "", false
}

// handleHealthz is liveness: the process is up, even while draining.
func (d *Daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	setNoStore(w, textContentType)
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: false from the instant a drain begins (so
// rolling restarts route new work elsewhere while in-flight work finishes)
// and false while any lifecycle component reports unready — in router mode
// that aggregates the health checker's first sweep and the router's
// can-serve state.
func (d *Daemon) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	setNoStore(w, textContentType)
	if !d.ready.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if !d.runtime.Ready() {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// gauges samples the daemon's live state for exposition: bulkhead queue
// depths and resident bytes, free pool slots, plus runtime and build info.
func (d *Daemon) gauges() []trace.Gauge {
	gs := []trace.Gauge{
		{Name: "service.bulkhead.compress.queue_depth", Help: "requests queued at the compress bulkhead", Value: float64(d.compress.QueueDepth())},
		{Name: "service.bulkhead.compress.used_bytes", Help: "declared bytes admitted through the compress bulkhead", Value: float64(d.compress.UsedBytes())},
		{Name: "service.bulkhead.decompress.queue_depth", Help: "requests queued at the decompress bulkhead", Value: float64(d.decompress.QueueDepth())},
		{Name: "service.bulkhead.decompress.used_bytes", Help: "declared bytes admitted through the decompress bulkhead", Value: float64(d.decompress.UsedBytes())},
		{Name: "service.daemon.pool_free", Help: "idle compressor clones in the pool", Value: float64(len(d.pool))},
		{Name: "service.daemon.ready", Help: "1 while serving, 0 while draining", Value: b2f(d.ready.Load())},
	}
	gs = append(gs, trace.RuntimeGauges()...)
	gs = append(gs, trace.BuildInfoGauge(service.Version))
	return gs
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// handleMetricz exposes the whole telemetry registry. The default rendering
// is Prometheus text exposition format (version 0.0.4): counters as _total
// series, latency histograms as cumulative _bucket/_sum/_count series in
// seconds, plus live daemon gauges, Go runtime stats, and build info.
// ?format=json keeps the machine-readable JSON rendering for tooling that
// predates the exposition format.
func (d *Daemon) handleMetricz(w http.ResponseWriter, r *http.Request) {
	gs := d.gauges()
	if r.URL.Query().Get("format") == "json" {
		setNoStore(w, "application/json")
		_ = trace.WriteMetricsJSON(w, gs...)
		return
	}
	setNoStore(w, trace.PromContentType)
	_ = trace.WritePrometheus(w, gs...)
}
