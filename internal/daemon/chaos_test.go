package daemon

import (
	"bytes"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosDaemonDrainUnderLoadWithFaults is the pressiod acceptance
// criterion: concurrent clients hammer a daemon whose child compressor
// injects faults, SIGTERM (here: the drain trigger) lands mid-load, and the
// daemon must (a) answer every request it started — zero dropped in-flight
// work, (b) type every overload rejection as a 503 with X-Pressio-Error,
// and (c) finish the drain cleanly within the deadline.
func TestChaosDaemonDrainUnderLoadWithFaults(t *testing.T) {
	const drainTimeout = 10 * time.Second
	d, drain, done := startTestDaemon(t, func(c *Config) {
		c.Compressor = "faultinject"
		c.Breaker = true
		c.Guard = true
		c.Concurrency = 4
		c.MemBudget = 1 << 20
		c.QueueDepth = 4
		c.LameDuck = 50 * time.Millisecond
		c.DrainTimeout = drainTimeout
		c.Options = []string{
			"faultinject:compressor=noop",
			"faultinject:error_rate=0.2",
			"faultinject:seed=42",
			"guard:max_retries=0",
			"breaker:window=32",
			"breaker:failure_threshold=8",
			"breaker:open_ms=50", // trips and recovers repeatedly under load
		}
	})
	base := "http://" + d.Addr()
	payload := make([]byte, 4096)

	var (
		ok, fault, shed, other atomic.Int64
		untyped, early         atomic.Int64
		stop                   atomic.Bool
		drainStarted           atomic.Bool
		wg                     sync.WaitGroup
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for !stop.Load() {
				resp, err := client.Post(base+"/compress?dims=1024&dtype=float32",
					"application/octet-stream", bytes.NewReader(payload))
				if err != nil {
					// Connection errors are the expected fate of requests
					// arriving after the listener closes; before the drain
					// begins they would mean dropped work.
					if !drainStarted.Load() {
						early.Add(1)
					}
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusInternalServerError:
					fault.Add(1)
				case http.StatusServiceUnavailable:
					shed.Add(1)
					if resp.Header.Get("X-Pressio-Error") == "" {
						untyped.Add(1)
					}
				default:
					other.Add(1)
				}
			}
		}()
	}

	time.Sleep(200 * time.Millisecond) // let load build
	drainStarted.Store(true)
	begin := time.Now()
	go drain()
	err := <-done
	took := time.Since(begin)
	stop.Store(true)
	wg.Wait()

	if err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	if took > drainTimeout {
		t.Fatalf("drain took %s, deadline %s", took, drainTimeout)
	}
	if s, f := d.started.Load(), d.finished.Load(); s != f {
		t.Fatalf("dropped in-flight requests: %d started, %d finished", s, f)
	}
	if early.Load() != 0 {
		t.Fatalf("%d connection errors before drain start", early.Load())
	}
	if untyped.Load() != 0 {
		t.Fatalf("%d 503s without X-Pressio-Error", untyped.Load())
	}
	if other.Load() != 0 {
		t.Fatalf("%d responses with unexpected status", other.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded; the chaos run never exercised the happy path")
	}
	if fault.Load() == 0 {
		t.Fatal("no injected fault surfaced; error_rate=0.2 should produce some 500s")
	}
	t.Logf("chaos: ok=%d fault=%d shed=%d drain=%s", ok.Load(), fault.Load(), shed.Load(), took)
}
