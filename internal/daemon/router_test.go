// Router-mode tests: the daemon's HTTP surface must be indistinguishable
// between single-node and router topologies — same success shape, same typed
// 503s with Retry-After and X-Pressio-Error, same trace-id continuity.
package daemon

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"pressio/internal/trace"
)

// deadAddr reserves an ephemeral port and releases it: an address that
// refuses connections for the rest of the test.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

func postData(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestRouterModeRoundTripsThroughShards(t *testing.T) {
	shardA, _, _ := startTestDaemon(t, func(c *Config) { c.Compressor = "flate" })
	shardB, _, _ := startTestDaemon(t, func(c *Config) { c.Compressor = "flate" })
	router, _, _ := startTestDaemon(t, func(c *Config) {
		c.Compressor = "flate"
		c.RouterPeers = shardA.Addr() + "," + shardB.Addr()
		c.RouterHealthInterval = 50 * time.Millisecond
		c.PeerTimeout = 5 * time.Second
	})
	base := "http://" + router.Addr()
	_, payload := sampleFloat32(2048)

	resp := postData(t, base+"/compress?dims=2048&dtype=float32", payload)
	compressed, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router compress status %d: %s", resp.StatusCode, compressed)
	}
	if resp.Header.Get("X-Pressio-Request-Id") == "" {
		t.Fatal("router response missing request id header")
	}
	if len(compressed) == 0 || bytes.Equal(compressed, payload) {
		t.Fatal("router did not return a compressed payload")
	}

	resp = postData(t, base+"/decompress?dims=2048&dtype=float32", compressed)
	restored, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router decompress status %d: %s", resp.StatusCode, restored)
	}
	if !bytes.Equal(restored, payload) {
		t.Fatal("routed round trip did not restore the payload")
	}
	if trace.CounterValue(trace.CtrClusterRequests) < 2 {
		t.Fatalf("cluster.requests = %d, want >= 2", trace.CounterValue(trace.CtrClusterRequests))
	}
	if trace.CounterValue(trace.CtrClusterLocalFallback) != 0 {
		t.Fatal("healthy fleet degraded to local compression")
	}

	// Router readiness aggregates the lifecycle runtime: health checker
	// swept, router serving, listener bound.
	rz, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	_ = rz.Body.Close()
	if rz.StatusCode != http.StatusOK {
		t.Fatalf("router /readyz status %d", rz.StatusCode)
	}
}

// TestRouterMode503MatchesSingleNodeShape: with the whole fleet unreachable
// and local degradation disabled, the router's rejection must be the exact
// typed 503 a single node sheds with — Retry-After and X-Pressio-Error so
// clients cannot tell the topologies apart.
func TestRouterMode503MatchesSingleNodeShape(t *testing.T) {
	router, _, _ := startTestDaemon(t, func(c *Config) {
		c.RouterPeers = deadAddr(t)
		c.RouterNoLocal = true
		c.RouterHealthInterval = 50 * time.Millisecond
		c.PeerTimeout = 500 * time.Millisecond
	})
	base := "http://" + router.Addr()
	_, payload := sampleFloat32(64)

	resp := postData(t, base+"/compress?dims=64&dtype=float32", payload)
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fleet-unreachable status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want %q", got, "1")
	}
	if got := resp.Header.Get("X-Pressio-Error"); got != "shed" {
		t.Fatalf("X-Pressio-Error = %q, want %q", got, "shed")
	}
	if !strings.Contains(string(body), "no replica reachable") {
		t.Fatalf("shed body %q does not explain the fleet state", body)
	}

	// The health checker's first sweep classified the dead peer, so
	// readiness reports the daemon cannot serve.
	rz, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rzBody, _ := io.ReadAll(rz.Body)
	_ = rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz status %d with no live peers and no local path", rz.StatusCode)
	}
	if !strings.Contains(string(rzBody), "not ready") {
		t.Fatalf("/readyz body %q", rzBody)
	}
	if trace.CounterValue(trace.CtrClusterPeerDown) == 0 {
		t.Fatal("health checker never counted the dead peer")
	}
}

func TestRouterModeDegradesToLocalCompression(t *testing.T) {
	router, _, _ := startTestDaemon(t, func(c *Config) {
		c.Compressor = "flate"
		c.RouterPeers = deadAddr(t)
		c.RouterHealthInterval = 50 * time.Millisecond
		c.PeerTimeout = 500 * time.Millisecond
	})
	base := "http://" + router.Addr()
	_, payload := sampleFloat32(2048)

	resp := postData(t, base+"/compress?dims=2048&dtype=float32", payload)
	compressed, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("local degradation status %d: %s", resp.StatusCode, compressed)
	}
	if trace.CounterValue(trace.CtrClusterLocalFallback) == 0 {
		t.Fatal("local fallback not counted")
	}
	resp = postData(t, base+"/decompress?dims=2048&dtype=float32", compressed)
	restored, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(restored, payload) {
		t.Fatalf("degraded round trip failed: status %d", resp.StatusCode)
	}

	// A router that can degrade locally is ready even with zero live peers.
	rz, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	_ = rz.Body.Close()
	if rz.StatusCode != http.StatusOK {
		t.Fatalf("/readyz status %d; local path should keep the router ready", rz.StatusCode)
	}
}

// TestRouterModeTraceContinuityAcrossHop: a caller-supplied traceparent must
// survive the router hop — the router's response carries the caller's trace
// id, the router's own /tracez shows the routing span, and the shard that
// served the request retains a span tree under the same trace id.
func TestRouterModeTraceContinuityAcrossHop(t *testing.T) {
	shard, _, _ := startTestDaemon(t, func(c *Config) { c.Compressor = "flate" })
	router, _, _ := startTestDaemon(t, func(c *Config) {
		c.Compressor = "flate"
		c.RouterPeers = shard.Addr()
		c.RouterHealthInterval = 50 * time.Millisecond
		c.PeerTimeout = 5 * time.Second
	})
	_, payload := sampleFloat32(256)

	const traceID = "aabbccddeeff00112233445566778899"
	req, err := http.NewRequest(http.MethodPost,
		"http://"+router.Addr()+"/compress?dims=256&dtype=float32", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed request status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Pressio-Request-Id"); got != traceID {
		t.Fatalf("router response trace id %q, want the caller's %q", got, traceID)
	}

	// The router recorded the hop under the caller's id...
	tr, err := http.Get("http://" + router.Addr() + "/tracez?id=" + traceID + "&format=tree")
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := io.ReadAll(tr.Body)
	_ = tr.Body.Close()
	if tr.StatusCode != http.StatusOK || !strings.Contains(string(tree), "daemon.route") {
		t.Fatalf("router /tracez (status %d) missing the routing span:\n%s", tr.StatusCode, tree)
	}

	// ...and the shard served it under the very same id: continuity across
	// the process boundary.
	tr, err = http.Get("http://" + shard.Addr() + "/tracez?id=" + traceID + "&format=tree")
	if err != nil {
		t.Fatal(err)
	}
	tree, _ = io.ReadAll(tr.Body)
	_ = tr.Body.Close()
	if tr.StatusCode != http.StatusOK || !strings.Contains(string(tree), "daemon.compress") {
		t.Fatalf("shard /tracez (status %d) missing the caller's trace id:\n%s", tr.StatusCode, tree)
	}
}
