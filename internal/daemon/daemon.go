// Package daemon implements the pressiod compression service: a pool of
// compressor clones behind per-operation bulkheads, an HTTP data plane with
// overload protection and graceful drain, and a production observability
// surface — request-scoped span trees correlated by W3C trace ids,
// Prometheus-format metrics, structured JSON-lines event logs, and an
// ops-only listener carrying pprof. cmd/pressiod is a thin flag wrapper
// around this package; the perf-ledger harness drives it in-process to
// measure serving latency.
package daemon

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"pressio/internal/cluster"
	"pressio/internal/core"
	"pressio/internal/launch"
	"pressio/internal/obslog"
	"pressio/internal/service"
	"pressio/internal/store"
	"pressio/internal/trace"
)

// Config collects everything the daemon needs to serve: which compressor
// stack to build, how much concurrency and memory to admit, how long a drain
// may take, and the observability knobs.
type Config struct {
	// Addr is the data-plane listen address.
	Addr string
	// OpsAddr, when non-empty, binds a second ops-only listener carrying
	// /debug/pprof, /metricz, /tracez, and /healthz. Keep it off the
	// data-plane network: profiling endpoints are for operators.
	OpsAddr string
	// Compressor is the innermost compressor plugin name.
	Compressor string
	// Guard wraps the compressor in the guard meta-compressor.
	Guard bool
	// FallbackCSV lists backup compressors tried in order.
	FallbackCSV string
	// Breaker wraps the composition in the circuit-breaker meta-compressor.
	Breaker bool
	// Options are key=value compressor options.
	Options []string
	// Concurrency is the compressor pool size.
	Concurrency int
	// MemBudget is the admission budget per bulkhead in declared bytes.
	MemBudget int64
	// QueueDepth is the bounded FIFO queue length per bulkhead.
	QueueDepth int
	// ReqTimeout is the per-request deadline (0 disables).
	ReqTimeout time.Duration
	// DrainTimeout bounds how long in-flight requests may run after drain
	// starts.
	DrainTimeout time.Duration
	// LameDuck keeps the listener open after drain starts while /readyz
	// reports 503, so load balancers route away before connections break.
	LameDuck time.Duration
	// SlowRequest, when >0, emits a warn-level slow_request event for any
	// data-plane request slower than this.
	SlowRequest time.Duration
	// TraceBuffer is how many completed request span trees /tracez retains
	// (default 256).
	TraceBuffer int

	// RouterPeers, when non-empty, switches the daemon into router mode: a
	// CSV of pressiod shard addresses ("host:port,...") that data-plane
	// requests are consistent-hash-routed across (with hedging, failover,
	// and health-driven placement) instead of compressed locally. The local
	// compressor pool remains as the degradation path unless RouterNoLocal.
	RouterPeers string
	// RouterReplicas is the replica-set size per key (default 2).
	RouterReplicas int
	// RouterVNodes is the virtual-node count per peer on the hash ring
	// (default cluster.DefaultVirtualNodes).
	RouterVNodes int
	// RouterHedgeAfter is the hedge-delay floor: a hedge to the next
	// replica launches after max(this, peer p99) (default 25ms).
	RouterHedgeAfter time.Duration
	// RouterHealthInterval is the peer /readyz poll period (default 1s).
	RouterHealthInterval time.Duration
	// RouterNoLocal disables degradation to local compression when the
	// whole fleet is unreachable; such requests shed with a typed 503.
	RouterNoLocal bool
	// PeerTimeout is the per-attempt deadline on router→peer calls
	// (default 10s).
	PeerTimeout time.Duration

	// StoreDir, when non-empty, serves the crash-consistent compressed
	// object store rooted there behind /objects (see docs/STORE.md). Crash
	// recovery runs during Start, ahead of the listener; /readyz reports 503
	// until it completes.
	StoreDir string
	// ScrubInterval is the background scrub period for the object store
	// (0 disables the scrubber; bit rot is then only caught by reads and
	// pressio-fsck).
	ScrubInterval time.Duration
	// StoreCheckpointBytes is the journal size that triggers an automatic
	// manifest checkpoint (0 = store default, negative disables).
	StoreCheckpointBytes int64
}

// Daemon is the running service.
type Daemon struct {
	cfg        Config
	name       string // composed compressor name (breaker outermost)
	srv        *http.Server
	ln         net.Listener
	opsSrv     *http.Server
	opsLn      net.Listener
	pool       chan *core.Compressor
	compress   *service.Admission
	decompress *service.Admission
	traces     *traceStore

	// Router mode: requests route across the peer fleet; the lifecycle
	// runtime sequences health-checker → router → listener. The data plane
	// calls the router through the dataRouter interface, not the concrete
	// type: handleData is //pressio:hotpath-marked for the perf ledger's
	// allocs/op gate, which measures the local compression path — a routed
	// request's cost is the peer round-trip, so the hot-path contract (and
	// hotalloc's closure) deliberately ends at this dispatch boundary.
	router  *cluster.Router
	route   dataRouter
	health  *cluster.HealthChecker
	runtime *cluster.Runtime

	// Object-store mode: recovery-gated persistent storage behind /objects.
	store    *store.Store
	scrubber *store.Scrubber

	ready    atomic.Bool
	draining atomic.Bool

	// started/finished account for every data-plane request the server began
	// processing; drain is correct iff they are equal when Drain returns.
	started  atomic.Int64
	finished atomic.Int64
}

// dataRouter is the slice of the cluster router the request path uses.
type dataRouter interface {
	Compress(ctx context.Context, dtype core.DType, dims []uint64, payload []byte) ([]byte, error)
	Decompress(ctx context.Context, dtype core.DType, dims []uint64, payload []byte) ([]byte, error)
}

// New builds the compressor pool and bulkheads. The resilience flags compose
// exactly as in the pressio CLI: breaker{guard{fallback{codec}}}.
func New(cfg Config) (*Daemon, error) {
	if cfg.Concurrency < 1 {
		return nil, fmt.Errorf("concurrency %d must be >= 1", cfg.Concurrency)
	}
	if cfg.TraceBuffer <= 0 {
		cfg.TraceBuffer = 256
	}
	name, opts := service.ComposeResilience(cfg.Compressor, cfg.Guard, cfg.FallbackCSV, cfg.Breaker, cfg.Options)
	base, err := core.NewCompressor(name)
	if err != nil {
		return nil, err
	}
	kv := map[string]string{}
	for _, o := range opts {
		k, v, ok := strings.Cut(o, "=")
		if !ok {
			return nil, fmt.Errorf("bad option %q: want key=value", o)
		}
		kv[k] = v
	}
	if err := launch.ApplyStringOptions(base, kv); err != nil {
		return nil, err
	}
	d := &Daemon{cfg: cfg, name: name, traces: newTraceStore(cfg.TraceBuffer)}
	// Clones share breaker scope state by construction, so one worker's
	// failures trip the circuit for the whole pool.
	d.pool = make(chan *core.Compressor, cfg.Concurrency)
	d.pool <- base
	for i := 1; i < cfg.Concurrency; i++ {
		d.pool <- base.Clone()
	}
	if d.compress, err = service.NewBulkhead("compress", cfg.MemBudget, cfg.QueueDepth, nil); err != nil {
		return nil, err
	}
	if d.decompress, err = service.NewBulkhead("decompress", cfg.MemBudget, cfg.QueueDepth, nil); err != nil {
		return nil, err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /compress", func(w http.ResponseWriter, r *http.Request) {
		d.handleData(w, r, false)
	})
	mux.HandleFunc("POST /decompress", func(w http.ResponseWriter, r *http.Request) {
		d.handleData(w, r, true)
	})
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	mux.HandleFunc("GET /metricz", d.handleMetricz)
	mux.HandleFunc("GET /tracez", d.handleTracez)
	if cfg.StoreDir != "" {
		mux.HandleFunc("PUT /objects/{name...}", d.handleObjectPut)
		mux.HandleFunc("GET /objects/{name...}", d.handleObjectGet)
		mux.HandleFunc("DELETE /objects/{name...}", d.handleObjectDelete)
		mux.HandleFunc("GET /objects", d.handleObjectList)
		mux.HandleFunc("GET /objects/{$}", d.handleObjectList)
	}
	d.srv = &http.Server{Handler: mux}

	if cfg.OpsAddr != "" {
		d.opsSrv = &http.Server{Handler: d.opsMux()}
	}

	// The lifecycle runtime owns start/stop ordering. Single-node mode is
	// just the listener; router mode sequences health-checker → router →
	// listener, so the ring is classified before traffic can arrive and
	// drains unwind in exact reverse. The object store (when configured)
	// starts before the listener too — crash recovery must finish before
	// the first /objects request — and, stopping in reverse order, its
	// checkpoint-and-close runs only after the listener has fully drained.
	d.runtime = cluster.NewRuntime()
	var listenerDeps []string
	if cfg.StoreDir != "" {
		if err := d.runtime.Register(&storeComp{d: d}); err != nil {
			return nil, err
		}
		listenerDeps = append(listenerDeps, "store")
	}
	if cfg.RouterPeers != "" {
		var local cluster.LocalFunc
		if !cfg.RouterNoLocal {
			local = d.localBytes
		}
		d.router, err = cluster.NewRouter(cluster.RouterConfig{
			Peers:      splitCSV(cfg.RouterPeers),
			Replicas:   cfg.RouterReplicas,
			VNodes:     cfg.RouterVNodes,
			HedgeFloor: cfg.RouterHedgeAfter,
			Peer:       cluster.PeerConfig{Timeout: cfg.PeerTimeout},
			Local:      local,
		})
		if err != nil {
			return nil, err
		}
		d.route = d.router
		d.health = cluster.NewHealthChecker(d.router, cfg.RouterHealthInterval)
		if err := d.runtime.Register(d.health); err != nil {
			return nil, err
		}
		if err := d.runtime.Register(d.router, "health"); err != nil {
			return nil, err
		}
		if err := d.runtime.Register(&listenerComp{d: d}, append(listenerDeps, "router")...); err != nil {
			return nil, err
		}
	} else if err := d.runtime.Register(&listenerComp{d: d}, listenerDeps...); err != nil {
		return nil, err
	}
	return d, nil
}

// splitCSV parses a comma-separated peer list, trimming blanks.
func splitCSV(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// listenerComp adapts the data-plane listener to the lifecycle runtime.
// Start binds and serves; Stop performs the graceful drain (lame-duck
// window, then bounded Shutdown) so reverse-order teardown stops accepting
// traffic before the router and health checker go away.
type listenerComp struct{ d *Daemon }

// Name implements cluster.Component.
func (l *listenerComp) Name() string { return "listener" }

// Start implements cluster.Component.
func (l *listenerComp) Start(context.Context) error {
	ln, err := net.Listen("tcp", l.d.cfg.Addr)
	if err != nil {
		return err
	}
	l.d.ln = ln
	//lint:ignore goroutineleak process-lifetime serve loop; the listener component's Stop shuts the server down, which Serve observes
	go func() {
		// ErrServerClosed is the expected outcome of a drain; anything else
		// surfaces through failed client requests, not the exit status.
		_ = l.d.srv.Serve(ln)
	}()
	return nil
}

// Stop implements cluster.Component: the graceful drain of the data plane.
func (l *listenerComp) Stop(context.Context) error {
	if l.d.cfg.LameDuck > 0 {
		time.Sleep(l.d.cfg.LameDuck)
	}
	ctx, cancel := context.WithTimeout(context.Background(), l.d.cfg.DrainTimeout)
	defer cancel()
	err := l.d.srv.Shutdown(ctx)
	if err != nil {
		_ = l.d.srv.Close()
		err = fmt.Errorf("drain deadline %s exceeded: %w", l.d.cfg.DrainTimeout, err)
	}
	return err
}

// Ready implements cluster.ReadyReporter.
func (l *listenerComp) Ready() bool { return l.d.ln != nil }

// opsMux is the operator surface: pprof (never on the data plane), plus the
// same metrics/trace/liveness endpoints so operators need only one port.
func (d *Daemon) opsMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metricz", d.handleMetricz)
	mux.HandleFunc("GET /tracez", d.handleTracez)
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	return mux
}

// Start brings the daemon up through the lifecycle runtime (dependencies
// first: in router mode the health checker classifies the fleet before the
// listener accepts traffic); it returns once the daemon is accepting
// connections so callers (and tests) can read Addr().
func (d *Daemon) Start() error {
	if d.opsSrv != nil {
		opsLn, err := net.Listen("tcp", d.cfg.OpsAddr)
		if err != nil {
			return err
		}
		d.opsLn = opsLn
		//lint:ignore goroutineleak process-lifetime serve loop; Drain/Close shuts the listener down, which Serve observes
		go func() { _ = d.opsSrv.Serve(opsLn) }()
	}
	if err := d.runtime.Start(context.Background()); err != nil {
		if d.opsLn != nil {
			_ = d.opsLn.Close()
		}
		return err
	}
	d.ready.Store(true)
	ev := []obslog.Field{
		obslog.Str("addr", d.Addr()),
		obslog.Str("ops_addr", d.OpsAddr()),
		obslog.Str("compressor", d.name),
		obslog.Int("concurrency", int64(d.cfg.Concurrency)),
	}
	if d.router != nil {
		ev = append(ev,
			obslog.Str("mode", "router"),
			obslog.Str("ring", d.router.Ring().String()),
			obslog.Str("components", strings.Join(d.runtime.Components(), ",")))
	}
	obslog.Default().Infow("daemon.start", ev...)
	return nil
}

// Name reports the composed compressor name (breaker outermost).
func (d *Daemon) Name() string { return d.name }

// Addr reports the bound data-plane address (useful with ":0" in tests).
func (d *Daemon) Addr() string {
	if d.ln == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// OpsAddr reports the bound ops listener address ("" when disabled).
func (d *Daemon) OpsAddr() string {
	if d.opsLn == nil {
		return ""
	}
	return d.opsLn.Addr().String()
}

// Drain implements graceful shutdown: readiness flips false immediately (so
// rolling restarts stop routing new work here), a lame-duck window keeps the
// listener open while load balancers notice, then the listener closes and
// in-flight requests get until the drain deadline to finish. The ops
// listener closes last — operators can still scrape a draining process.
func (d *Daemon) Drain() error {
	d.ready.Store(false)
	d.draining.Store(true)
	obslog.Default().Infow("daemon.drain.begin",
		obslog.Dur("lame_duck", d.cfg.LameDuck),
		obslog.Dur("deadline", d.cfg.DrainTimeout))
	// Reverse start order: the listener drains first (lame-duck window, then
	// bounded Shutdown inside its Stop), then the router and health checker
	// unwind in router mode.
	err := d.runtime.Stop(context.Background())
	if d.opsSrv != nil {
		_ = d.opsSrv.Close()
	}
	obslog.Default().Infow("daemon.drain.end",
		obslog.Int("served", d.started.Load()),
		obslog.Int("drained_in_flight", trace.CounterValue(trace.CtrDaemonDrained)),
		obslog.Err(err))
	return err
}

// Started reports data-plane requests the server began processing; equality
// with Finished after Drain proves zero dropped in-flight work.
func (d *Daemon) Started() int64 { return d.started.Load() }

// Finished reports completed data-plane requests; see Started.
func (d *Daemon) Finished() int64 { return d.finished.Load() }
