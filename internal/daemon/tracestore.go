package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"pressio/internal/trace"
)

// traceStore retains the span trees of the most recent data-plane requests,
// keyed by trace id, in a bounded FIFO ring. It is the backing store of the
// /tracez endpoint: a client that kept the X-Pressio-Request-Id from a
// response can pull that request's span tree for as long as it stays within
// the retention window.
type traceStore struct {
	mu      sync.Mutex
	cap     int
	order   []string
	entries map[string]*traceEntry
}

// traceEntry is one completed request's record.
type traceEntry struct {
	// ID is the W3C trace id (also the X-Pressio-Request-Id header value).
	ID string `json:"id"`
	// Method and Path identify the request.
	Method string `json:"method"`
	Path   string `json:"path"`
	// Status is the HTTP status the daemon answered with.
	Status int `json:"status"`
	// Start is the request arrival time (RFC3339Nano, UTC).
	Start string `json:"start"`
	// DurationMs is the end-to-end request latency.
	DurationMs float64 `json:"duration_ms"`
	// Spans is the recorded span tree, in completion order.
	Spans []spanJSON `json:"spans,omitempty"`
}

// spanJSON is the wire form of one span: microsecond offsets, flattened
// attributes.
type spanJSON struct {
	ID       uint64         `json:"id"`
	Parent   uint64         `json:"parent,omitempty"`
	Name     string         `json:"name"`
	StartUs  float64        `json:"start_us"`
	DurUs    float64        `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

func newTraceStore(capacity int) *traceStore {
	return &traceStore{cap: capacity, entries: make(map[string]*traceEntry, capacity)}
}

// add records a completed request trace, evicting the oldest entry when the
// ring is full. A repeated trace id (a client replaying the same inbound
// traceparent) overwrites its previous entry rather than occupying two
// slots.
func (s *traceStore) add(rt *trace.RequestTrace, method, path string, status int, begin time.Time, dur time.Duration) {
	if s == nil || rt == nil {
		return
	}
	spans := rt.Spans()
	spansJS := make([]spanJSON, 0, len(spans))
	for _, sp := range spans {
		js := spanJSON{
			ID:      sp.ID,
			Parent:  sp.Parent,
			Name:    sp.Name,
			StartUs: float64(sp.Start) / float64(time.Microsecond),
			DurUs:   float64(sp.Duration) / float64(time.Microsecond),
		}
		if len(sp.Attrs) > 0 {
			// The attrs map is the retained /tracez representation itself —
			// it has to be allocated per span to outlive the request.
			//lint:ignore hotalloc the map is the retained trace entry, built once per completed request off the response path
			js.Attrs = make(map[string]any, len(sp.Attrs))
			for _, a := range sp.Attrs {
				js.Attrs[a.Key] = a.Value
			}
		}
		spansJS = append(spansJS, js)
	}
	entry := &traceEntry{
		ID:         rt.TraceID(),
		Method:     method,
		Path:       path,
		Status:     status,
		Start:      begin.UTC().Format(time.RFC3339Nano),
		DurationMs: float64(dur) / float64(time.Millisecond),
		Spans:      spansJS,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[entry.ID]; dup {
		s.entries[entry.ID] = entry
		return
	}
	if len(s.order) >= s.cap {
		delete(s.entries, s.order[0])
		s.order = s.order[1:]
	}
	s.order = append(s.order, entry.ID)
	s.entries[entry.ID] = entry
}

// get returns the entry for a trace id, or nil.
func (s *traceStore) get(id string) *traceEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries[id]
}

// recent returns summaries (no spans) of the retained requests, newest
// first.
func (s *traceStore) recent() []traceEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]traceEntry, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		e := *s.entries[s.order[i]]
		e.Spans = nil
		out = append(out, e)
	}
	return out
}

// handleTracez serves recorded request span trees. Without an id parameter
// it lists recent requests (newest first, spans elided); with ?id=<trace-id>
// it returns the full span tree as JSON, or — with &format=tree — as an
// indented text tree for terminals.
func (d *Daemon) handleTracez(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id := q.Get("id")
	if id == "" {
		setNoStore(w, "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"capacity": d.traces.cap,
			"recent":   d.traces.recent(),
		})
		return
	}
	entry := d.traces.get(id)
	if entry == nil {
		setNoStore(w, textContentType)
		http.Error(w, fmt.Sprintf("no retained trace for id %q (retention: last %d requests)", id, d.traces.cap), http.StatusNotFound)
		return
	}
	if q.Get("format") == "tree" {
		setNoStore(w, textContentType)
		fmt.Fprintf(w, "%s %s -> %d in %.3fms (request %s)\n",
			entry.Method, entry.Path, entry.Status, entry.DurationMs, entry.ID)
		_, _ = w.Write(renderTree(entry.Spans))
		return
	}
	setNoStore(w, "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(entry)
}

// renderTree renders a span tree as indented text, children under parents
// in start order.
func renderTree(spans []spanJSON) []byte {
	children := map[uint64][]spanJSON{}
	for _, sp := range spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	var buf bytes.Buffer
	var walk func(parent uint64, depth int)
	walk = func(parent uint64, depth int) {
		kids := children[parent]
		sort.Slice(kids, func(i, j int) bool { return kids[i].StartUs < kids[j].StartUs })
		for _, sp := range kids {
			for i := 0; i < depth; i++ {
				buf.WriteString("  ")
			}
			fmt.Fprintf(&buf, "%s %.3fms", sp.Name, sp.DurUs/1000)
			if len(sp.Attrs) > 0 {
				fmt.Fprintf(&buf, " %v", sp.Attrs)
			}
			buf.WriteByte('\n')
			walk(sp.ID, depth+1)
		}
	}
	walk(0, 0)
	return buf.Bytes()
}
