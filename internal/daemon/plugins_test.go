package daemon

// The daemon package is plugin-agnostic; the tests exercise real compressor
// stacks, so register the plugins they name (cmd/pressiod registers the full
// library the same way).
import (
	_ "pressio/internal/faultinject"
	_ "pressio/internal/lossless"
	_ "pressio/internal/meta"
	_ "pressio/internal/resilience"
	_ "pressio/internal/sz"
)
