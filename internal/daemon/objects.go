package daemon

// The object-store surface: when -store-dir is set, the daemon exposes the
// crash-consistent compressed object store (internal/store) as a REST
// resource. The store registers with the lifecycle runtime AHEAD of the
// listener, so crash recovery (journal replay, torn-tail truncation,
// segment rebuild) completes before the first request can arrive, and
// /readyz reports 503 until it has. The scrubber rides the same component:
// it starts after recovery and stops before the journal closes.
//
//	PUT    /objects/{name}?dims=..&dtype=..[&filter=..&chunk_rows=..&fopt=k=v]
//	GET    /objects/{name}            (full object; Range: bytes=a-b → 206)
//	GET    /objects/{name}?rows=s,n   (dim-0 hyperslab)
//	DELETE /objects/{name}
//	GET    /objects                   (listing, JSON)
//
// Durability contract: a 2xx on PUT or DELETE means the mutation is fsynced
// into the write-ahead journal and survives any crash (the kill-matrix in
// internal/store/crash_test.go is the proof). 404 is an unknown name; 409
// means the requested bytes overlap a quarantined (checksum-failed) chunk —
// non-overlapping row reads of the same object still succeed.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"pressio/internal/core"
	"pressio/internal/obslog"
	"pressio/internal/store"
)

const (
	headerDType = "X-Pressio-Dtype"
	headerDims  = "X-Pressio-Dims"
)

// storeComp adapts the object store to the lifecycle runtime. Start runs
// crash recovery (Open) and launches the scrubber; Stop halts the scrubber,
// checkpoints (so the next start replays an empty journal), and closes.
type storeComp struct{ d *Daemon }

// Name implements cluster.Component.
func (c *storeComp) Name() string { return "store" }

// Start implements cluster.Component.
func (c *storeComp) Start(context.Context) error {
	s, err := store.Open(c.d.cfg.StoreDir, store.Options{CheckpointBytes: c.d.cfg.StoreCheckpointBytes})
	if err != nil {
		return fmt.Errorf("opening object store: %w", err)
	}
	c.d.store = s
	rec := s.Recovery()
	recJSON, _ := json.Marshal(rec)
	obslog.Default().Infow("store.open",
		obslog.Str("dir", c.d.cfg.StoreDir),
		obslog.Int("objects", int64(len(s.List()))),
		obslog.Str("recovery", string(recJSON)))
	c.d.scrubber = store.NewScrubber(s, c.d.cfg.ScrubInterval, scrubSeed(c.d.cfg.StoreDir))
	c.d.scrubber.Start()
	return nil
}

// Stop implements cluster.Component.
func (c *storeComp) Stop(context.Context) error {
	if c.d.scrubber != nil {
		c.d.scrubber.Stop()
	}
	if c.d.store == nil {
		return nil
	}
	if err := c.d.store.Checkpoint(); err != nil && !errors.Is(err, store.ErrClosed) {
		obslog.Default().Warnw("store.checkpoint_on_stop", obslog.Err(err))
	}
	return c.d.store.Close()
}

// Ready implements cluster.ReadyReporter: the store is ready once recovery
// finished. The runtime aggregates this into /readyz.
func (c *storeComp) Ready() bool { return c.d.store != nil && c.d.store.Ready() }

// scrubSeed derives a stable per-directory jitter seed so a fleet of
// daemons with different store paths scrubs out of phase.
func scrubSeed(dir string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(dir); i++ {
		h ^= uint64(dir[i])
		h *= 1099511628211
	}
	return h
}

// writeStoreError maps a store error to its HTTP shape.
func writeStoreError(w http.ResponseWriter, err error) int {
	var status int
	switch {
	case errors.Is(err, store.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, store.ErrQuarantined):
		w.Header().Set(headerError, "quarantined")
		status = http.StatusConflict
	case errors.Is(err, store.ErrClosed):
		w.Header().Set("Retry-After", "1")
		status = http.StatusServiceUnavailable
	case errors.Is(err, core.ErrInvalidOption), errors.Is(err, core.ErrNilData):
		status = http.StatusBadRequest
	default:
		w.Header().Set(headerError, "fault")
		status = http.StatusInternalServerError
	}
	http.Error(w, err.Error(), status)
	return status
}

// writeObjectJSON renders one JSON response with the store content type.
func writeObjectJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleObjectPut stores the request body under the path name. The body is
// raw sample bytes; dims/dtype describe its shape exactly as on /compress.
func (d *Daemon) handleObjectPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	q := r.URL.Query()
	dtype, dims, err := parseShape(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	po := store.PutOptions{Filter: q.Get("filter")}
	if cr := q.Get("chunk_rows"); cr != "" {
		v, err := strconv.ParseUint(cr, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad chunk_rows %q: %v", cr, err), http.StatusBadRequest)
			return
		}
		po.ChunkRows = v
	}
	for _, kv := range q["fopt"] {
		k, vs, ok := strings.Cut(kv, "=")
		v, err := strconv.ParseFloat(vs, 64)
		if !ok || err != nil {
			http.Error(w, fmt.Sprintf("bad fopt %q: want key=float", kv), http.StatusBadRequest)
			return
		}
		if po.FilterOptions == nil {
			po.FilterOptions = map[string]float64{}
		}
		po.FilterOptions[k] = v
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, d.cfg.MemBudget))
	if err != nil {
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	in, err := core.NewMove(dtype, body, dims...)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	info, err := d.store.Put(name, in, po)
	if err != nil {
		writeStoreError(w, err)
		return
	}
	writeObjectJSON(w, http.StatusCreated, info)
}

// handleObjectGet serves an object (or a slice of one) back as raw bytes.
// ?rows=start,count selects a dim-0 hyperslab; a Range: bytes=a-b header
// selects a byte range of the uncompressed stream and answers 206. Either
// way only the chunks overlapping the request are read and decompressed.
func (d *Daemon) handleObjectGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var (
		payload []byte
		info    store.ObjectInfo
		err     error
		dims    []uint64
		partial bool
		rangeHW string
	)
	switch {
	case r.URL.Query().Get("rows") != "":
		spec := r.URL.Query().Get("rows")
		s, c, ok := strings.Cut(spec, ",")
		startRow, err1 := strconv.ParseUint(s, 10, 64)
		count, err2 := strconv.ParseUint(c, 10, 64)
		if !ok || err1 != nil || err2 != nil {
			http.Error(w, fmt.Sprintf("bad rows %q: want start,count", spec), http.StatusBadRequest)
			return
		}
		var data *core.Data
		data, info, err = d.store.GetRows(name, startRow, count)
		if err == nil {
			payload, dims = data.Bytes(), data.Dims()
		}
	case strings.HasPrefix(r.Header.Get("Range"), "bytes="):
		spec := strings.TrimPrefix(r.Header.Get("Range"), "bytes=")
		a, b, ok := strings.Cut(spec, "-")
		off, err1 := strconv.ParseInt(a, 10, 64)
		end, err2 := strconv.ParseInt(b, 10, 64)
		if !ok || err1 != nil || err2 != nil || end < off {
			http.Error(w, fmt.Sprintf("unsupported range %q: want bytes=first-last", r.Header.Get("Range")), http.StatusRequestedRangeNotSatisfiable)
			return
		}
		payload, info, err = d.store.GetRange(name, off, end-off+1)
		if err == nil {
			partial = true
			rangeHW = fmt.Sprintf("bytes %d-%d/%d", off, end, info.UncompressedBytes)
		}
	default:
		var data *core.Data
		data, info, err = d.store.Get(name)
		if err == nil {
			payload, dims = data.Bytes(), data.Dims()
		}
	}
	if err != nil {
		writeStoreError(w, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(headerDType, info.DType)
	if dims != nil {
		parts := make([]string, len(dims))
		for i, v := range dims {
			parts[i] = strconv.FormatUint(v, 10)
		}
		h.Set(headerDims, strings.Join(parts, ","))
	}
	if partial {
		h.Set("Content-Range", rangeHW)
		w.WriteHeader(http.StatusPartialContent)
	}
	_, _ = w.Write(payload)
}

// handleObjectDelete removes an object; 204 means the tombstone is durable.
func (d *Daemon) handleObjectDelete(w http.ResponseWriter, r *http.Request) {
	if err := d.store.Delete(r.PathValue("name")); err != nil {
		writeStoreError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleObjectList lists every live object, sorted by name.
func (d *Daemon) handleObjectList(w http.ResponseWriter, _ *http.Request) {
	infos := d.store.List()
	sort.Slice(infos, func(i, k int) bool { return infos[i].Name < infos[k].Name })
	writeObjectJSON(w, http.StatusOK, struct {
		Objects []store.ObjectInfo `json:"objects"`
	}{Objects: infos})
}
