package daemon

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pressio/internal/obslog"
	"pressio/internal/service"
	"pressio/internal/trace"
)

// startTestDaemon boots a daemon on an ephemeral port and returns it with a
// drain trigger and the channel carrying drain's result. The cleanup drains
// if the test has not already done so.
func startTestDaemon(t *testing.T, mutate func(*Config)) (*Daemon, func(), chan error) {
	t.Helper()
	service.ResetShared()
	trace.ResetTelemetry()
	cfg := Config{
		Addr:         "127.0.0.1:0",
		Compressor:   "noop",
		Concurrency:  2,
		MemBudget:    1 << 20,
		QueueDepth:   8,
		ReqTimeout:   5 * time.Second,
		DrainTimeout: 5 * time.Second,
		LameDuck:     10 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	drained := false
	drain := func() {
		if !drained {
			drained = true
			done <- d.Drain()
		}
	}
	t.Cleanup(drain)
	return d, drain, done
}

func sampleFloat32(n int) ([]float32, []byte) {
	vals := make([]float32, n)
	raw := make([]byte, 4*n)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) / 7))
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(vals[i]))
	}
	return vals, raw
}

func post(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDaemonRoundTrip(t *testing.T) {
	d, _, _ := startTestDaemon(t, func(c *Config) {
		c.Compressor = "sz_threadsafe"
		c.Options = []string{"pressio:abs=0.01"}
	})
	base := "http://" + d.Addr()
	vals, raw := sampleFloat32(32 * 32)

	resp := post(t, base+"/compress?dims=32,32&dtype=float32", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	if got := resp.Header.Get("X-Pressio-Compressor"); got != "sz_threadsafe" {
		t.Errorf("X-Pressio-Compressor %q", got)
	}
	compressed := readAll(t, resp)
	if len(compressed) == 0 || len(compressed) >= len(raw) {
		t.Fatalf("compressed %d bytes from %d input bytes", len(compressed), len(raw))
	}

	resp = post(t, base+"/decompress?dims=32,32&dtype=float32", compressed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	dec := readAll(t, resp)
	if len(dec) != len(raw) {
		t.Fatalf("decompressed %d bytes, want %d", len(dec), len(raw))
	}
	for i := range vals {
		got := math.Float32frombits(binary.LittleEndian.Uint32(dec[4*i:]))
		if math.Abs(float64(got-vals[i])) > 0.01 {
			t.Fatalf("elem %d bound violated: %v vs %v", i, got, vals[i])
		}
	}
}

func TestDaemonHealthReadyAndDrain(t *testing.T) {
	d, drain, done := startTestDaemon(t, func(c *Config) {
		c.LameDuck = 300 * time.Millisecond
	})
	base := "http://" + d.Addr()

	resp := post(t, base+"/compress?dims=4&dtype=float32", make([]byte, 16))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d", resp.StatusCode)
	}
	readAll(t, resp)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d, want 200", path, resp.StatusCode)
		}
		readAll(t, resp)
	}

	go drain()
	// During the lame-duck window the listener still answers: liveness stays
	// 200 while readiness flips to 503 so rolling restarts route away.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatalf("/readyz unreachable during lame-duck: %v", err)
		}
		code := resp.StatusCode
		body := readAll(t, resp)
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(string(body), "draining") {
				t.Fatalf("/readyz body %q, want draining", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503 after drain start")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain %d, want 200 (liveness != readiness)", resp.StatusCode)
	}
	readAll(t, resp)

	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if s, f := d.started.Load(), d.finished.Load(); s != f {
		t.Fatalf("drain dropped requests: %d started, %d finished", s, f)
	}
}

func TestDaemonShedOversizedTyped503(t *testing.T) {
	d, _, _ := startTestDaemon(t, func(c *Config) {
		c.MemBudget = 16
	})
	resp := post(t, "http://"+d.Addr()+"/compress?dims=16&dtype=float32", make([]byte, 64))
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Pressio-Error"); got != "shed" {
		t.Errorf("X-Pressio-Error %q, want shed", got)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if trace.CounterValue(trace.BulkheadShedKey("compress")) != 1 {
		t.Error("per-bulkhead shed counter not incremented")
	}
}

func TestDaemonBreakerOpenTyped503(t *testing.T) {
	d, _, _ := startTestDaemon(t, func(c *Config) {
		c.Compressor = "faultinject"
		c.Breaker = true
		c.Options = []string{
			"faultinject:compressor=noop",
			"faultinject:error_rate=1",
			"faultinject:seed=1",
			"breaker:window=4",
			"breaker:failure_threshold=2",
			"breaker:open_ms=60000",
		}
	})
	base := "http://" + d.Addr()
	payload := make([]byte, 16)
	// The first two requests reach the always-failing child (typed faults),
	// then the shared circuit is open and requests are rejected up front.
	for i := 0; i < 2; i++ {
		resp := post(t, base+"/compress?dims=4&dtype=float32", payload)
		readAll(t, resp)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d status %d, want 500 (injected fault)", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Pressio-Error"); got != "fault" {
			t.Errorf("request %d X-Pressio-Error %q, want fault", i, got)
		}
	}
	resp := post(t, base+"/compress?dims=4&dtype=float32", payload)
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-circuit status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Pressio-Error"); got != "breaker-open" {
		t.Errorf("X-Pressio-Error %q, want breaker-open", got)
	}
	if trace.CounterValue(trace.CtrBreakerOpened) != 1 {
		t.Errorf("opened counter %d, want 1", trace.CounterValue(trace.CtrBreakerOpened))
	}
}

func TestDaemonBadRequestMissingShape(t *testing.T) {
	d, _, _ := startTestDaemon(t, nil)
	resp := post(t, "http://"+d.Addr()+"/compress", make([]byte, 16))
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 for missing dims/dtype", resp.StatusCode)
	}
}

func TestDaemonMetriczPrometheus(t *testing.T) {
	d, _, _ := startTestDaemon(t, nil)
	base := "http://" + d.Addr()
	readAll(t, post(t, base+"/compress?dims=4&dtype=float32", make([]byte, 16)))
	resp, err := http.Get(base + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != trace.PromContentType {
		t.Errorf("/metricz Content-Type %q, want %q", ct, trace.PromContentType)
	}
	body := string(readAll(t, resp))
	for _, w := range []string{
		"# TYPE pressio_service_daemon_requests_total counter\npressio_service_daemon_requests_total 1\n",
		"# TYPE pressio_service_admission_admitted_total counter\npressio_service_admission_admitted_total 1\n",
		"# TYPE pressio_service_bulkhead_compress_queue_depth gauge\npressio_service_bulkhead_compress_queue_depth 0\n",
		"pressio_service_bulkhead_compress_used_bytes 0\n",
		"pressio_service_daemon_ready 1\n",
		"# TYPE pressio_service_daemon_latency_seconds histogram\n",
		"pressio_service_daemon_latency_seconds_bucket{le=\"+Inf\"} 1\n",
		"pressio_service_daemon_latency_seconds_count 1\n",
		"# TYPE pressio_goroutines gauge\n",
		"pressio_build_info{go_version=",
	} {
		if !strings.Contains(body, w) {
			t.Errorf("/metricz missing %q:\n%s", w, body)
		}
	}
	// Every sample line must be well-formed exposition format.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp <= 0 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestDaemonMetriczJSONMode(t *testing.T) {
	d, _, _ := startTestDaemon(t, nil)
	base := "http://" + d.Addr()
	readAll(t, post(t, base+"/compress?dims=4&dtype=float32", make([]byte, 16)))
	resp, err := http.Get(base + "/metricz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json-mode Content-Type %q", ct)
	}
	var got struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(readAll(t, resp), &got); err != nil {
		t.Fatalf("json mode did not parse: %v", err)
	}
	if got.Counters[trace.CtrDaemonRequests] != 1 {
		t.Errorf("daemon requests counter %d, want 1", got.Counters[trace.CtrDaemonRequests])
	}
	if _, ok := got.Gauges["pressio_goroutines"]; !ok {
		t.Error("json mode missing runtime gauges")
	}
}

// Satellite: the health/metrics endpoints declare an explicit Content-Type
// and are uncacheable — a cached readiness answer misroutes rolling
// restarts.
func TestDaemonEndpointHeaders(t *testing.T) {
	d, _, _ := startTestDaemon(t, nil)
	base := "http://" + d.Addr()
	for path, wantCT := range map[string]string{
		"/healthz": "text/plain; charset=utf-8",
		"/readyz":  "text/plain; charset=utf-8",
		"/metricz": trace.PromContentType,
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if got := resp.Header.Get("Content-Type"); got != wantCT {
			t.Errorf("%s Content-Type %q, want %q", path, got, wantCT)
		}
		if got := resp.Header.Get("Cache-Control"); got != "no-store" {
			t.Errorf("%s Cache-Control %q, want no-store", path, got)
		}
	}
}

func TestDaemonRequestIDAndTracez(t *testing.T) {
	d, _, _ := startTestDaemon(t, func(c *Config) {
		c.Compressor = "sz_threadsafe"
		c.Options = []string{"pressio:abs=0.01"}
	})
	base := "http://" + d.Addr()
	_, raw := sampleFloat32(32 * 32)

	resp := post(t, base+"/compress?dims=32,32&dtype=float32", raw)
	readAll(t, resp)
	id := resp.Header.Get("X-Pressio-Request-Id")
	if len(id) != 32 {
		t.Fatalf("X-Pressio-Request-Id %q, want 32 hex digits", id)
	}
	tp := resp.Header.Get("Traceparent")
	if !strings.HasPrefix(tp, "00-"+id+"-") {
		t.Fatalf("Traceparent %q does not carry the request id %q", tp, id)
	}

	// The span tree is retrievable by the returned id.
	tr, err := http.Get(base + "/tracez?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("/tracez?id= status %d", tr.StatusCode)
	}
	var entry struct {
		ID     string `json:"id"`
		Path   string `json:"path"`
		Status int    `json:"status"`
		Spans  []struct {
			Name   string `json:"name"`
			Parent uint64 `json:"parent"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(readAll(t, tr), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.ID != id || entry.Path != "/compress" || entry.Status != 200 {
		t.Errorf("trace entry %+v", entry)
	}
	names := map[string]bool{}
	for _, sp := range entry.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"daemon.request", "daemon.admission", "daemon.read_body", "daemon.compress", "daemon.write_response"} {
		if !names[want] {
			t.Errorf("span tree missing %q: %v", want, names)
		}
	}

	// Tree rendering works too.
	tree, err := http.Get(base + "/tracez?id=" + id + "&format=tree")
	if err != nil {
		t.Fatal(err)
	}
	treeBody := string(readAll(t, tree))
	if !strings.Contains(treeBody, "daemon.request") || !strings.Contains(treeBody, "  daemon.compress") {
		t.Errorf("tree rendering:\n%s", treeBody)
	}

	// The listing shows the request, newest first, without spans.
	list, err := http.Get(base + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Capacity int `json:"capacity"`
		Recent   []struct {
			ID string `json:"id"`
		} `json:"recent"`
	}
	if err := json.Unmarshal(readAll(t, list), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Recent) == 0 || listing.Recent[0].ID != id {
		t.Errorf("listing %+v does not lead with %q", listing, id)
	}

	// Unknown ids 404.
	missing, err := http.Get(base + "/tracez?id=ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, missing)
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace id status %d, want 404", missing.StatusCode)
	}
}

func TestDaemonPropagatesInboundTraceparent(t *testing.T) {
	d, _, _ := startTestDaemon(t, nil)
	const inbound = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest("POST", "http://"+d.Addr()+"/compress?dims=4&dtype=float32",
		bytes.NewReader(make([]byte, 16)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Traceparent", "00-"+inbound+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if got := resp.Header.Get("X-Pressio-Request-Id"); got != inbound {
		t.Errorf("request id %q, want propagated %q", got, inbound)
	}
}

func TestDaemonSlowRequestLogged(t *testing.T) {
	var buf syncBuffer
	obslog.SetDefault(obslog.New(&buf, obslog.Debug))
	defer obslog.SetDefault(nil)

	d, _, _ := startTestDaemon(t, func(c *Config) {
		c.SlowRequest = time.Nanosecond // everything is slow
	})
	resp := post(t, "http://"+d.Addr()+"/compress?dims=4&dtype=float32", make([]byte, 16))
	readAll(t, resp)
	id := resp.Header.Get("X-Pressio-Request-Id")

	out := buf.String()
	if !strings.Contains(out, `"event":"slow_request"`) {
		t.Fatalf("no slow_request event:\n%s", out)
	}
	if !strings.Contains(out, `"request_id":"`+id+`"`) {
		t.Errorf("slow_request not correlated with request id %s:\n%s", id, out)
	}
}

func TestDaemonOpsListener(t *testing.T) {
	d, _, _ := startTestDaemon(t, func(c *Config) {
		c.OpsAddr = "127.0.0.1:0"
	})
	ops := "http://" + d.OpsAddr()
	for _, path := range []string{"/debug/pprof/", "/metricz", "/tracez", "/healthz"} {
		resp, err := http.Get(ops + path)
		if err != nil {
			t.Fatalf("ops %s: %v", path, err)
		}
		readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("ops %s status %d", path, resp.StatusCode)
		}
	}
	// pprof stays off the data plane.
	resp, err := http.Get("http://" + d.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode == http.StatusOK {
		t.Error("/debug/pprof/ reachable on the data plane")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the daemon logs from request
// goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
