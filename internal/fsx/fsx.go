// Package fsx holds the crash-consistent filesystem primitives shared by
// the IO plugins (internal/pio), the h5lite container, and the compressed
// object store (internal/store). It exists below all of them so each can use
// the same temp+fsync+rename discipline without import cycles (pio imports
// h5lite, so the primitive cannot live in pio).
//
// Every ordering-critical operation passes through a declared
// crash point (fsx.atomic.write, fsx.atomic.fsync,
// fsx.atomic.rename, fsx.atomic.dirsync), so crash campaigns can hard-stop a
// process at each step and prove that readers only ever observe a complete
// old file or a complete new one.
package fsx

import (
	"os"
	"path/filepath"
)

// Declared crash points, one per ordering-critical step of AtomicWriteFile.
var (
	// PointWrite fires before the temp-file write: nothing durable yet.
	PointWrite = RegisterFSPoint("fsx.atomic.write")
	// PointFsync fires after the write, before the temp file is fsynced:
	// data may or may not have reached the device.
	PointFsync = RegisterFSPoint("fsx.atomic.fsync")
	// PointRename fires after the fsync, before the publishing rename: the
	// destination must still hold the complete previous generation.
	PointRename = RegisterFSPoint("fsx.atomic.rename")
	// PointDirSync fires after the rename, before the directory fsync: the
	// new name exists but might not survive power loss.
	PointDirSync = RegisterFSPoint("fsx.atomic.dirsync")
)

// AtomicWriteFile writes data to path crash-consistently. The bytes go to a
// temporary file in the same directory (rename is only atomic within one
// filesystem), the temp file is fsynced so the data reaches the device
// before the new name does, then a rename publishes it and the directory is
// fsynced so the name itself survives a crash. A reader racing a crashed
// writer sees either the complete old file or the complete new one, never a
// torn prefix.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		// On any failure the temp file is withdrawn; after a successful
		// rename tmpName is cleared and this is a no-op. (A hard stop skips
		// this entirely — recovery treats *.tmp-* files as unpublished.)
		if tmpName != "" {
			_ = tmp.Close()
			_ = os.Remove(tmpName)
		}
	}()
	if err := FSCrash(PointWrite); err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := FSCrash(PointFsync); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := FSCrash(PointRename); err != nil {
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	tmpName = ""
	if err := FSCrash(PointDirSync); err != nil {
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so a just-renamed entry survives power loss.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// IsTempArtifact reports whether name looks like an AtomicWriteFile temp
// file left behind by a hard stop. Recovery and fsck remove (or report)
// these: a temp file is by construction unpublished, so no acknowledged
// state can live in it.
func IsTempArtifact(name string) bool {
	base := filepath.Base(name)
	for i := 0; i+5 <= len(base); i++ {
		if base[i:i+5] == ".tmp-" {
			return true
		}
	}
	return false
}
