package fsx

import (
	"errors"
	"testing"
)

func TestFSPointRegistryAndArming(t *testing.T) {
	pts := FSPoints()
	want := map[string]bool{
		"fsx.atomic.write": true, "fsx.atomic.fsync": true,
		"fsx.atomic.rename": true, "fsx.atomic.dirsync": true,
	}
	for _, p := range pts {
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("declared points missing from registry: %v (have %v)", want, pts)
	}

	if err := ArmFS(FSFault{Point: "no.such.point"}); err == nil {
		t.Fatal("unknown point armed")
	}
	if err := ArmFS(FSFault{Point: PointWrite, Mode: "detonate"}); err == nil {
		t.Fatal("unknown mode armed")
	}

	// After skips the first N hits, then every later hit fires.
	if err := ArmFS(FSFault{Point: PointWrite, After: 2}); err != nil {
		t.Fatal(err)
	}
	defer DisarmFS()
	for i := 0; i < 2; i++ {
		if FSArmed(PointWrite) {
			t.Fatalf("point due before After consumed (hit %d)", i)
		}
		if err := FSCrash(PointWrite); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	if !FSArmed(PointWrite) {
		t.Fatal("point not due after After consumed")
	}
	if err := FSCrash(PointWrite); !errors.Is(err, ErrFSCrash) {
		t.Fatalf("armed point did not fire: %v", err)
	}
	if err := FSCrash(PointRename); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	DisarmFS()
	if err := FSCrash(PointWrite); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
}

func TestArmFSFromEnv(t *testing.T) {
	t.Setenv(EnvFSCrash, "")
	if armed, err := ArmFSFromEnv(); err != nil || armed {
		t.Fatalf("empty env: armed=%v err=%v", armed, err)
	}
	t.Setenv(EnvFSCrash, PointFsync+":fail:3")
	armed, err := ArmFSFromEnv()
	if err != nil || !armed {
		t.Fatalf("valid env rejected: armed=%v err=%v", armed, err)
	}
	DisarmFS()
	for _, bad := range []string{"nope", PointFsync + ":fail:x", PointFsync + ":fail:1:extra"} {
		t.Setenv(EnvFSCrash, bad)
		if _, err := ArmFSFromEnv(); err == nil {
			t.Fatalf("malformed env %q accepted", bad)
		}
	}
	DisarmFS()
}
