package fsx

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"pressio/internal/trace"
)

// Filesystem-operation fault injection: the generalization of the crashPoint
// hook that used to live in internal/pio/atomic.go. Durable-storage code
// (internal/fsx, internal/store) declares *named crash points* at the
// filesystem operations whose ordering its crash-consistency argument
// depends on — write, fsync, rename, truncate — and the injector can arm
// exactly one of them to fire.
//
// Two modes:
//
//   - FSModeFail: FSCrash returns ErrFSCrash at the armed point. The calling
//     operation aborts exactly where a crash would, and in-process tests can
//     then reopen the state and assert recovery invariants.
//   - FSModeExit: the process hard-stops with os.Exit(FSExitCode) at the
//     armed point — no deferred cleanup, no atexit, nothing. This is the
//     SIGKILL-equivalent used by the store's multi-process crash matrix: a
//     child process is pointed at a store directory, armed via the
//     PRESSIO_FS_CRASH environment variable, and killed mid-operation; the
//     parent then reopens the directory and proves zero acknowledged-write
//     loss.
//
// Every declared point self-registers at init time, so crash campaigns can
// enumerate FSPoints() and prove coverage of all of them rather than a
// hand-maintained list.

// FS fault modes.
const (
	// FSModeFail makes FSCrash return ErrFSCrash at the armed point.
	FSModeFail = "fail"
	// FSModeExit makes FSCrash hard-stop the process at the armed point.
	FSModeExit = "exit"
)

// FSExitCode is the exit status of an FSModeExit hard stop (137 = the shell
// convention for SIGKILL).
const FSExitCode = 137

// EnvFSCrash is the environment variable ArmFSFromEnv reads:
// "point[:mode[:after]]", e.g. "store.journal.append.fsync:exit:3".
const EnvFSCrash = "PRESSIO_FS_CRASH"

// CtrFSCrashes counts filesystem faults fired (both modes; an exit-mode
// process usually dies before the scrape, but fail mode accumulates).
const CtrFSCrashes = "faultinject.fs.crashes"

// ErrFSCrash is the injected filesystem crash error (FSModeFail). It is
// deliberately NOT transient: retry loops must not absorb a simulated crash.
var ErrFSCrash = errors.New("faultinject: injected filesystem crash")

// FSFault is one armed filesystem fault.
type FSFault struct {
	// Point is the declared crash point name (see FSPoints).
	Point string
	// Mode is FSModeFail or FSModeExit (default FSModeFail).
	Mode string
	// After skips the first After hits of the point before firing, so a
	// campaign can crash mid-load rather than on the first operation.
	After int
}

type fsState struct {
	fault FSFault
	hits  atomic.Int64
}

var (
	fsMu     sync.Mutex
	fsPoints = map[string]bool{}
	fsArmed  atomic.Pointer[fsState]
)

// RegisterFSPoint declares a named filesystem crash point. Call it from an
// init function or var initializer next to the code that consults the point;
// registration is idempotent.
func RegisterFSPoint(name string) string {
	fsMu.Lock()
	fsPoints[name] = true
	fsMu.Unlock()
	return name
}

// FSPoints lists every declared crash point, sorted — the enumeration a
// crash matrix iterates.
func FSPoints() []string {
	fsMu.Lock()
	defer fsMu.Unlock()
	out := make([]string, 0, len(fsPoints))
	for p := range fsPoints {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ArmFS arms one filesystem fault. Only one fault is armed at a time; arming
// replaces any previous fault. The point must have been declared.
func ArmFS(f FSFault) error {
	if f.Mode == "" {
		f.Mode = FSModeFail
	}
	if f.Mode != FSModeFail && f.Mode != FSModeExit {
		return fmt.Errorf("faultinject: unknown fs fault mode %q", f.Mode)
	}
	fsMu.Lock()
	known := fsPoints[f.Point]
	fsMu.Unlock()
	if !known {
		return fmt.Errorf("faultinject: unknown fs crash point %q (declared: %s)",
			f.Point, strings.Join(FSPoints(), ", "))
	}
	fsArmed.Store(&fsState{fault: f})
	return nil
}

// DisarmFS clears any armed filesystem fault.
func DisarmFS() { fsArmed.Store(nil) }

// ArmFSFromEnv arms a fault from the PRESSIO_FS_CRASH environment variable
// ("point[:mode[:after]]"). It reports whether a fault was armed; a present
// but malformed value is an error. Child processes of a crash campaign call
// this before opening the store.
func ArmFSFromEnv() (bool, error) {
	v := os.Getenv(EnvFSCrash)
	if v == "" {
		return false, nil
	}
	parts := strings.Split(v, ":")
	f := FSFault{Point: parts[0]}
	if len(parts) > 1 {
		f.Mode = parts[1]
	}
	if len(parts) > 2 {
		n, err := strconv.Atoi(parts[2])
		if err != nil || n < 0 {
			return false, fmt.Errorf("faultinject: bad %s after-count %q", EnvFSCrash, parts[2])
		}
		f.After = n
	}
	if len(parts) > 3 {
		return false, fmt.Errorf("faultinject: bad %s value %q", EnvFSCrash, v)
	}
	if err := ArmFS(f); err != nil {
		return false, err
	}
	return true, nil
}

// FSArmed reports whether the named point is currently armed and due to fire
// on its next hit (its After count already consumed). Callers that need to
// stage extra state before the crash — e.g. the journal writing a deliberate
// half record to simulate a torn append — consult this before FSCrash.
func FSArmed(point string) bool {
	st := fsArmed.Load()
	return st != nil && st.fault.Point == point && st.hits.Load() >= int64(st.fault.After)
}

// FSCrash is the hook durable-storage code calls at each declared point.
// Disarmed or non-matching points cost one atomic load. At the armed point it
// counts down After, then fires: FSModeFail returns ErrFSCrash (wrapped with
// the point name), FSModeExit hard-stops the process.
func FSCrash(point string) error {
	st := fsArmed.Load()
	if st == nil || st.fault.Point != point {
		return nil
	}
	if st.hits.Add(1)-1 < int64(st.fault.After) {
		return nil
	}
	trace.CounterAdd(CtrFSCrashes, 1)
	trace.CounterAdd(trace.CtrFaultsInjected, 1)
	if st.fault.Mode == FSModeExit {
		// A hard stop, not a panic: no deferred cleanup may run, exactly as
		// with SIGKILL. The store's crash matrix depends on this.
		fmt.Fprintf(os.Stderr, "faultinject: hard stop at fs crash point %s\n", point)
		os.Exit(FSExitCode)
	}
	return fmt.Errorf("%w at %s", ErrFSCrash, point)
}
