package core

// Metric is the pressio_metrics component: a plugin whose hooks run around
// compression and decompression and which reports results as introspectable
// Options (e.g. "size:compression_ratio", "error_stat:psnr").
//
// Hooks receive the same Data values the compressor sees. EndDecompress
// receives the original-as-compressed input too so error metrics can compare
// against it when the client stashed it via TrackInput.
type Metric interface {
	// Prefix returns the metric name that namespaces its results.
	Prefix() string
	// Options returns settable options for the metric (may be empty).
	Options() *Options
	// SetOptions applies options; unknown keys are ignored.
	SetOptions(*Options) error
	// BeginCompress runs before compression of in.
	BeginCompress(in *Data)
	// EndCompress runs after compression with the produced output and error.
	EndCompress(in, out *Data, err error)
	// BeginDecompress runs before decompression of in.
	BeginDecompress(in *Data)
	// EndDecompress runs after decompression with the produced output.
	EndDecompress(in, out *Data, err error)
	// Results reports all measurements taken so far.
	Results() *Options
	// Clone returns an independent metric with the same configuration and
	// fresh (empty) measurement state.
	Clone() Metric
}

// MetricsGroup composes several metrics into one, fanning every hook out to
// each member and merging their results (the "composite" metrics module).
type MetricsGroup struct {
	members []Metric
}

// NewMetricsGroup builds a composite from the given members.
func NewMetricsGroup(members ...Metric) *MetricsGroup {
	return &MetricsGroup{members: members}
}

// Prefix implements Metric.
func (g *MetricsGroup) Prefix() string { return "composite" }

// Members returns the composed metrics.
func (g *MetricsGroup) Members() []Metric { return g.members }

// Options merges member options.
func (g *MetricsGroup) Options() *Options {
	o := NewOptions()
	for _, m := range g.members {
		o.Merge(m.Options())
	}
	return o
}

// SetOptions forwards to every member.
func (g *MetricsGroup) SetOptions(o *Options) error {
	for _, m := range g.members {
		if err := m.SetOptions(o); err != nil {
			return err
		}
	}
	return nil
}

// BeginCompress implements Metric.
func (g *MetricsGroup) BeginCompress(in *Data) {
	for _, m := range g.members {
		m.BeginCompress(in)
	}
}

// EndCompress implements Metric.
func (g *MetricsGroup) EndCompress(in, out *Data, err error) {
	for _, m := range g.members {
		m.EndCompress(in, out, err)
	}
}

// BeginDecompress implements Metric.
func (g *MetricsGroup) BeginDecompress(in *Data) {
	for _, m := range g.members {
		m.BeginDecompress(in)
	}
}

// EndDecompress implements Metric.
func (g *MetricsGroup) EndDecompress(in, out *Data, err error) {
	for _, m := range g.members {
		m.EndDecompress(in, out, err)
	}
}

// Results merges member results.
func (g *MetricsGroup) Results() *Options {
	o := NewOptions()
	for _, m := range g.members {
		o.Merge(m.Results())
	}
	return o
}

// Clone implements Metric.
func (g *MetricsGroup) Clone() Metric {
	members := make([]Metric, len(g.members))
	for i, m := range g.members {
		members[i] = m.Clone()
	}
	return &MetricsGroup{members: members}
}
