package core

import "testing"

func TestMetricsGroupFansOut(t *testing.T) {
	a := &recordMetric{}
	b := &recordMetric{}
	g := NewMetricsGroup(a, b)
	if g.Prefix() != "composite" {
		t.Fatalf("prefix %q", g.Prefix())
	}
	in := FromFloat32s([]float32{1, 2})
	out := NewBytes([]byte{1})
	g.BeginCompress(in)
	g.EndCompress(in, out, nil)
	g.BeginDecompress(out)
	g.EndDecompress(out, in, nil)
	if a.begins != 2 || b.begins != 2 || a.ends != 2 || b.ends != 2 {
		t.Fatalf("fan-out: a=%d/%d b=%d/%d", a.begins, a.ends, b.begins, b.ends)
	}
	// Results merge (both members share the record: prefix; the merged map
	// keeps one entry, which is still a successful merge).
	res := g.Results()
	if v, err := res.GetInt32("record:begins"); err != nil || v != 2 {
		t.Fatalf("merged results: %v %v", v, err)
	}
	if len(g.Members()) != 2 {
		t.Fatal("members lost")
	}
}

func TestMetricsGroupCloneIsolates(t *testing.T) {
	a := &recordMetric{}
	g := NewMetricsGroup(a)
	g.BeginCompress(FromFloat32s([]float32{1}))
	clone := g.Clone().(*MetricsGroup)
	if clone.Members()[0].(*recordMetric).begins != 0 {
		t.Fatal("clone inherited member state")
	}
}

func TestMetricsGroupSetOptionsForwards(t *testing.T) {
	a := &recordMetric{}
	g := NewMetricsGroup(a)
	if err := g.SetOptions(NewOptions().SetValue("x", int32(1))); err != nil {
		t.Fatal(err)
	}
	if g.Options() == nil {
		t.Fatal("options nil")
	}
}
