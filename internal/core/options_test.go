package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOptionTypesAndValues(t *testing.T) {
	cases := []struct {
		opt  Option
		want OptionType
	}{
		{NewOption(int8(1)), OptInt8},
		{NewOption(int16(1)), OptInt16},
		{NewOption(int32(1)), OptInt32},
		{NewOption(int64(1)), OptInt64},
		{NewOption(int(1)), OptInt64},
		{NewOption(uint8(1)), OptUint8},
		{NewOption(uint16(1)), OptUint16},
		{NewOption(uint32(1)), OptUint32},
		{NewOption(uint64(1)), OptUint64},
		{NewOption(float32(1)), OptFloat},
		{NewOption(float64(1)), OptDouble},
		{NewOption("x"), OptString},
		{NewOption([]string{"a", "b"}), OptStrings},
		{NewOption(NewData(DTypeFloat32, 2)), OptData},
		{OptionUserPtr(struct{ X int }{1}), OptUserPtr},
	}
	for i, c := range cases {
		if c.opt.Type() != c.want {
			t.Fatalf("case %d: type %v want %v", i, c.opt.Type(), c.want)
		}
		if !c.opt.HasValue() {
			t.Fatalf("case %d: missing value", i)
		}
	}
	var unset Option
	if unset.Type() != OptUnset || unset.HasValue() {
		t.Fatal("zero Option should be unset")
	}
	typed := TypedOption(OptDouble)
	if typed.Type() != OptDouble || typed.HasValue() {
		t.Fatal("TypedOption should carry a type but no value")
	}
}

func TestImplicitCastWidening(t *testing.T) {
	// int8 -> int16/32/64 implicit, never the reverse.
	small := NewOption(int8(5))
	for _, to := range []OptionType{OptInt16, OptInt32, OptInt64} {
		if _, ok := small.Cast(to, CastImplicit); !ok {
			t.Fatalf("int8 -> %v should be implicit", to)
		}
	}
	big := NewOption(int64(5))
	if _, ok := big.Cast(OptInt8, CastImplicit); ok {
		t.Fatal("int64 -> int8 must not be implicit")
	}
	if got, ok := big.Cast(OptInt8, CastExplicit); !ok || got.Value().(int8) != 5 {
		t.Fatal("int64(5) -> int8 should cast explicitly")
	}
	if _, ok := NewOption(int64(300)).Cast(OptInt8, CastExplicit); ok {
		t.Fatal("int64(300) must not fit int8")
	}
}

func TestSignednessRules(t *testing.T) {
	if _, ok := NewOption(int32(-1)).Cast(OptUint32, CastImplicit); ok {
		t.Fatal("signed -> unsigned must not be implicit")
	}
	if _, ok := NewOption(int32(-1)).Cast(OptUint32, CastExplicit); ok {
		t.Fatal("negative value must never cast to unsigned")
	}
	if _, ok := NewOption(uint32(7)).Cast(OptInt64, CastImplicit); !ok {
		t.Fatal("uint32 -> int64 is a safe widening")
	}
	if _, ok := NewOption(uint32(7)).Cast(OptInt32, CastImplicit); ok {
		t.Fatal("uint32 -> int32 must not be implicit (range mismatch)")
	}
	if _, ok := NewOption(uint32(7)).Cast(OptInt32, CastExplicit); !ok {
		t.Fatal("uint32(7) -> int32 fits explicitly")
	}
}

func TestFloatCasts(t *testing.T) {
	if got, ok := NewOption(float32(1.5)).Cast(OptDouble, CastImplicit); !ok || got.Value().(float64) != 1.5 {
		t.Fatal("float32 -> double should be implicit")
	}
	// Double -> float loses precision: requires special.
	if _, ok := NewOption(1.0000000001).Cast(OptFloat, CastExplicit); ok {
		t.Fatal("lossy double -> float must not be explicit")
	}
	if _, ok := NewOption(1.0000000001).Cast(OptFloat, CastSpecial); !ok {
		t.Fatal("lossy double -> float allowed as special")
	}
	if got, ok := NewOption(1.5).Cast(OptFloat, CastImplicit); !ok || got.Value().(float32) != 1.5 {
		t.Fatal("exactly representable double -> float is implicit")
	}
	// Fractional float never casts to int.
	if _, ok := NewOption(1.5).Cast(OptInt32, CastSpecial); ok {
		t.Fatal("1.5 must not cast to int32")
	}
	if got, ok := NewOption(3.0).Cast(OptInt32, CastExplicit); !ok || got.Value().(int32) != 3 {
		t.Fatal("3.0 -> int32 should cast explicitly")
	}
	if _, ok := NewOption(3.0).Cast(OptInt32, CastImplicit); ok {
		t.Fatal("float -> int must not be implicit")
	}
}

func TestStringCasts(t *testing.T) {
	if got, ok := NewOption("42").Cast(OptInt32, CastSpecial); !ok || got.Value().(int32) != 42 {
		t.Fatal("string -> int32 special cast failed")
	}
	if _, ok := NewOption("42").Cast(OptInt32, CastExplicit); ok {
		t.Fatal("string parse must require special")
	}
	if got, ok := NewOption("1e-3").Cast(OptDouble, CastSpecial); !ok || got.Value().(float64) != 1e-3 {
		t.Fatal("string -> double failed")
	}
	if _, ok := NewOption("abc").Cast(OptDouble, CastSpecial); ok {
		t.Fatal("non-numeric string should not parse")
	}
	if got, ok := NewOption(int32(-7)).Cast(OptString, CastSpecial); !ok || got.Value().(string) != "-7" {
		t.Fatal("int -> string failed")
	}
	if got, ok := NewOption("a").Cast(OptStrings, CastImplicit); !ok || got.Value().([]string)[0] != "a" {
		t.Fatal("string -> strings failed")
	}
	if got, ok := NewOption([]string{"only"}).Cast(OptString, CastExplicit); !ok || got.Value().(string) != "only" {
		t.Fatal("singleton strings -> string failed")
	}
	if _, ok := NewOption([]string{"a", "b"}).Cast(OptString, CastExplicit); ok {
		t.Fatal("multi strings -> string must fail")
	}
}

func TestCastLatticeProperty(t *testing.T) {
	// Implicit ⊂ Explicit ⊂ Special: anything castable at a lower level
	// is castable at every higher level with the same value.
	types := []OptionType{OptInt8, OptInt16, OptInt32, OptInt64, OptUint8,
		OptUint16, OptUint32, OptUint64, OptFloat, OptDouble, OptString}
	f := func(raw int32, ti, tj uint8) bool {
		src := makeIntOption(OptInt32, int64(raw))
		from := types[int(ti)%len(types)]
		to := types[int(tj)%len(types)]
		srcOpt, ok := src.Cast(from, CastSpecial)
		if !ok {
			return true
		}
		imp, okImp := srcOpt.Cast(to, CastImplicit)
		exp, okExp := srcOpt.Cast(to, CastExplicit)
		spc, okSpc := srcOpt.Cast(to, CastSpecial)
		if okImp && (!okExp || !okSpc) {
			return false
		}
		if okExp && !okSpc {
			return false
		}
		if okImp && okExp && imp.Value() != exp.Value() {
			return false
		}
		_ = spc
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripThroughCastProperty(t *testing.T) {
	// Casting any in-range int value to a wider type and back preserves it.
	f := func(v int16) bool {
		opt := NewOption(v)
		wide, ok := opt.Cast(OptInt64, CastImplicit)
		if !ok {
			return false
		}
		back, ok := wide.Cast(OptInt16, CastExplicit)
		return ok && back.Value().(int16) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64LargeValues(t *testing.T) {
	huge := NewOption(uint64(math.MaxUint64))
	if _, ok := huge.Cast(OptInt64, CastExplicit); ok {
		t.Fatal("MaxUint64 must not cast to int64")
	}
	if got, ok := huge.Cast(OptString, CastSpecial); !ok || got.Value().(string) != "18446744073709551615" {
		t.Fatalf("MaxUint64 -> string: %v %v", got, ok)
	}
	if got, ok := NewOption("18446744073709551615").Cast(OptUint64, CastSpecial); !ok || got.Value().(uint64) != math.MaxUint64 {
		t.Fatal("string -> MaxUint64 failed")
	}
}

func TestOptionsAccessors(t *testing.T) {
	o := NewOptions()
	o.SetValue("a", int32(1))
	o.SetValue("b", 2.5)
	o.SetValue("c", "hi")
	o.SetValue("d", []string{"x", "y"})
	o.SetType("e", OptDouble)

	if v, err := o.GetInt64("a"); err != nil || v != 1 {
		t.Fatalf("GetInt64: %v %v", v, err)
	}
	if v, err := o.GetFloat64("b"); err != nil || v != 2.5 {
		t.Fatalf("GetFloat64: %v %v", v, err)
	}
	if v, err := o.GetString("c"); err != nil || v != "hi" {
		t.Fatalf("GetString: %v %v", v, err)
	}
	if v, err := o.GetStrings("d"); err != nil || len(v) != 2 {
		t.Fatalf("GetStrings: %v %v", v, err)
	}
	if _, err := o.GetFloat64("e"); err == nil {
		t.Fatal("typed-but-unset option should report missing")
	}
	if _, err := o.GetFloat64("zzz"); err == nil {
		t.Fatal("missing key should error")
	}
	if _, err := o.GetString("a"); err == nil {
		t.Fatal("int as string should error")
	}
	keys := o.Keys()
	if len(keys) != 5 || keys[0] != "a" || keys[4] != "e" {
		t.Fatalf("keys %v", keys)
	}
	o.Delete("a")
	if o.Has("a") {
		t.Fatal("delete failed")
	}
}

func TestOptionsMergeAndClone(t *testing.T) {
	a := NewOptions().SetValue("x", int32(1)).SetValue("y", int32(2))
	b := NewOptions().SetValue("y", int32(20)).SetValue("z", int32(3))
	c := a.Clone()
	a.Merge(b)
	if v, _ := a.GetInt32("y"); v != 20 {
		t.Fatalf("merge should overwrite: %v", v)
	}
	if v, _ := a.GetInt32("z"); v != 3 {
		t.Fatal("merge missed new key")
	}
	// Clone is independent.
	if v, _ := c.GetInt32("y"); v != 2 {
		t.Fatalf("clone affected by merge: %v", v)
	}
}

func TestGetSetIdentityProperty(t *testing.T) {
	f := func(key string, v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		o := NewOptions()
		o.SetValue(key, v)
		got, err := o.GetFloat64(key)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUserPtrRoundTrip(t *testing.T) {
	type fakeComm struct{ rank int }
	o := NewOptions()
	o.Set("mpi:comm", OptionUserPtr(&fakeComm{rank: 3}))
	got, err := o.GetUserPtr("mpi:comm")
	if err != nil {
		t.Fatal(err)
	}
	if got.(*fakeComm).rank != 3 {
		t.Fatal("user pointer lost identity")
	}
	if _, err := o.GetString("mpi:comm"); err == nil {
		t.Fatal("userptr must not read as string")
	}
}
