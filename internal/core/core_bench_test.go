package core

import "testing"

// These micro-benchmarks isolate the framework layers whose cost §VI's
// macro experiment shows to be de minimis: the option store, the typed
// buffer views, the compressor wrapper, and the metrics hooks.

func BenchmarkOptionsSetGet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := NewOptions()
		o.SetValue("sz:abs_err_bound", 1e-3)
		o.SetValue("sz:error_bound_mode_str", "abs")
		if v, err := o.GetFloat64("sz:abs_err_bound"); err != nil || v != 1e-3 {
			b.Fatal("get failed")
		}
	}
}

func BenchmarkOptionCast(b *testing.B) {
	opt := NewOption(int32(42))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := opt.Cast(OptInt64, CastImplicit); !ok {
			b.Fatal("cast failed")
		}
	}
}

func BenchmarkDataTypedView(b *testing.B) {
	d := NewData(DTypeFloat32, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float32
	for i := 0; i < b.N; i++ {
		v := d.Float32s()
		sink += v[0]
	}
	_ = sink
}

func BenchmarkCompressorWrapperNoMetrics(b *testing.B) {
	c := NewCompressorFromPlugin(newFake())
	in := FromFloat32s(make([]float32, 1024), 1024)
	out := NewEmpty(DTypeByte, 0)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Compress(in, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressorWrapperWithMetrics(b *testing.B) {
	c := NewCompressorFromPlugin(newFake())
	c.SetMetrics(&recordMetric{})
	in := FromFloat32s(make([]float32, 1024), 1024)
	out := NewEmpty(DTypeByte, 0)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Compress(in, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValueRange(b *testing.B) {
	d := NewData(DTypeFloat32, 1<<16)
	v := d.Float32s()
	for i := range v {
		v[i] = float32(i % 997)
	}
	b.SetBytes(int64(d.ByteLen()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ValueRange(d)
	}
}
