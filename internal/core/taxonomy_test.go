package core

import (
	"errors"
	"fmt"
	"testing"

	"pressio/internal/trace"
)

// declPlugin is a fakePlugin whose thread-safety declaration is an arbitrary
// string, for exercising the coercion paths of Compressor.ThreadSafety.
type declPlugin struct {
	*fakePlugin
	decl    string
	declSet bool
}

func (d *declPlugin) Configuration() *Options {
	cfg := NewOptions()
	if d.declSet {
		cfg.SetValue(KeyThreadSafe, d.decl)
	}
	return cfg
}

func TestThreadSafetyDeclarations(t *testing.T) {
	for decl, want := range map[string]ThreadSafety{
		"single":     ThreadSafetySingle,
		"serialized": ThreadSafetySerialized,
		"multiple":   ThreadSafetyMultiple,
	} {
		c := NewCompressorFromPlugin(&declPlugin{fakePlugin: newFake(), decl: decl, declSet: true})
		before := trace.CounterValue(trace.CtrThreadSafetyMalformed)
		if got := c.ThreadSafety(); got != want {
			t.Errorf("declaration %q: got %v, want %v", decl, got, want)
		}
		if d := trace.CounterValue(trace.CtrThreadSafetyMalformed) - before; d != 0 {
			t.Errorf("declaration %q counted as malformed", decl)
		}
	}
}

func TestThreadSafetyMalformedCoercesToSingleAndCounts(t *testing.T) {
	for _, decl := range []string{"yes", "MULTIPLE", "thread-safe", ""} {
		c := NewCompressorFromPlugin(&declPlugin{fakePlugin: newFake(), decl: decl, declSet: true})
		before := trace.CounterValue(trace.CtrThreadSafetyMalformed)
		if got := c.ThreadSafety(); got != ThreadSafetySingle {
			t.Errorf("malformed declaration %q: got %v, want conservative single", decl, got)
		}
		if d := trace.CounterValue(trace.CtrThreadSafetyMalformed) - before; d != 1 {
			t.Errorf("malformed declaration %q: counter delta %d, want 1", decl, d)
		}
	}
}

func TestThreadSafetyUnspecifiedIsSingleNotMalformed(t *testing.T) {
	c := NewCompressorFromPlugin(&declPlugin{fakePlugin: newFake()})
	before := trace.CounterValue(trace.CtrThreadSafetyMalformed)
	if got := c.ThreadSafety(); got != ThreadSafetySingle {
		t.Errorf("unspecified declaration: got %v, want single", got)
	}
	if d := trace.CounterValue(trace.CtrThreadSafetyMalformed) - before; d != 0 {
		t.Error("unspecified declaration counted as malformed; it is legitimate")
	}
}

func TestTransientHelpers(t *testing.T) {
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	base := errors.New("disk hiccup")
	te := Transient(base)
	if !IsTransient(te) {
		t.Error("Transient-marked error not IsTransient")
	}
	if !errors.Is(te, ErrTransient) {
		t.Error("Transient-marked error does not match ErrTransient")
	}
	if !errors.Is(te, base) {
		t.Error("Transient mark hides the underlying error")
	}
	if IsTransient(base) {
		t.Error("unmarked error reported transient")
	}
	// Wrapping in more context keeps the classification.
	wrapped := fmt.Errorf("outer: %w", te)
	if !IsTransient(wrapped) {
		t.Error("fmt.Errorf wrap lost the transient mark")
	}
	// Timeouts are implicitly transient; panics are not.
	if !IsTransient(fmt.Errorf("x: %w", ErrTimeout)) {
		t.Error("ErrTimeout not transient")
	}
	if IsTransient(fmt.Errorf("x: %w", ErrPanicked)) {
		t.Error("ErrPanicked must be permanent")
	}
	// Shedding is a policy decision: the caller backs off, in-process retry
	// loops must not treat it as retryable.
	if IsTransient(fmt.Errorf("x: %w", ErrShed)) {
		t.Error("ErrShed must not be transient: immediate retries defeat load shedding")
	}
	if !errors.Is(fmt.Errorf("admission: %w: queue full", ErrShed), ErrShed) {
		t.Error("wrapped ErrShed not detectable with errors.Is")
	}
}

// transientFake fails every compress with a transient-marked error, to prove
// the classification survives the framework's wrapPlugin annotation.
type transientFake struct{ *fakePlugin }

func (f *transientFake) CompressImpl(in, out *Data) error {
	return Transient(errors.New("injected"))
}

func TestTaxonomySurvivesWrapPlugin(t *testing.T) {
	c := NewCompressorFromPlugin(&transientFake{newFake()})
	err := c.Compress(NewBytes([]byte{1, 2, 3}), NewEmpty(DTypeByte, 0))
	if err == nil {
		t.Fatal("compress should fail")
	}
	var pe *PluginError
	if !errors.As(err, &pe) || pe.Plugin != "fake" {
		t.Errorf("error %v not annotated with the plugin prefix", err)
	}
	if !IsTransient(err) {
		t.Errorf("transient classification lost through wrapPlugin: %v", err)
	}
	if !errors.Is(err, ErrTransient) {
		t.Errorf("errors.Is(err, ErrTransient) false through wrapPlugin: %v", err)
	}
}
