package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestOptionsJSONRoundTrip(t *testing.T) {
	o := NewOptions().
		SetValue("a:int", int32(-7)).
		SetValue("a:uint", uint64(1<<40)).
		SetValue("a:float", float32(1.5)).
		SetValue("a:double", 2.25).
		SetValue("a:string", "hello").
		SetValue("a:strings", []string{"x", "y"}).
		SetType("a:typed", OptDouble)
	mask := NewData(DTypeUint8, 3)
	mask.Bytes()[1] = 1
	o.Set("a:mask", NewOption(mask))

	b, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	back := NewOptions()
	if err := json.Unmarshal(b, back); err != nil {
		t.Fatal(err)
	}
	if v, _ := back.GetInt32("a:int"); v != -7 {
		t.Fatalf("int: %v", v)
	}
	if v, _ := back.GetUint64("a:uint"); v != 1<<40 {
		t.Fatalf("uint: %v", v)
	}
	if v, _ := back.GetFloat64("a:double"); v != 2.25 {
		t.Fatalf("double: %v", v)
	}
	if v, _ := back.GetString("a:string"); v != "hello" {
		t.Fatalf("string: %v", v)
	}
	if v, _ := back.GetStrings("a:strings"); len(v) != 2 || v[1] != "y" {
		t.Fatalf("strings: %v", v)
	}
	if opt, ok := back.Get("a:typed"); !ok || opt.HasValue() || opt.Type() != OptDouble {
		t.Fatalf("typed placeholder lost: %v", opt)
	}
	d, err := back.GetData("a:mask")
	if err != nil || !d.Equal(mask) {
		t.Fatalf("mask: %v %v", d, err)
	}
	fv, ok := back.Get("a:float")
	if !ok || fv.Type() != OptFloat || fv.Value().(float32) != 1.5 {
		t.Fatalf("float: %v", fv)
	}
}

func TestOptionsJSONRefusesOpaquePointers(t *testing.T) {
	// §V in code: JSON-typed configuration cannot carry an MPI_Comm-like
	// handle, so any interface built on JSON options cannot fully
	// configure compressors that need parallel resources.
	type comm struct{ rank int }
	o := NewOptions().Set("mpi:comm", OptionUserPtr(&comm{rank: 2}))
	_, err := json.Marshal(o)
	if err == nil {
		t.Fatal("marshaling an opaque pointer must fail")
	}
	if !strings.Contains(err.Error(), "opaque pointer") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestOptionsJSONBadInput(t *testing.T) {
	back := NewOptions()
	if err := json.Unmarshal([]byte(`{"k":{"type":"warp","value":1}}`), back); err == nil {
		t.Fatal("unknown type should fail")
	}
	if err := json.Unmarshal([]byte(`{"k":{"type":"int8","value":4096}}`), back); err == nil {
		t.Fatal("out-of-range int8 should fail")
	}
	if err := json.Unmarshal([]byte(`{"k":{"type":"userptr","value":{}}}`), back); err == nil {
		t.Fatal("userptr should fail to deserialize")
	}
	if err := json.Unmarshal([]byte(`not json`), back); err == nil {
		t.Fatal("garbage should fail")
	}
}
