package core

import (
	"errors"
	"fmt"
	"testing"
)

// fakePlugin is a minimal in-package compressor used to exercise the
// framework wrapper without importing plugin packages (which would create
// an import cycle).
type fakePlugin struct {
	opts       *Options
	compressN  int
	failNext   bool
	threadSafe ThreadSafety
}

func newFake() *fakePlugin {
	return &fakePlugin{opts: NewOptions().SetValue("fake:level", int32(1)), threadSafe: ThreadSafetyMultiple}
}

func (f *fakePlugin) Prefix() string    { return "fake" }
func (f *fakePlugin) Version() string   { return "0.0.1" }
func (f *fakePlugin) Options() *Options { return f.opts.Clone() }

func (f *fakePlugin) SetOptions(o *Options) error {
	if v, err := o.GetInt32("fake:level"); err == nil {
		if v < 0 {
			return fmt.Errorf("%w: fake:level", ErrInvalidOption)
		}
		f.opts.SetValue("fake:level", v)
	}
	return nil
}

func (f *fakePlugin) CheckOptions(o *Options) error {
	clone := *f
	clone.opts = f.opts.Clone()
	return clone.SetOptions(o)
}

func (f *fakePlugin) Configuration() *Options {
	return StandardConfiguration(f.threadSafe, "stable", "0.0.1", false)
}

func (f *fakePlugin) CompressImpl(in, out *Data) error {
	f.compressN++
	if f.failNext {
		f.failNext = false
		return errors.New("boom")
	}
	out.Become(NewBytes(append([]byte(nil), in.Bytes()...)))
	return nil
}

func (f *fakePlugin) DecompressImpl(in, out *Data) error {
	return FillDecompressed(out, append([]byte(nil), in.Bytes()...))
}

func (f *fakePlugin) Clone() CompressorPlugin {
	clone := *f
	clone.opts = f.opts.Clone()
	return &clone
}

// recordMetric counts hook invocations.
type recordMetric struct {
	begins, ends int
	sawError     bool
}

func (m *recordMetric) Prefix() string              { return "record" }
func (m *recordMetric) Options() *Options           { return NewOptions() }
func (m *recordMetric) SetOptions(o *Options) error { return nil }
func (m *recordMetric) BeginCompress(in *Data)      { m.begins++ }
func (m *recordMetric) EndCompress(in, out *Data, err error) {
	m.ends++
	if err != nil {
		m.sawError = true
	}
}
func (m *recordMetric) BeginDecompress(in *Data)             { m.begins++ }
func (m *recordMetric) EndDecompress(in, out *Data, e error) { m.ends++ }
func (m *recordMetric) Results() *Options {
	return NewOptions().SetValue("record:begins", int32(m.begins))
}
func (m *recordMetric) Clone() Metric { return &recordMetric{} }

func TestCompressorWrapperRoundTrip(t *testing.T) {
	c := NewCompressorFromPlugin(newFake())
	in := FromFloat32s([]float32{1, 2, 3}, 3)
	comp, err := Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(c, comp, DTypeFloat32, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(in) {
		t.Fatal("fake round trip failed")
	}
}

func TestNilDataRejected(t *testing.T) {
	c := NewCompressorFromPlugin(newFake())
	out := NewEmpty(DTypeByte, 0)
	if err := c.Compress(nil, out); !errors.Is(err, ErrNilData) {
		t.Fatalf("nil in: %v", err)
	}
	if err := c.Compress(NewEmpty(DTypeFloat32, 3), out); !errors.Is(err, ErrNilData) {
		t.Fatalf("empty in: %v", err)
	}
	if err := c.Compress(FromFloat32s([]float32{1}), nil); !errors.Is(err, ErrNilData) {
		t.Fatalf("nil out: %v", err)
	}
}

func TestErrorsCarryPluginName(t *testing.T) {
	p := newFake()
	p.failNext = true
	c := NewCompressorFromPlugin(p)
	err := c.Compress(FromFloat32s([]float32{1}), NewEmpty(DTypeByte, 0))
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *PluginError
	if !errors.As(err, &pe) || pe.Plugin != "fake" {
		t.Fatalf("error not annotated: %v", err)
	}
}

func TestMetricsHooksFireAroundCalls(t *testing.T) {
	p := newFake()
	c := NewCompressorFromPlugin(p)
	m := &recordMetric{}
	c.SetMetrics(m)
	in := FromFloat32s([]float32{1, 2})
	comp, err := Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(c, comp, DTypeFloat32, 2); err != nil {
		t.Fatal(err)
	}
	if m.begins != 2 || m.ends != 2 {
		t.Fatalf("hooks: %d begins %d ends", m.begins, m.ends)
	}
	// Hooks fire on error too.
	p.failNext = true
	_ = c.Compress(in, NewEmpty(DTypeByte, 0))
	if !m.sawError {
		t.Fatal("EndCompress did not observe the error")
	}
	if v, _ := c.MetricsResults().GetInt32("record:begins"); v != 3 {
		t.Fatalf("results: %v", v)
	}
}

func TestCloneIsolatesOptionsAndMetrics(t *testing.T) {
	c := NewCompressorFromPlugin(newFake())
	c.SetMetrics(&recordMetric{})
	clone := c.Clone()
	if err := clone.SetOptions(NewOptions().SetValue("fake:level", int32(9))); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Options().GetInt32("fake:level"); v != 1 {
		t.Fatalf("clone options leaked to original: %v", v)
	}
	in := FromFloat32s([]float32{1})
	if _, err := Compress(clone, in); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.MetricsResults().GetInt32("record:begins"); v != 0 {
		t.Fatal("clone metrics leaked to original")
	}
}

func TestCheckOptionsDoesNotMutate(t *testing.T) {
	c := NewCompressorFromPlugin(newFake())
	if err := c.CheckOptions(NewOptions().SetValue("fake:level", int32(-1))); err == nil {
		t.Fatal("expected validation failure")
	}
	if err := c.CheckOptions(NewOptions().SetValue("fake:level", int32(7))); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Options().GetInt32("fake:level"); v != 1 {
		t.Fatalf("CheckOptions mutated: %v", v)
	}
}

func TestThreadSafetyReporting(t *testing.T) {
	p := newFake()
	p.threadSafe = ThreadSafetySerialized
	c := NewCompressorFromPlugin(p)
	if got := c.ThreadSafety(); got != ThreadSafetySerialized {
		t.Fatalf("thread safety %v", got)
	}
	for _, ts := range []ThreadSafety{ThreadSafetySingle, ThreadSafetySerialized, ThreadSafetyMultiple} {
		if ts.String() == "" {
			t.Fatal("empty name")
		}
	}
}

func TestRegistryUnknownNames(t *testing.T) {
	if _, err := NewCompressor("definitely_not_registered"); !errors.Is(err, ErrUnknownPlugin) {
		t.Fatalf("unknown compressor: %v", err)
	}
	if _, err := NewMetric("definitely_not_registered"); !errors.Is(err, ErrUnknownPlugin) {
		t.Fatalf("unknown metric: %v", err)
	}
	if _, err := NewIO("definitely_not_registered"); !errors.Is(err, ErrUnknownPlugin) {
		t.Fatalf("unknown io: %v", err)
	}
}

func TestThirdPartyRegistration(t *testing.T) {
	// Registering from outside the framework's own packages is the
	// third-party extension mechanism; duplicate names panic.
	RegisterCompressor("thirdparty_test", func() CompressorPlugin { return newFake() })
	c, err := NewCompressor("thirdparty_test")
	if err != nil || c.Prefix() != "fake" {
		t.Fatalf("third party plugin: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	RegisterCompressor("thirdparty_test", func() CompressorPlugin { return newFake() })
}

func TestErrorBoundModeParsing(t *testing.T) {
	if m, err := ParseErrorBoundMode("abs"); err != nil || m != BoundAbs {
		t.Fatal("abs parse failed")
	}
	if m, err := ParseErrorBoundMode("rel"); err != nil || m != BoundValueRangeRel {
		t.Fatal("rel parse failed")
	}
	if _, err := ParseErrorBoundMode("psnr"); err == nil {
		t.Fatal("expected unknown mode error")
	}
	if BoundAbs.String() != "abs" || BoundValueRangeRel.String() != "rel" {
		t.Fatal("mode names wrong")
	}
}

func TestBoundConfigApplyAndDescribe(t *testing.T) {
	b := BoundConfig{Mode: BoundAbs, Bound: 0.5}
	o := NewOptions().SetValue(KeyRel, 1e-3)
	if err := b.ApplyOptions("x", o); err != nil {
		t.Fatal(err)
	}
	if b.Mode != BoundValueRangeRel || b.Bound != 1e-3 {
		t.Fatalf("apply rel: %+v", b)
	}
	o2 := NewOptions().SetValue("x:abs_err_bound", 0.25)
	if err := b.ApplyOptions("x", o2); err != nil {
		t.Fatal(err)
	}
	if b.Mode != BoundAbs || b.Bound != 0.25 {
		t.Fatalf("apply prefix abs: %+v", b)
	}
	desc := NewOptions()
	b.Describe("x", desc)
	if v, _ := desc.GetFloat64("x:abs_err_bound"); v != 0.25 {
		t.Fatal("describe missed bound")
	}
	if s, _ := desc.GetString("x:error_bound_mode_str"); s != "abs" {
		t.Fatal("describe missed mode")
	}
}
