package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDataShapes(t *testing.T) {
	d := NewData(DTypeFloat64, 3, 4, 5)
	if d.Len() != 60 || d.ByteLen() != 480 || d.NumDims() != 3 {
		t.Fatalf("shape bookkeeping: %v", d)
	}
	if !d.HasData() {
		t.Fatal("NewData should allocate")
	}
	e := NewEmpty(DTypeFloat32, 2, 2)
	if e.HasData() || e.Len() != 4 {
		t.Fatalf("empty: %v", e)
	}
}

func TestTypedViewsRoundTrip(t *testing.T) {
	d := NewData(DTypeFloat32, 4)
	v := d.Float32s()
	v[0], v[3] = 1.5, -2.5
	if d.Float32s()[0] != 1.5 || d.Float32s()[3] != -2.5 {
		t.Fatal("view does not alias storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-type view must panic")
		}
	}()
	_ = d.Float64s()
}

func TestFromSlicesZeroCopy(t *testing.T) {
	vals := []float64{1, 2, 3}
	d := FromFloat64s(vals)
	d.Float64s()[1] = 42
	if vals[1] != 42 {
		t.Fatal("FromFloat64s should not copy")
	}
	if d.NumDims() != 1 || d.Dims()[0] != 3 {
		t.Fatalf("default dims: %v", d.Dims())
	}
}

func TestMisalignedViewRealigns(t *testing.T) {
	// Build a deliberately misaligned byte buffer.
	raw := make([]byte, 33)
	buf := raw[1:33] // offset by 1: misaligned for float64
	for i := range buf {
		buf[i] = byte(i)
	}
	d, err := NewMove(DTypeFloat64, buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	v := d.Float64s() // must not fault; realigns by copying
	if len(v) != 4 {
		t.Fatalf("view len %d", len(v))
	}
	// Contents preserved bit-for-bit.
	b2 := d.Bytes()
	for i := range buf {
		if b2[i] != buf[i] {
			t.Fatalf("realign corrupted byte %d", i)
		}
	}
}

func TestNewMoveValidatesSize(t *testing.T) {
	if _, err := NewMove(DTypeFloat32, make([]byte, 10), 3); err == nil {
		t.Fatal("10 bytes is not 3 float32s")
	}
	if _, err := NewMove(DTypeFloat32, make([]byte, 12), 3); err != nil {
		t.Fatal(err)
	}
}

func TestReshape(t *testing.T) {
	d := NewData(DTypeInt32, 6)
	if err := d.Reshape(2, 3); err != nil {
		t.Fatal(err)
	}
	if d.NumDims() != 2 || d.Dims()[0] != 2 {
		t.Fatalf("dims %v", d.Dims())
	}
	if err := d.Reshape(4, 4); err == nil {
		t.Fatal("reshape to wrong size must fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := FromFloat32s([]float32{1, 2, 3})
	c := d.Clone()
	c.Float32s()[0] = 99
	if d.Float32s()[0] != 1 {
		t.Fatal("clone shares storage")
	}
	if !d.Equal(d.Clone()) {
		t.Fatal("clone should compare equal")
	}
}

func TestEqualSemantics(t *testing.T) {
	a := FromFloat32s([]float32{1, 2, 3, 4}, 2, 2)
	b := FromFloat32s([]float32{1, 2, 3, 4}, 4)
	if a.Equal(b) {
		t.Fatal("different shapes must not be equal")
	}
	c := FromFloat32s([]float32{1, 2, 3, 5}, 2, 2)
	if a.Equal(c) {
		t.Fatal("different contents must not be equal")
	}
}

func TestCastToRoundsAndConverts(t *testing.T) {
	d := FromFloat64s([]float64{1.4, 2.5, -3.6})
	i32, err := d.CastTo(DTypeInt32)
	if err != nil {
		t.Fatal(err)
	}
	got := i32.Int32s()
	// RoundToEven: 1.4->1, 2.5->2, -3.6->-4
	if got[0] != 1 || got[1] != 2 || got[2] != -4 {
		t.Fatalf("cast values %v", got)
	}
	f32, err := d.CastTo(DTypeFloat32)
	if err != nil {
		t.Fatal(err)
	}
	if f32.Float32s()[0] != 1.4 {
		t.Fatalf("cast to f32: %v", f32.Float32s())
	}
}

func TestAsFloat64sAllTypes(t *testing.T) {
	for _, dt := range DTypes() {
		if dt == DTypeByte {
			continue
		}
		d := NewData(dt, 4)
		vals := d.AsFloat64s()
		if len(vals) != 4 {
			t.Fatalf("%v: len %d", dt, len(vals))
		}
		for _, v := range vals {
			if v != 0 {
				t.Fatalf("%v: zero data gave %v", dt, v)
			}
		}
	}
}

func TestValueRange(t *testing.T) {
	d := FromFloat32s([]float32{3, -1, float32(math.NaN()), 7, 2})
	lo, hi := ValueRange(d)
	if lo != -1 || hi != 7 {
		t.Fatalf("range [%v, %v]", lo, hi)
	}
	empty := FromFloat32s([]float32{})
	lo, hi = ValueRange(empty)
	if lo != 0 || hi != 0 {
		t.Fatalf("empty range [%v, %v]", lo, hi)
	}
}

func TestResolveAbsBound(t *testing.T) {
	d := FromFloat64s([]float64{0, 10})
	if got := ResolveAbsBound(d, BoundAbs, 0.5); got != 0.5 {
		t.Fatalf("abs: %v", got)
	}
	if got := ResolveAbsBound(d, BoundValueRangeRel, 0.01); got != 0.1 {
		t.Fatalf("rel: %v", got)
	}
}

func TestReshapeClonePropertyLaws(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		d := FromFloat64s(vals)
		c := d.Clone()
		// Clone equality and reshape identity.
		if !c.Equal(d) {
			return false
		}
		if err := c.Reshape(uint64(len(vals))); err != nil {
			return false
		}
		return c.Equal(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDTypeParsing(t *testing.T) {
	for _, dt := range DTypes() {
		got, err := ParseDType(dt.String())
		if err != nil || got != dt {
			t.Fatalf("%v: parse(%q) = %v, %v", dt, dt.String(), got, err)
		}
	}
	if _, err := ParseDType("quaternion"); err == nil {
		t.Fatal("expected parse error")
	}
	if dt, _ := ParseDType("double"); dt != DTypeFloat64 {
		t.Fatal("alias double failed")
	}
	if DTypeFloat32.Size() != 4 || DTypeInt64.Size() != 8 || DTypeByte.Size() != 1 {
		t.Fatal("sizes wrong")
	}
	if !DTypeFloat32.Float() || DTypeInt32.Float() {
		t.Fatal("Float() wrong")
	}
	if !DTypeInt8.Signed() || DTypeUint8.Signed() {
		t.Fatal("Signed() wrong")
	}
}

func TestFillDecompressed(t *testing.T) {
	out := NewEmpty(DTypeFloat32, 2, 2)
	raw := make([]byte, 16)
	if err := FillDecompressed(out, raw); err != nil {
		t.Fatal(err)
	}
	if out.DType() != DTypeFloat32 || out.NumDims() != 2 {
		t.Fatalf("hint not honored: %v", out)
	}
	// Size mismatch falls back to bytes.
	out2 := NewEmpty(DTypeFloat32, 100)
	if err := FillDecompressed(out2, raw); err != nil {
		t.Fatal(err)
	}
	if out2.DType() != DTypeByte {
		t.Fatalf("fallback: %v", out2)
	}
}
