package core

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
)

// jsonOption is the wire form of one option.
type jsonOption struct {
	Type  string          `json:"type"`
	Value json.RawMessage `json:"value,omitempty"`
}

type jsonData struct {
	DType string   `json:"dtype"`
	Dims  []uint64 `json:"dims"`
	B64   string   `json:"data"`
}

// MarshalJSON serializes the option set. It fails for OptUserPtr entries:
// opaque native handles (an MPI communicator, a device queue) have no JSON
// representation — exactly why §V argues JSON-typed configuration cannot
// fully configure modern compressors. Callers who need to ship options
// across a boundary must strip such entries deliberately.
func (o *Options) MarshalJSON() ([]byte, error) {
	out := make(map[string]jsonOption, o.Len())
	for _, k := range o.Keys() {
		opt, _ := o.Get(k)
		j := jsonOption{Type: opt.Type().String()}
		if opt.HasValue() {
			switch opt.Type() {
			case OptUserPtr:
				return nil, fmt.Errorf("%w: option %q holds an opaque pointer (%T) that cannot be serialized as JSON",
					ErrInvalidOption, k, opt.Value())
			case OptData:
				d := opt.Value().(*Data)
				raw, err := json.Marshal(jsonData{
					DType: d.DType().String(),
					Dims:  d.Dims(),
					B64:   base64.StdEncoding.EncodeToString(d.Bytes()),
				})
				if err != nil {
					return nil, err
				}
				j.Value = raw
			default:
				raw, err := json.Marshal(opt.Value())
				if err != nil {
					return nil, err
				}
				j.Value = raw
			}
		}
		out[k] = j
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores an option set serialized by MarshalJSON.
func (o *Options) UnmarshalJSON(b []byte) error {
	var raw map[string]jsonOption
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	if o.m == nil {
		o.m = make(map[string]Option, len(raw))
	}
	for k, j := range raw {
		typ, err := parseOptionType(j.Type)
		if err != nil {
			return fmt.Errorf("option %q: %w", k, err)
		}
		if len(j.Value) == 0 {
			o.Set(k, TypedOption(typ))
			continue
		}
		opt, err := unmarshalValue(typ, j.Value)
		if err != nil {
			return fmt.Errorf("option %q: %w", k, err)
		}
		o.Set(k, opt)
	}
	return nil
}

func parseOptionType(s string) (OptionType, error) {
	for t, name := range optionTypeNames {
		if name == s {
			return t, nil
		}
	}
	return OptUnset, fmt.Errorf("%w: unknown option type %q", ErrInvalidOption, s)
}

func unmarshalValue(typ OptionType, raw json.RawMessage) (Option, error) {
	switch typ {
	case OptInt8, OptInt16, OptInt32, OptInt64:
		var v int64
		if err := json.Unmarshal(raw, &v); err != nil {
			return Option{}, err
		}
		opt, ok := NewOption(v).Cast(typ, CastExplicit)
		if !ok {
			return Option{}, fmt.Errorf("%w: %d does not fit %s", ErrInvalidOption, v, typ)
		}
		return opt, nil
	case OptUint8, OptUint16, OptUint32, OptUint64:
		var v uint64
		if err := json.Unmarshal(raw, &v); err != nil {
			return Option{}, err
		}
		opt, ok := NewOption(v).Cast(typ, CastExplicit)
		if !ok {
			return Option{}, fmt.Errorf("%w: %d does not fit %s", ErrInvalidOption, v, typ)
		}
		return opt, nil
	case OptFloat:
		var v float64
		if err := json.Unmarshal(raw, &v); err != nil {
			return Option{}, err
		}
		return NewOption(float32(v)), nil
	case OptDouble:
		var v float64
		if err := json.Unmarshal(raw, &v); err != nil {
			return Option{}, err
		}
		return NewOption(v), nil
	case OptString:
		var v string
		if err := json.Unmarshal(raw, &v); err != nil {
			return Option{}, err
		}
		return NewOption(v), nil
	case OptStrings:
		var v []string
		if err := json.Unmarshal(raw, &v); err != nil {
			return Option{}, err
		}
		return NewOption(v), nil
	case OptData:
		var jd jsonData
		if err := json.Unmarshal(raw, &jd); err != nil {
			return Option{}, err
		}
		dt, err := ParseDType(jd.DType)
		if err != nil {
			return Option{}, err
		}
		buf, err := base64.StdEncoding.DecodeString(jd.B64)
		if err != nil {
			return Option{}, err
		}
		d, err := NewMove(dt, buf, jd.Dims...)
		if err != nil {
			return Option{}, err
		}
		return NewOption(d), nil
	case OptUserPtr:
		return Option{}, fmt.Errorf("%w: opaque pointers cannot be deserialized from JSON", ErrInvalidOption)
	default:
		return Option{}, fmt.Errorf("%w: cannot deserialize %s", ErrInvalidOption, typ)
	}
}
