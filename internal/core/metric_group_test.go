package core

import (
	"errors"
	"testing"
)

// probeMetric is a configurable member for MetricsGroup tests: it records
// every hook call (including the error values the wrapper passed through),
// reports results under its own prefix, and can be made to fail SetOptions.
type probeMetric struct {
	prefix     string
	begins     int
	ends       int
	hookErrs   []error
	setErr     error
	setCalls   int
	cloneCount int
}

func (m *probeMetric) Prefix() string         { return m.prefix }
func (m *probeMetric) Options() *Options      { return NewOptions() }
func (m *probeMetric) BeginCompress(in *Data) { m.begins++ }
func (m *probeMetric) EndCompress(in, out *Data, err error) {
	m.ends++
	m.hookErrs = append(m.hookErrs, err)
}
func (m *probeMetric) BeginDecompress(in *Data) { m.begins++ }
func (m *probeMetric) EndDecompress(in, out *Data, err error) {
	m.ends++
	m.hookErrs = append(m.hookErrs, err)
}

func (m *probeMetric) SetOptions(*Options) error {
	m.setCalls++
	return m.setErr
}

func (m *probeMetric) Results() *Options {
	return NewOptions().
		SetValue(m.prefix+":begins", int32(m.begins)).
		SetValue("shared:winner", m.prefix)
}

func (m *probeMetric) Clone() Metric {
	m.cloneCount++
	return &probeMetric{prefix: m.prefix, setErr: m.setErr}
}

// TestMetricsGroupCloneIndependence checks both directions: state the group
// accumulates before cloning must not appear in the clone, and hooks run on
// the clone must not leak back into the original members.
func TestMetricsGroupCloneIndependence(t *testing.T) {
	a := &probeMetric{prefix: "a"}
	b := &probeMetric{prefix: "b"}
	g := NewMetricsGroup(a, b)

	in := FromFloat32s([]float32{1, 2, 3})
	out := NewBytes([]byte{9})
	g.BeginCompress(in)
	g.EndCompress(in, out, nil)

	clone := g.Clone().(*MetricsGroup)
	if got := len(clone.Members()); got != 2 {
		t.Fatalf("clone has %d members, want 2", got)
	}
	for i, m := range clone.Members() {
		pm := m.(*probeMetric)
		if pm.begins != 0 || pm.ends != 0 {
			t.Fatalf("clone member %d inherited state: begins=%d ends=%d", i, pm.begins, pm.ends)
		}
		if pm == g.Members()[i].(*probeMetric) {
			t.Fatalf("clone member %d aliases the original", i)
		}
	}

	// Drive the clone; the originals must stay where they were.
	clone.BeginDecompress(out)
	clone.EndDecompress(out, in, nil)
	if a.begins != 1 || a.ends != 1 || b.begins != 1 || b.ends != 1 {
		t.Fatalf("clone hooks leaked into originals: a=%d/%d b=%d/%d",
			a.begins, a.ends, b.begins, b.ends)
	}
	if c := clone.Members()[0].(*probeMetric); c.begins != 1 || c.ends != 1 {
		t.Fatalf("clone did not record its own hooks: %d/%d", c.begins, c.ends)
	}
}

// TestMetricsGroupResultsMergeOrdering pins the merge contract: members are
// merged in composition order, so on a key collision the later member wins,
// while distinct prefixes all survive.
func TestMetricsGroupResultsMergeOrdering(t *testing.T) {
	a := &probeMetric{prefix: "a"}
	b := &probeMetric{prefix: "b"}
	g := NewMetricsGroup(a, b)
	g.BeginCompress(FromFloat32s([]float32{1}))
	// Drive one member directly so the two report different values and the
	// merged map provably kept both prefixes.
	a.BeginCompress(nil)

	res := g.Results()
	if v, err := res.GetInt32("a:begins"); err != nil || v != 2 {
		t.Fatalf("a:begins = %d (%v)", v, err)
	}
	if v, err := res.GetInt32("b:begins"); err != nil || v != 1 {
		t.Fatalf("b:begins = %d (%v)", v, err)
	}
	// Both members write "shared:winner"; composition order says b wins.
	if v, err := res.GetString("shared:winner"); err != nil || v != "b" {
		t.Fatalf("shared:winner = %q (%v), want \"b\"", v, err)
	}

	// Reversing the composition reverses the collision winner.
	rev := NewMetricsGroup(b, a).Results()
	if v, err := rev.GetString("shared:winner"); err != nil || v != "a" {
		t.Fatalf("reversed shared:winner = %q (%v), want \"a\"", v, err)
	}
}

// TestMetricsGroupHookFanOutOnError checks two error paths: a compression
// error passed to End hooks reaches every member verbatim, and a member
// whose SetOptions fails stops the forwarding loop with its error.
func TestMetricsGroupHookFanOutOnError(t *testing.T) {
	a := &probeMetric{prefix: "a"}
	b := &probeMetric{prefix: "b"}
	c := &probeMetric{prefix: "c"}
	g := NewMetricsGroup(a, b, c)

	in := FromFloat32s([]float32{1})
	wantErr := errors.New("codec exploded")
	g.BeginCompress(in)
	g.EndCompress(in, nil, wantErr)
	for _, m := range []*probeMetric{a, b, c} {
		if m.begins != 1 || m.ends != 1 {
			t.Fatalf("member %s missed hooks: begins=%d ends=%d", m.prefix, m.begins, m.ends)
		}
		if len(m.hookErrs) != 1 || !errors.Is(m.hookErrs[0], wantErr) {
			t.Fatalf("member %s did not observe the compression error: %v", m.prefix, m.hookErrs)
		}
	}

	// SetOptions: the failing member's error surfaces and later members are
	// not configured (fail-fast forwarding).
	b.setErr = errors.New("bad option")
	err := g.SetOptions(NewOptions().SetValue("x", int32(1)))
	if !errors.Is(err, b.setErr) {
		t.Fatalf("SetOptions error = %v, want %v", err, b.setErr)
	}
	if a.setCalls != 1 || b.setCalls != 1 || c.setCalls != 0 {
		t.Fatalf("fail-fast forwarding broken: a=%d b=%d c=%d",
			a.setCalls, b.setCalls, c.setCalls)
	}
}
