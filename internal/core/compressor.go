package core

import (
	"fmt"
	"time"

	"pressio/internal/trace"
)

// ThreadSafety describes the concurrency contract of a plugin instance,
// mirroring pressio_thread_safety. It is reported through Configuration()
// under the key "pressio:thread_safe" so parallel runtimes (e.g. the
// chunking meta-compressor) can decide whether they must clone or serialize.
type ThreadSafety int

const (
	// ThreadSafetySingle means only one thread may use the whole plugin
	// family at a time (e.g. a compressor backed by process-global state).
	ThreadSafetySingle ThreadSafety = iota
	// ThreadSafetySerialized means concurrent instances are fine but a
	// single instance must be externally serialized.
	ThreadSafetySerialized
	// ThreadSafetyMultiple means a single instance is safe for concurrent
	// use.
	ThreadSafetyMultiple
)

// String returns the lowercase name used in configuration options.
func (t ThreadSafety) String() string {
	switch t {
	case ThreadSafetySingle:
		return "single"
	case ThreadSafetySerialized:
		return "serialized"
	case ThreadSafetyMultiple:
		return "multiple"
	default:
		return fmt.Sprintf("threadsafety(%d)", int(t))
	}
}

// Well-known configuration and option keys shared by all plugins. Plugins
// translate the generic "pressio:" keys to their native options so clients
// can switch compressors by changing a single string (the paper's "common
// options" mechanism).
const (
	// KeyThreadSafe ("pressio:thread_safe") reports a ThreadSafety string.
	KeyThreadSafe = "pressio:thread_safe"
	// KeyStability ("pressio:stability") reports "stable" or "experimental".
	KeyStability = "pressio:stability"
	// KeyVersion ("pressio:version") reports the plugin version string.
	KeyVersion = "pressio:version"
	// KeyShared ("pressio:shared_instance") reports 1 when the instance
	// shares mutable state with other instances (e.g. SZ's global config).
	KeyShared = "pressio:shared_instance"
	// KeyAbs ("pressio:abs") sets a pointwise absolute error bound.
	KeyAbs = "pressio:abs"
	// KeyRel ("pressio:rel") sets a value-range relative error bound: the
	// absolute bound is rel * (max - min) of the input.
	KeyRel = "pressio:rel"
	// KeyLossless ("pressio:lossless") selects a lossless effort level.
	KeyLossless = "pressio:lossless"
	// KeyNThreads ("pressio:nthreads") requests a degree of parallelism.
	KeyNThreads = "pressio:nthreads"
)

// CompressorPlugin is the interface compressor implementations register with
// the framework. Third parties add compressors by implementing this
// interface and calling RegisterCompressor — no framework changes needed
// (Table I's "third party extensions" feature).
//
// CompressImpl must fill out (an allocated Data, typically byte-typed) from
// in; DecompressImpl must fill out using out's dtype/dims as the shape hint.
// Implementations must treat in as const: the framework's contract is that
// inputs are never clobbered (§IV-B).
type CompressorPlugin interface {
	// Prefix returns the plugin name, which namespaces its options
	// (e.g. "sz" owns "sz:abs_err_bound").
	Prefix() string
	// Version returns the plugin's version string.
	Version() string
	// Options returns the current option values, including typed
	// placeholders for unset options, enabling introspection.
	Options() *Options
	// SetOptions applies the provided options; unknown keys are ignored so
	// one Options value can configure a whole composition of plugins.
	SetOptions(*Options) error
	// Configuration returns read-only facts: thread safety, stability,
	// enumerations of supported modes, etc.
	Configuration() *Options
	// CheckOptions validates options without applying them.
	CheckOptions(*Options) error
	// CompressImpl compresses in into out.
	CompressImpl(in, out *Data) error
	// DecompressImpl decompresses in into out (out carries the shape hint).
	DecompressImpl(in, out *Data) error
	// Clone returns an independent instance with the same configuration.
	// Instances backed by shared global state return a handle to the same
	// state and advertise it via KeyShared.
	Clone() CompressorPlugin
}

// Compressor is the user-facing handle (pressio_compressor). It wraps a
// plugin with the metrics hook points and error annotation. All client code
// — CLIs, IO filters, analysis tools — talks to this type only, which is
// what makes those clients compressor-agnostic.
type Compressor struct {
	impl    CompressorPlugin
	metrics Metric // optional; composite for multiple
}

// NewCompressorFromPlugin wraps an already-constructed plugin. Most callers
// use NewCompressor(name) instead.
func NewCompressorFromPlugin(p CompressorPlugin) *Compressor { return &Compressor{impl: p} }

// Prefix returns the plugin name.
func (c *Compressor) Prefix() string { return c.impl.Prefix() }

// Version returns the plugin version.
func (c *Compressor) Version() string { return c.impl.Version() }

// Plugin exposes the underlying implementation (for tests and native
// baselines; generic clients should not need it).
func (c *Compressor) Plugin() CompressorPlugin { return c.impl }

// Options returns the plugin's current options.
func (c *Compressor) Options() *Options { return c.impl.Options() }

// SetOptions applies options to the plugin.
func (c *Compressor) SetOptions(o *Options) error {
	return wrapPlugin(c.impl.Prefix(), c.impl.SetOptions(o))
}

// CheckOptions validates options without applying them.
func (c *Compressor) CheckOptions(o *Options) error {
	return wrapPlugin(c.impl.Prefix(), c.impl.CheckOptions(o))
}

// Configuration returns the plugin's read-only configuration.
func (c *Compressor) Configuration() *Options { return c.impl.Configuration() }

// ThreadSafety reports the plugin's declared thread safety level, defaulting
// to single when unspecified.
func (c *Compressor) ThreadSafety() ThreadSafety {
	cfg := c.impl.Configuration()
	s, err := cfg.GetString(KeyThreadSafe)
	if err != nil {
		// Unspecified is a legitimate configuration; conservatively single.
		return ThreadSafetySingle
	}
	switch s {
	case "multiple":
		return ThreadSafetyMultiple
	case "serialized":
		return ThreadSafetySerialized
	case "single":
		return ThreadSafetySingle
	default:
		// A malformed declaration also coerces to single, but is a plugin
		// bug worth surfacing: count it instead of swallowing it.
		trace.CounterAdd(trace.CtrThreadSafetyMalformed, 1)
		return ThreadSafetySingle
	}
}

// SetMetrics attaches a metrics plugin whose hooks run around every
// compress and decompress call. Pass nil to detach.
func (c *Compressor) SetMetrics(m Metric) { c.metrics = m }

// Metrics returns the attached metrics plugin (nil when none).
func (c *Compressor) Metrics() Metric { return c.metrics }

// MetricsResults gathers the attached metrics plugin's results; it returns
// an empty Options when no metrics are attached.
func (c *Compressor) MetricsResults() *Options {
	if c.metrics == nil {
		return NewOptions()
	}
	return c.metrics.Results()
}

// Compress compresses in into out. in must hold data; out must be non-nil
// (it may be an empty hint created with NewEmpty). Metrics hooks fire around
// the plugin invocation; this wrapper is the entirety of the abstraction
// overhead measured in the paper's §VI.
func (c *Compressor) Compress(in, out *Data) error {
	if in == nil || !in.HasData() {
		return wrapPlugin(c.impl.Prefix(), fmt.Errorf("%w: compress input", ErrNilData))
	}
	if out == nil {
		return wrapPlugin(c.impl.Prefix(), fmt.Errorf("%w: compress output", ErrNilData))
	}
	if trace.Enabled() {
		return c.compressTraced(in, out)
	}
	if c.metrics != nil {
		c.metrics.BeginCompress(in)
	}
	err := c.impl.CompressImpl(in, out)
	if c.metrics != nil {
		c.metrics.EndCompress(in, out, err)
	}
	return wrapPlugin(c.impl.Prefix(), err)
}

// compressTraced is the Compress path when tracing is enabled: the wrapper
// span covers everything the abstraction adds (validation, metrics hooks,
// error annotation) while the nested impl span covers only the plugin, so
// wrapper minus impl is the per-call abstraction overhead the paper's §VI
// quantifies.
func (c *Compressor) compressTraced(in, out *Data) error {
	prefix := c.impl.Prefix()
	wrapper := trace.Start("pressio.compress",
		trace.Str("plugin", prefix), trace.Uint("bytes_in", in.ByteLen()))
	trace.CounterAdd(trace.CtrCompressCalls, 1)
	trace.CounterAdd(trace.CtrCompressBytesIn, int64(in.ByteLen()))
	if c.metrics != nil {
		c.metrics.BeginCompress(in)
	}
	impl := trace.Start(prefix + ".compress_impl")
	begin := time.Now()
	err := c.impl.CompressImpl(in, out)
	trace.ObserveDuration(trace.HistCompress, time.Since(begin))
	impl.End()
	if c.metrics != nil {
		c.metrics.EndCompress(in, out, err)
	}
	if err != nil {
		trace.CounterAdd(trace.PluginErrorKey(prefix), 1)
	} else {
		trace.CounterAdd(trace.CtrCompressBytesOut, int64(out.ByteLen()))
	}
	wrapper.End()
	return wrapPlugin(prefix, err)
}

// Decompress decompresses in into out; out's dtype and dims serve as the
// shape hint exactly as in the C API.
func (c *Compressor) Decompress(in, out *Data) error {
	if in == nil || !in.HasData() {
		return wrapPlugin(c.impl.Prefix(), fmt.Errorf("%w: decompress input", ErrNilData))
	}
	if out == nil {
		return wrapPlugin(c.impl.Prefix(), fmt.Errorf("%w: decompress output", ErrNilData))
	}
	if trace.Enabled() {
		return c.decompressTraced(in, out)
	}
	if c.metrics != nil {
		c.metrics.BeginDecompress(in)
	}
	err := c.impl.DecompressImpl(in, out)
	if c.metrics != nil {
		c.metrics.EndDecompress(in, out, err)
	}
	return wrapPlugin(c.impl.Prefix(), err)
}

// decompressTraced mirrors compressTraced for the decompression direction.
func (c *Compressor) decompressTraced(in, out *Data) error {
	prefix := c.impl.Prefix()
	wrapper := trace.Start("pressio.decompress",
		trace.Str("plugin", prefix), trace.Uint("bytes_in", in.ByteLen()))
	trace.CounterAdd(trace.CtrDecompressCalls, 1)
	trace.CounterAdd(trace.CtrDecompressBytesIn, int64(in.ByteLen()))
	if c.metrics != nil {
		c.metrics.BeginDecompress(in)
	}
	impl := trace.Start(prefix + ".decompress_impl")
	begin := time.Now()
	err := c.impl.DecompressImpl(in, out)
	trace.ObserveDuration(trace.HistDecompress, time.Since(begin))
	impl.End()
	if c.metrics != nil {
		c.metrics.EndDecompress(in, out, err)
	}
	if err != nil {
		trace.CounterAdd(trace.PluginErrorKey(prefix), 1)
	} else {
		trace.CounterAdd(trace.CtrDecompressBytesOut, int64(out.ByteLen()))
	}
	wrapper.End()
	return wrapPlugin(prefix, err)
}

// Clone returns an independent handle. The metrics plugin is cloned too so
// concurrent users do not share mutable metric state.
func (c *Compressor) Clone() *Compressor {
	clone := &Compressor{impl: c.impl.Clone()}
	if c.metrics != nil {
		clone.metrics = c.metrics.Clone()
	}
	return clone
}
