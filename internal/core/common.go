package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ErrorBoundMode enumerates how a lossy compressor interprets its bound.
// Plugins expose their native modes but all understand the generic
// "pressio:abs" and "pressio:rel" options; ResolveAbsBound implements the
// shared translation.
type ErrorBoundMode int

const (
	// BoundAbs is a pointwise absolute error bound.
	BoundAbs ErrorBoundMode = iota
	// BoundValueRangeRel scales the bound by the input's value range
	// (max - min), the paper's "value range based relative error bound".
	BoundValueRangeRel
)

// String returns the mode name used in string-valued options ("abs", "rel").
func (m ErrorBoundMode) String() string {
	switch m {
	case BoundAbs:
		return "abs"
	case BoundValueRangeRel:
		return "rel"
	default:
		return fmt.Sprintf("boundmode(%d)", int(m))
	}
}

// ParseErrorBoundMode parses "abs" or "rel".
func ParseErrorBoundMode(s string) (ErrorBoundMode, error) {
	switch s {
	case "abs":
		return BoundAbs, nil
	case "rel", "vr_rel":
		return BoundValueRangeRel, nil
	default:
		return BoundAbs, fmt.Errorf("%w: error bound mode %q", ErrInvalidOption, s)
	}
}

// ValueRange returns (min, max) over the numeric elements of d. NaNs are
// skipped; an all-NaN or empty buffer returns (0, 0).
func ValueRange(d *Data) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	switch d.DType() {
	case DTypeFloat32:
		for _, v := range d.Float32s() {
			f := float64(v)
			if math.IsNaN(f) {
				continue
			}
			lo, hi = math.Min(lo, f), math.Max(hi, f)
		}
	case DTypeFloat64:
		for _, v := range d.Float64s() {
			if math.IsNaN(v) {
				continue
			}
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	default:
		for _, v := range d.AsFloat64s() {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if lo > hi {
		return 0, 0
	}
	return lo, hi
}

// ResolveAbsBound converts (mode, bound) into the absolute bound to apply
// for the given input, computing the value range when the mode requires it.
func ResolveAbsBound(d *Data, mode ErrorBoundMode, bound float64) float64 {
	switch mode {
	case BoundValueRangeRel:
		lo, hi := ValueRange(d)
		return bound * (hi - lo)
	default:
		return bound
	}
}

// BoundConfig is an embeddable helper that handles the generic error-bound
// options for lossy compressor plugins: it stores the native mode/bound and
// maps "pressio:abs" / "pressio:rel" onto them, which is exactly the adapter
// work each native client would otherwise reimplement.
type BoundConfig struct {
	Mode  ErrorBoundMode
	Bound float64
}

// ApplyOptions consumes the generic and prefix-local bound options from o.
// prefix is the plugin name (for "<prefix>:error_bound_mode_str",
// "<prefix>:abs_err_bound" and "<prefix>:rel_err_bound" spellings).
func (b *BoundConfig) ApplyOptions(prefix string, o *Options) error {
	if v, err := o.GetFloat64(KeyAbs); err == nil {
		b.Mode, b.Bound = BoundAbs, v
	}
	if v, err := o.GetFloat64(KeyRel); err == nil {
		b.Mode, b.Bound = BoundValueRangeRel, v
	}
	if s, err := o.GetString(prefix + ":error_bound_mode_str"); err == nil {
		m, err := ParseErrorBoundMode(s)
		if err != nil {
			return err
		}
		b.Mode = m
	}
	if v, err := o.GetFloat64(prefix + ":abs_err_bound"); err == nil {
		b.Bound = v
		if !o.Has(prefix + ":error_bound_mode_str") {
			b.Mode = BoundAbs
		}
	}
	if v, err := o.GetFloat64(prefix + ":rel_err_bound"); err == nil {
		b.Bound = v
		if !o.Has(prefix + ":error_bound_mode_str") {
			b.Mode = BoundValueRangeRel
		}
	}
	return nil
}

// Describe publishes the current bound configuration into o under both the
// generic and prefix-local names.
func (b *BoundConfig) Describe(prefix string, o *Options) {
	o.SetValue(prefix+":error_bound_mode_str", b.Mode.String())
	switch b.Mode {
	case BoundAbs:
		o.SetValue(prefix+":abs_err_bound", b.Bound)
		o.SetValue(KeyAbs, b.Bound)
		o.SetType(prefix+":rel_err_bound", OptDouble)
		o.SetType(KeyRel, OptDouble)
	default:
		o.SetValue(prefix+":rel_err_bound", b.Bound)
		o.SetValue(KeyRel, b.Bound)
		o.SetType(prefix+":abs_err_bound", OptDouble)
		o.SetType(KeyAbs, OptDouble)
	}
}

// Resolve computes the absolute bound to apply for input d.
func (b *BoundConfig) Resolve(d *Data) float64 { return ResolveAbsBound(d, b.Mode, b.Bound) }

// StandardConfiguration builds the read-only configuration Options every
// plugin reports: thread safety, stability and version.
func StandardConfiguration(safety ThreadSafety, stability, version string, shared bool) *Options {
	cfg := NewOptions()
	cfg.SetValue(KeyThreadSafe, safety.String())
	cfg.SetValue(KeyStability, stability)
	cfg.SetValue(KeyVersion, version)
	if shared {
		cfg.SetValue(KeyShared, int32(1))
	} else {
		cfg.SetValue(KeyShared, int32(0))
	}
	return cfg
}

// ParseShape builds an empty Data hint from a comma-separated dims string
// and a dtype name — the parsing every CLI front end needs.
func ParseShape(dimsCSV, dtypeName string) (*Data, error) {
	dtype, err := ParseDType(dtypeName)
	if err != nil {
		return nil, err
	}
	var dims []uint64
	for _, p := range strings.Split(dimsCSV, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad dims %q", ErrInvalidDims, dimsCSV)
		}
		dims = append(dims, v)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("%w: no dims in %q", ErrInvalidDims, dimsCSV)
	}
	return NewEmpty(dtype, dims...), nil
}

// FillDecompressed installs raw decompressed bytes into out, honoring out's
// dtype/dims hint when it matches the payload size and falling back to an
// opaque byte buffer otherwise. Decompressor plugins share this tail logic.
func FillDecompressed(out *Data, raw []byte) error {
	if out.DType() != DTypeUnset && out.NumDims() > 0 &&
		elementCount(out.Dims())*uint64(out.DType().Size()) == uint64(len(raw)) {
		d, err := NewMove(out.DType(), raw, out.Dims()...)
		if err != nil {
			return err
		}
		out.Become(d)
		return nil
	}
	out.Become(NewBytes(raw))
	return nil
}

// Compress is a convenience helper: it allocates the output, compresses in,
// and returns the compressed bytes Data.
func Compress(c *Compressor, in *Data) (*Data, error) {
	out := NewEmpty(DTypeByte, 0)
	if err := c.Compress(in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Decompress is a convenience helper: it allocates an output with the given
// shape hint, decompresses, and returns it.
func Decompress(c *Compressor, compressed *Data, dtype DType, dims ...uint64) (*Data, error) {
	out := NewEmpty(dtype, dims...)
	if err := c.Decompress(compressed, out); err != nil {
		return nil, err
	}
	return out, nil
}
