package core

// IOPlugin is the pressio_io component: a configurable source/sink of Data
// buffers. Implementations cover flat binary files ("posix"), CSV, the
// NumPy .npy format, synthetic generators ("iota"), sub-region selection
// ("select"), and the h5lite chunked container.
type IOPlugin interface {
	// Prefix returns the plugin name.
	Prefix() string
	// Options returns current options (e.g. "io:path").
	Options() *Options
	// SetOptions applies options; unknown keys are ignored.
	SetOptions(*Options) error
	// Configuration returns read-only plugin facts.
	Configuration() *Options
	// Read produces a Data buffer. hint, when non-nil, provides the
	// expected dtype and dims for formats that do not self-describe (flat
	// binary); self-describing formats ignore it.
	Read(hint *Data) (*Data, error)
	// Write persists the buffer.
	Write(d *Data) error
	// Clone returns an independent instance with the same configuration.
	Clone() IOPlugin
}

// KeyIOPath is the conventional option name for a file path.
const KeyIOPath = "io:path"
