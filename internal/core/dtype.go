// Package core implements the generic compression interface at the heart of
// this LibPressio reproduction: a uniform, introspectable, low-overhead API
// in front of many lossless and error-bounded lossy compressors, metrics
// modules, and IO plugins.
//
// The package mirrors the six major components of the paper's Figure 1:
//
//   - registry functions (RegisterCompressor, NewCompressor, ...) play the
//     role of the "pressio" component: creating references to, enumerating,
//     and handling errors from plugins,
//   - Data is the "pressio_data" buffer abstraction,
//   - Compressor is the "pressio_compressor" component,
//   - Options is the "pressio_options" introspectable configuration store,
//   - IOPlugin is the "pressio_io" component, and
//   - Metric is the "pressio_metrics" component.
package core

import (
	"fmt"
	"math"
	"strings"
)

// DType identifies the element type of a Data buffer. It corresponds to
// pressio_dtype in the original library: compressors that are datatype-aware
// use it to interpret buffers, while byte-oriented lossless compressors may
// ignore it.
type DType int

// The supported element types. DTypeUnset is the zero value and marks a
// buffer whose type is not yet known (for example a decompression output
// hint that only carries dimensions).
const (
	DTypeUnset DType = iota
	DTypeInt8
	DTypeInt16
	DTypeInt32
	DTypeInt64
	DTypeUint8
	DTypeUint16
	DTypeUint32
	DTypeUint64
	DTypeFloat32
	DTypeFloat64
	DTypeByte // opaque bytes, e.g. compressed streams
)

var dtypeNames = map[DType]string{
	DTypeUnset:   "unset",
	DTypeInt8:    "int8",
	DTypeInt16:   "int16",
	DTypeInt32:   "int32",
	DTypeInt64:   "int64",
	DTypeUint8:   "uint8",
	DTypeUint16:  "uint16",
	DTypeUint32:  "uint32",
	DTypeUint64:  "uint64",
	DTypeFloat32: "float32",
	DTypeFloat64: "float64",
	DTypeByte:    "byte",
}

// Size returns the size in bytes of one element of the type. DTypeUnset has
// size 0.
func (d DType) Size() int {
	switch d {
	case DTypeInt8, DTypeUint8, DTypeByte:
		return 1
	case DTypeInt16, DTypeUint16:
		return 2
	case DTypeInt32, DTypeUint32, DTypeFloat32:
		return 4
	case DTypeInt64, DTypeUint64, DTypeFloat64:
		return 8
	default:
		return 0
	}
}

// String returns the canonical lower-case name of the type.
func (d DType) String() string {
	if s, ok := dtypeNames[d]; ok {
		return s
	}
	return fmt.Sprintf("dtype(%d)", int(d))
}

// Float reports whether the type is a floating point type.
func (d DType) Float() bool { return d == DTypeFloat32 || d == DTypeFloat64 }

// Signed reports whether the type is a signed integer type.
func (d DType) Signed() bool {
	switch d {
	case DTypeInt8, DTypeInt16, DTypeInt32, DTypeInt64:
		return true
	}
	return false
}

// Numeric reports whether the type supports arithmetic (everything except
// unset and opaque bytes).
func (d DType) Numeric() bool { return d != DTypeUnset && d != DTypeByte }

// ParseDType converts a type name such as "float32" to a DType. It accepts
// the canonical names plus a few common aliases ("float", "double", "f32").
func ParseDType(s string) (DType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "int8", "i8":
		return DTypeInt8, nil
	case "int16", "i16":
		return DTypeInt16, nil
	case "int32", "i32", "int":
		return DTypeInt32, nil
	case "int64", "i64", "long":
		return DTypeInt64, nil
	case "uint8", "u8":
		return DTypeUint8, nil
	case "uint16", "u16":
		return DTypeUint16, nil
	case "uint32", "u32", "uint":
		return DTypeUint32, nil
	case "uint64", "u64":
		return DTypeUint64, nil
	case "float32", "float", "f32", "single":
		return DTypeFloat32, nil
	case "float64", "double", "f64":
		return DTypeFloat64, nil
	case "byte", "bytes", "raw":
		return DTypeByte, nil
	case "unset", "":
		return DTypeUnset, nil
	default:
		return DTypeUnset, fmt.Errorf("%w: unknown dtype %q", ErrInvalidDType, s)
	}
}

// DTypes returns all concrete (non-unset) element types, useful for
// enumeration in tests and tools.
func DTypes() []DType {
	return []DType{
		DTypeInt8, DTypeInt16, DTypeInt32, DTypeInt64,
		DTypeUint8, DTypeUint16, DTypeUint32, DTypeUint64,
		DTypeFloat32, DTypeFloat64, DTypeByte,
	}
}

// clampToDType reports whether v (a float64) can be represented exactly in
// the destination type range; used by option casting.
func fitsInt(v float64, bits int, signed bool) bool {
	if v != math.Trunc(v) {
		return false
	}
	if signed {
		min := -math.Pow(2, float64(bits-1))
		max := math.Pow(2, float64(bits-1)) - 1
		return v >= min && v <= max
	}
	return v >= 0 && v <= math.Pow(2, float64(bits))-1
}
