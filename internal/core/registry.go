package core

import (
	"fmt"
	"sort"
	"sync"
)

// The registries map plugin names to factories. Plugin packages register
// themselves from init(), and third-party packages can do the same without
// modifying this package — the extension mechanism the paper's Table I
// credits LibPressio with.

var (
	regMu         sync.RWMutex
	compressorReg = map[string]func() CompressorPlugin{}
	metricReg     = map[string]func() Metric{}
	ioReg         = map[string]func() IOPlugin{}
)

// RegisterCompressor adds a compressor factory under name. Registering a
// duplicate name panics, surfacing plugin conflicts at startup.
func RegisterCompressor(name string, factory func() CompressorPlugin) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := compressorReg[name]; dup {
		panic(fmt.Sprintf("core: duplicate compressor plugin %q", name))
	}
	compressorReg[name] = factory
}

// RegisterMetric adds a metrics factory under name.
func RegisterMetric(name string, factory func() Metric) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := metricReg[name]; dup {
		panic(fmt.Sprintf("core: duplicate metric plugin %q", name))
	}
	metricReg[name] = factory
}

// RegisterIO adds an IO factory under name.
func RegisterIO(name string, factory func() IOPlugin) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := ioReg[name]; dup {
		panic(fmt.Sprintf("core: duplicate io plugin %q", name))
	}
	ioReg[name] = factory
}

// NewCompressor instantiates the named compressor wrapped in the framework
// handle. Each call returns a fresh instance, though plugins backed by
// process-global state (e.g. "sz") may still share that state and say so
// via the "pressio:shared_instance" configuration entry.
func NewCompressor(name string) (*Compressor, error) {
	regMu.RLock()
	factory, ok := compressorReg[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: compressor %q", ErrUnknownPlugin, name)
	}
	return &Compressor{impl: factory()}, nil
}

// NewMetric instantiates the named metrics plugin.
func NewMetric(name string) (Metric, error) {
	regMu.RLock()
	factory, ok := metricReg[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: metric %q", ErrUnknownPlugin, name)
	}
	return factory(), nil
}

// NewMetrics instantiates several metrics plugins composed into one, like
// pressio_new_metrics in the C API.
func NewMetrics(names ...string) (Metric, error) {
	members := make([]Metric, 0, len(names))
	for _, n := range names {
		m, err := NewMetric(n)
		if err != nil {
			return nil, err
		}
		members = append(members, m)
	}
	if len(members) == 1 {
		return members[0], nil
	}
	return NewMetricsGroup(members...), nil
}

// NewIO instantiates the named IO plugin.
func NewIO(name string) (IOPlugin, error) {
	regMu.RLock()
	factory, ok := ioReg[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: io %q", ErrUnknownPlugin, name)
	}
	return factory(), nil
}

// SupportedCompressors enumerates registered compressor names, sorted.
func SupportedCompressors() []string { return sortedKeys(compressorReg) }

// SupportedMetrics enumerates registered metrics names, sorted.
func SupportedMetrics() []string { return sortedKeys(metricReg) }

// SupportedIO enumerates registered IO plugin names, sorted.
func SupportedIO() []string { return sortedKeys(ioReg) }

func sortedKeys[V any](m map[string]V) []string {
	regMu.RLock()
	defer regMu.RUnlock()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
