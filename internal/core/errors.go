package core

import (
	"errors"
	"fmt"
)

// Sentinel errors mirroring the error categories libpressio reports through
// pressio_error_code/pressio_error_msg. Plugins wrap these with context so
// callers can both test with errors.Is and print a meaningful message.
var (
	// ErrInvalidOption indicates an option had the wrong type or an
	// out-of-range value.
	ErrInvalidOption = errors.New("invalid option")
	// ErrMissingOption indicates a required option was not provided.
	ErrMissingOption = errors.New("missing option")
	// ErrInvalidDType indicates an unsupported element type for the plugin.
	ErrInvalidDType = errors.New("invalid dtype")
	// ErrInvalidDims indicates unsupported dimensions (rank or extents).
	ErrInvalidDims = errors.New("invalid dimensions")
	// ErrUnknownPlugin indicates a name that is not registered.
	ErrUnknownPlugin = errors.New("unknown plugin")
	// ErrCorrupt indicates a malformed compressed stream.
	ErrCorrupt = errors.New("corrupt compressed stream")
	// ErrNotImplemented indicates an operation the plugin does not support.
	ErrNotImplemented = errors.New("not implemented")
	// ErrNilData indicates a nil Data argument where one is required.
	ErrNilData = errors.New("nil data")
)

// PluginError attaches the name of the plugin that produced an error, so
// errors surfacing through deeply composed meta-compressors still identify
// their origin.
type PluginError struct {
	Plugin string // plugin prefix, e.g. "sz"
	Err    error
}

// Error implements the error interface.
func (e *PluginError) Error() string { return fmt.Sprintf("%s: %v", e.Plugin, e.Err) }

// Unwrap exposes the wrapped error for errors.Is / errors.As.
func (e *PluginError) Unwrap() error { return e.Err }

// wrapPlugin annotates err with the plugin prefix unless it is nil or
// already annotated with the same prefix.
func wrapPlugin(prefix string, err error) error {
	if err == nil {
		return nil
	}
	var pe *PluginError
	if errors.As(err, &pe) && pe.Plugin == prefix {
		return err
	}
	return &PluginError{Plugin: prefix, Err: err}
}
