package core

import (
	"errors"
	"fmt"
)

// Sentinel errors mirroring the error categories libpressio reports through
// pressio_error_code/pressio_error_msg. Plugins wrap these with context so
// callers can both test with errors.Is and print a meaningful message.
var (
	// ErrInvalidOption indicates an option had the wrong type or an
	// out-of-range value.
	ErrInvalidOption = errors.New("invalid option")
	// ErrMissingOption indicates a required option was not provided.
	ErrMissingOption = errors.New("missing option")
	// ErrInvalidDType indicates an unsupported element type for the plugin.
	ErrInvalidDType = errors.New("invalid dtype")
	// ErrInvalidDims indicates unsupported dimensions (rank or extents).
	ErrInvalidDims = errors.New("invalid dimensions")
	// ErrUnknownPlugin indicates a name that is not registered.
	ErrUnknownPlugin = errors.New("unknown plugin")
	// ErrCorrupt indicates a malformed compressed stream.
	ErrCorrupt = errors.New("corrupt compressed stream")
	// ErrNotImplemented indicates an operation the plugin does not support.
	ErrNotImplemented = errors.New("not implemented")
	// ErrNilData indicates a nil Data argument where one is required.
	ErrNilData = errors.New("nil data")
	// ErrTransient classifies a failure as retryable: the same call may
	// succeed if repeated (resource pressure, a flaky worker, a timeout).
	// Producers mark errors with Transient(); consumers test with
	// IsTransient. Errors not so marked are permanent by default.
	ErrTransient = errors.New("transient failure")
	// ErrTimeout indicates an operation exceeded its deadline. Timeouts are
	// transient by definition: IsTransient reports true for them without an
	// explicit Transient wrapper.
	ErrTimeout = errors.New("operation timed out")
	// ErrPanicked indicates a plugin panicked and the panic was converted to
	// an error at the framework boundary (the guard meta-compressor).
	// Panics signal bugs or corrupt state, so they are permanent.
	ErrPanicked = errors.New("plugin panicked")
	// ErrShed indicates a request was rejected by an overload-protection
	// policy (admission control, a full queue, a deadline that would expire
	// while queued, or an open circuit breaker) before any work was done.
	// Shedding is a policy decision, not a fault: IsTransient deliberately
	// reports false so retry loops inside the process do not hammer an
	// overloaded component — the *caller* should back off and retry later.
	ErrShed = errors.New("request shed: overloaded")
)

// transientError marks its wrapped error as transient while preserving the
// original message and errors.Is/As chain.
type transientError struct {
	err error
}

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Is lets errors.Is(err, ErrTransient) succeed without making ErrTransient
// part of the message chain.
func (e *transientError) Is(target error) bool { return target == ErrTransient }

// Transient marks err as retryable. It returns nil for nil and is idempotent.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrTransient) {
		return err
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable — explicitly via
// Transient/ErrTransient or implicitly by being a timeout. The check sees
// through PluginError and fmt.Errorf %w wrapping.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrTimeout)
}

// PluginError attaches the name of the plugin that produced an error, so
// errors surfacing through deeply composed meta-compressors still identify
// their origin.
type PluginError struct {
	Plugin string // plugin prefix, e.g. "sz"
	Err    error
}

// Error implements the error interface.
func (e *PluginError) Error() string { return fmt.Sprintf("%s: %v", e.Plugin, e.Err) }

// Unwrap exposes the wrapped error for errors.Is / errors.As.
func (e *PluginError) Unwrap() error { return e.Err }

// wrapPlugin annotates err with the plugin prefix unless it is nil or
// already annotated with the same prefix.
func wrapPlugin(prefix string, err error) error {
	if err == nil {
		return nil
	}
	var pe *PluginError
	if errors.As(err, &pe) && pe.Plugin == prefix {
		return err
	}
	return &PluginError{Plugin: prefix, Err: err}
}
