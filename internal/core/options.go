package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// OptionType enumerates the value kinds an Option can hold, mirroring the
// paper's §IV-C option abstraction: signed and unsigned integers of 8, 16,
// 32 and 64 bits, single and double precision floats, string, string list,
// a full Data buffer (e.g. a mask), an opaque user pointer (e.g. a handle to
// a parallel resource), and unset.
type OptionType int

// Option value kinds.
const (
	OptUnset OptionType = iota
	OptInt8
	OptInt16
	OptInt32
	OptInt64
	OptUint8
	OptUint16
	OptUint32
	OptUint64
	OptFloat
	OptDouble
	OptString
	OptStrings
	OptData
	OptUserPtr
)

var optionTypeNames = map[OptionType]string{
	OptUnset:   "unset",
	OptInt8:    "int8",
	OptInt16:   "int16",
	OptInt32:   "int32",
	OptInt64:   "int64",
	OptUint8:   "uint8",
	OptUint16:  "uint16",
	OptUint32:  "uint32",
	OptUint64:  "uint64",
	OptFloat:   "float",
	OptDouble:  "double",
	OptString:  "string",
	OptStrings: "strings",
	OptData:    "data",
	OptUserPtr: "userptr",
}

// String returns the canonical name of the option type.
func (t OptionType) String() string {
	if s, ok := optionTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("optiontype(%d)", int(t))
}

// Numeric reports whether the option kind holds a scalar number.
func (t OptionType) Numeric() bool { return t >= OptInt8 && t <= OptDouble }

// CastSafety controls which conversions Option.Cast permits, mirroring
// pressio_conversion_safety.
type CastSafety int

const (
	// CastImplicit permits only conversions that cannot lose information
	// for the stored value (same type, widening within the value range).
	CastImplicit CastSafety = iota
	// CastExplicit additionally permits narrowing numeric conversions when
	// the stored value fits the destination, and float->int when exact.
	CastExplicit
	// CastSpecial additionally permits string<->number formatting/parsing
	// and lossy float conversions.
	CastSpecial
)

// Option is a single typed configuration value. The zero Option is unset.
// An Option can also carry a type but no value ("has type, no value") which
// introspection uses to advertise an option's expected type.
type Option struct {
	typ    OptionType
	hasVal bool
	val    any
}

// NewOption creates an Option holding v. Supported dynamic types: all Go
// integer and float scalar types, string, []string, *Data, and arbitrary
// pointers via OptionUserPtr.
func NewOption(v any) Option {
	switch x := v.(type) {
	case int8:
		return Option{OptInt8, true, x}
	case int16:
		return Option{OptInt16, true, x}
	case int32:
		return Option{OptInt32, true, x}
	case int64:
		return Option{OptInt64, true, x}
	case int:
		return Option{OptInt64, true, int64(x)}
	case uint8:
		return Option{OptUint8, true, x}
	case uint16:
		return Option{OptUint16, true, x}
	case uint32:
		return Option{OptUint32, true, x}
	case uint64:
		return Option{OptUint64, true, x}
	case uint:
		return Option{OptUint64, true, uint64(x)}
	case float32:
		return Option{OptFloat, true, x}
	case float64:
		return Option{OptDouble, true, x}
	case string:
		return Option{OptString, true, x}
	case []string:
		return Option{OptStrings, true, append([]string(nil), x...)}
	case *Data:
		return Option{OptData, true, x}
	default:
		return Option{OptUserPtr, true, v}
	}
}

// OptionUserPtr wraps an opaque value (the analogue of passing MPI_Comm or
// a sycl::queue through the C API).
func OptionUserPtr(v any) Option { return Option{OptUserPtr, true, v} }

// TypedOption creates an Option that has a type but no value; plugins use it
// in Options() results to advertise expected types for introspection.
func TypedOption(t OptionType) Option { return Option{typ: t} }

// Type returns the option's kind.
func (o Option) Type() OptionType { return o.typ }

// HasValue reports whether the option holds a value (not just a type).
func (o Option) HasValue() bool { return o.hasVal }

// Value returns the raw stored value (nil when no value is set).
func (o Option) Value() any {
	if !o.hasVal {
		return nil
	}
	return o.val
}

// asFloat returns the numeric value as float64. Only valid for numeric
// kinds with a value.
func (o Option) asFloat() float64 {
	switch x := o.val.(type) {
	case int8:
		return float64(x)
	case int16:
		return float64(x)
	case int32:
		return float64(x)
	case int64:
		return float64(x)
	case uint8:
		return float64(x)
	case uint16:
		return float64(x)
	case uint32:
		return float64(x)
	case uint64:
		return float64(x)
	case float32:
		return float64(x)
	case float64:
		return x
	}
	panic("core: asFloat on non-numeric option")
}

// intExact reports the value as int64 plus whether it is exactly
// representable (uint64 overflow and fractional floats are inexact).
func (o Option) intExact() (int64, bool) {
	switch x := o.val.(type) {
	case int8:
		return int64(x), true
	case int16:
		return int64(x), true
	case int32:
		return int64(x), true
	case int64:
		return x, true
	case uint8:
		return int64(x), true
	case uint16:
		return int64(x), true
	case uint32:
		return int64(x), true
	case uint64:
		if x > math.MaxInt64 {
			return 0, false
		}
		return int64(x), true
	case float32:
		f := float64(x)
		if f != math.Trunc(f) || f < math.MinInt64 || f > math.MaxInt64 {
			return 0, false
		}
		return int64(f), true
	case float64:
		if x != math.Trunc(x) || x < math.MinInt64 || x > math.MaxInt64 {
			return 0, false
		}
		return int64(x), true
	}
	return 0, false
}

var intBits = map[OptionType]struct {
	bits   int
	signed bool
}{
	OptInt8:   {8, true},
	OptInt16:  {16, true},
	OptInt32:  {32, true},
	OptInt64:  {64, true},
	OptUint8:  {8, false},
	OptUint16: {16, false},
	OptUint32: {32, false},
	OptUint64: {64, false},
}

// Cast converts the option to the destination kind under the given safety
// level. It reports false when the conversion is not allowed or would not
// preserve the stored value within the safety contract.
func (o Option) Cast(to OptionType, safety CastSafety) (Option, bool) {
	if !o.hasVal {
		return Option{}, false
	}
	if o.typ == to {
		return o, true
	}
	switch {
	case o.typ.Numeric() && to.Numeric():
		return o.castNumeric(to, safety)
	case o.typ.Numeric() && to == OptString && safety >= CastSpecial:
		return NewOption(o.formatNumeric()), true
	case o.typ == OptString && to.Numeric() && safety >= CastSpecial:
		return parseNumericOption(o.val.(string), to)
	case o.typ == OptString && to == OptStrings && safety >= CastImplicit:
		return NewOption([]string{o.val.(string)}), true
	case o.typ == OptStrings && to == OptString && safety >= CastExplicit:
		xs := o.val.([]string)
		if len(xs) == 1 {
			return NewOption(xs[0]), true
		}
		return Option{}, false
	default:
		return Option{}, false
	}
}

func (o Option) castNumeric(to OptionType, safety CastSafety) (Option, bool) {
	// Float destinations.
	switch to {
	case OptDouble:
		f := o.asFloat()
		if o.typ == OptInt64 || o.typ == OptUint64 {
			// Only implicit when exactly representable.
			if iv, ok := o.intExact(); !ok || float64(iv) != f || int64(f) != iv {
				if safety < CastExplicit {
					return Option{}, false
				}
			}
		}
		return NewOption(f), true
	case OptFloat:
		f := o.asFloat()
		if float64(float32(f)) != f && safety < CastSpecial {
			return Option{}, false
		}
		return NewOption(float32(f)), true
	}
	// Integer destinations. intExact is false for uint64 values above
	// MaxInt64, which only fit the (same-type) uint64 destination — and
	// that case was already short-circuited by the o.typ == to check.
	spec := intBits[to]
	iv, exact := o.intExact()
	if !exact {
		return Option{}, false
	}
	if o.typ == OptFloat || o.typ == OptDouble {
		if safety < CastExplicit {
			return Option{}, false
		}
	}
	if !fitsInt(float64(iv), spec.bits, spec.signed) {
		return Option{}, false
	}
	if safety < CastExplicit {
		// Implicit: destination must be at least as wide with compatible
		// signedness, or the value must be representable and widening.
		src, ok := intBits[o.typ]
		if !ok || spec.bits < src.bits || (src.signed && !spec.signed) {
			return Option{}, false
		}
		if !src.signed && spec.signed && spec.bits == src.bits {
			return Option{}, false
		}
	}
	return makeIntOption(to, iv), true
}

func makeIntOption(t OptionType, v int64) Option {
	switch t {
	case OptInt8:
		return NewOption(int8(v))
	case OptInt16:
		return NewOption(int16(v))
	case OptInt32:
		return NewOption(int32(v))
	case OptInt64:
		return NewOption(v)
	case OptUint8:
		return NewOption(uint8(v))
	case OptUint16:
		return NewOption(uint16(v))
	case OptUint32:
		return NewOption(uint32(v))
	case OptUint64:
		return NewOption(uint64(v))
	}
	panic("core: makeIntOption on non-integer type")
}

func (o Option) formatNumeric() string {
	switch x := o.val.(type) {
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		iv, _ := o.intExact()
		if u, ok := o.val.(uint64); ok {
			return strconv.FormatUint(u, 10)
		}
		return strconv.FormatInt(iv, 10)
	}
}

func parseNumericOption(s string, to OptionType) (Option, bool) {
	s = strings.TrimSpace(s)
	switch to {
	case OptFloat:
		f, err := strconv.ParseFloat(s, 32)
		if err != nil {
			return Option{}, false
		}
		return NewOption(float32(f)), true
	case OptDouble:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Option{}, false
		}
		return NewOption(f), true
	case OptUint64:
		u, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return Option{}, false
		}
		return NewOption(u), true
	default:
		spec, ok := intBits[to]
		if !ok {
			return Option{}, false
		}
		if spec.signed {
			v, err := strconv.ParseInt(s, 10, spec.bits)
			if err != nil {
				return Option{}, false
			}
			return makeIntOption(to, v), true
		}
		v, err := strconv.ParseUint(s, 10, spec.bits)
		if err != nil {
			return Option{}, false
		}
		return makeIntOption(to, int64(v)), true
	}
}

// String renders the option for diagnostics.
func (o Option) String() string {
	if !o.hasVal {
		return fmt.Sprintf("<%s>", o.typ)
	}
	switch o.typ {
	case OptString:
		return fmt.Sprintf("%q", o.val)
	case OptData:
		return o.val.(*Data).String()
	case OptUserPtr:
		return fmt.Sprintf("userptr(%T)", o.val)
	default:
		return fmt.Sprint(o.val)
	}
}

// Options is an ordered-key map from option names (e.g. "sz:abs_err_bound",
// "pressio:abs") to typed Option values. It is the introspectable
// configuration store of the framework.
type Options struct {
	m map[string]Option
}

// NewOptions returns an empty option set.
func NewOptions() *Options { return &Options{m: make(map[string]Option)} }

// Set stores an option under key.
func (o *Options) Set(key string, opt Option) *Options {
	o.m[key] = opt
	return o
}

// SetValue wraps v with NewOption and stores it.
func (o *Options) SetValue(key string, v any) *Options { return o.Set(key, NewOption(v)) }

// SetType stores a typed-but-valueless option (introspection placeholder).
func (o *Options) SetType(key string, t OptionType) *Options { return o.Set(key, TypedOption(t)) }

// Get retrieves the option stored under key.
func (o *Options) Get(key string) (Option, bool) {
	opt, ok := o.m[key]
	return opt, ok
}

// Has reports whether key exists and holds a value.
func (o *Options) Has(key string) bool {
	opt, ok := o.m[key]
	return ok && opt.HasValue()
}

// Delete removes key.
func (o *Options) Delete(key string) { delete(o.m, key) }

// Len returns the number of stored options.
func (o *Options) Len() int { return len(o.m) }

// Keys returns the option names in sorted order.
func (o *Options) Keys() []string {
	keys := make([]string, 0, len(o.m))
	for k := range o.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GetInt64 retrieves key cast (explicitly) to int64.
func (o *Options) GetInt64(key string) (int64, error) {
	opt, ok := o.m[key]
	if !ok || !opt.HasValue() {
		return 0, fmt.Errorf("%w: %s", ErrMissingOption, key)
	}
	c, ok := opt.Cast(OptInt64, CastExplicit)
	if !ok {
		return 0, fmt.Errorf("%w: %s is %s, not convertible to int64", ErrInvalidOption, key, opt.Type())
	}
	return c.Value().(int64), nil
}

// GetUint64 retrieves key cast (explicitly) to uint64.
func (o *Options) GetUint64(key string) (uint64, error) {
	opt, ok := o.m[key]
	if !ok || !opt.HasValue() {
		return 0, fmt.Errorf("%w: %s", ErrMissingOption, key)
	}
	c, ok := opt.Cast(OptUint64, CastExplicit)
	if !ok {
		return 0, fmt.Errorf("%w: %s is %s, not convertible to uint64", ErrInvalidOption, key, opt.Type())
	}
	return c.Value().(uint64), nil
}

// GetInt32 retrieves key cast (explicitly) to int32.
func (o *Options) GetInt32(key string) (int32, error) {
	opt, ok := o.m[key]
	if !ok || !opt.HasValue() {
		return 0, fmt.Errorf("%w: %s", ErrMissingOption, key)
	}
	c, ok := opt.Cast(OptInt32, CastExplicit)
	if !ok {
		return 0, fmt.Errorf("%w: %s is %s, not convertible to int32", ErrInvalidOption, key, opt.Type())
	}
	return c.Value().(int32), nil
}

// GetFloat64 retrieves key cast (explicitly) to float64.
func (o *Options) GetFloat64(key string) (float64, error) {
	opt, ok := o.m[key]
	if !ok || !opt.HasValue() {
		return 0, fmt.Errorf("%w: %s", ErrMissingOption, key)
	}
	c, ok := opt.Cast(OptDouble, CastExplicit)
	if !ok {
		return 0, fmt.Errorf("%w: %s is %s, not convertible to float64", ErrInvalidOption, key, opt.Type())
	}
	return c.Value().(float64), nil
}

// GetString retrieves key as a string (no numeric formatting).
func (o *Options) GetString(key string) (string, error) {
	opt, ok := o.m[key]
	if !ok || !opt.HasValue() {
		return "", fmt.Errorf("%w: %s", ErrMissingOption, key)
	}
	if opt.Type() != OptString {
		return "", fmt.Errorf("%w: %s is %s, not string", ErrInvalidOption, key, opt.Type())
	}
	return opt.Value().(string), nil
}

// GetStrings retrieves key as a string list.
func (o *Options) GetStrings(key string) ([]string, error) {
	opt, ok := o.m[key]
	if !ok || !opt.HasValue() {
		return nil, fmt.Errorf("%w: %s", ErrMissingOption, key)
	}
	c, ok := opt.Cast(OptStrings, CastImplicit)
	if !ok {
		return nil, fmt.Errorf("%w: %s is %s, not strings", ErrInvalidOption, key, opt.Type())
	}
	return c.Value().([]string), nil
}

// GetData retrieves key as a Data buffer.
func (o *Options) GetData(key string) (*Data, error) {
	opt, ok := o.m[key]
	if !ok || !opt.HasValue() {
		return nil, fmt.Errorf("%w: %s", ErrMissingOption, key)
	}
	if opt.Type() != OptData {
		return nil, fmt.Errorf("%w: %s is %s, not data", ErrInvalidOption, key, opt.Type())
	}
	return opt.Value().(*Data), nil
}

// GetUserPtr retrieves key as an opaque value.
func (o *Options) GetUserPtr(key string) (any, error) {
	opt, ok := o.m[key]
	if !ok || !opt.HasValue() {
		return nil, fmt.Errorf("%w: %s", ErrMissingOption, key)
	}
	if opt.Type() != OptUserPtr {
		return nil, fmt.Errorf("%w: %s is %s, not userptr", ErrInvalidOption, key, opt.Type())
	}
	return opt.Value(), nil
}

// Merge copies every valued entry of src into o, overwriting existing keys.
func (o *Options) Merge(src *Options) *Options {
	if src == nil {
		return o
	}
	for k, v := range src.m {
		o.m[k] = v
	}
	return o
}

// Clone returns a copy. Option values are shared (they are immutable scalars
// except Data/UserPtr which keep reference semantics like the C library).
func (o *Options) Clone() *Options {
	c := NewOptions()
	for k, v := range o.m {
		c.m[k] = v
	}
	return c
}

// String renders all options sorted by key.
func (o *Options) String() string {
	var b strings.Builder
	for i, k := range o.Keys() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", k, o.m[k])
	}
	return "{" + b.String() + "}"
}
