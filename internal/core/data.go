package core

import (
	"fmt"
	"math"
	"unsafe"
)

// Data is the buffer abstraction of the framework (pressio_data in the
// original). It couples raw storage with the element type and the dimensions
// of the dense tensor it holds. Dimensions use C (row-major) ordering: the
// first dimension is the slowest varying, matching the paper's uniform
// dimension-ordering contract. Plugins that natively want Fortran ordering
// (e.g. the zfp-family codec) translate internally.
//
// A Data may also be "empty": it describes a type and shape but owns no
// storage yet. Empty Data values are used as output hints, exactly like
// pressio_data_new_empty in the C API.
type Data struct {
	dtype DType
	dims  []uint64
	buf   []byte // nil when empty
}

// NewData allocates a zero-initialized buffer of the given type and
// dimensions.
func NewData(dtype DType, dims ...uint64) *Data {
	n := elementCount(dims)
	return &Data{dtype: dtype, dims: cloneDims(dims), buf: make([]byte, n*uint64(dtype.Size()))}
}

// NewEmpty describes a type and shape without allocating storage. It is the
// analogue of pressio_data_new_empty and is used as an output size/type hint
// for Compress and Decompress.
func NewEmpty(dtype DType, dims ...uint64) *Data {
	return &Data{dtype: dtype, dims: cloneDims(dims)}
}

// NewBytes wraps an existing byte slice as an opaque 1-D byte buffer. The
// slice is adopted, not copied (move semantics, like pressio_data_new_move).
func NewBytes(b []byte) *Data {
	return &Data{dtype: DTypeByte, dims: []uint64{uint64(len(b))}, buf: b}
}

// NewMove adopts an existing byte slice as storage for a tensor of the given
// type and dims. The byte length must match the shape. The slice is not
// copied; the caller must not alias it afterwards.
func NewMove(dtype DType, b []byte, dims ...uint64) (*Data, error) {
	want := elementCount(dims) * uint64(dtype.Size())
	if uint64(len(b)) != want {
		return nil, fmt.Errorf("%w: buffer is %d bytes, shape %v of %s needs %d",
			ErrInvalidDims, len(b), dims, dtype, want)
	}
	return &Data{dtype: dtype, dims: cloneDims(dims), buf: b}, nil
}

// FromFloat32s wraps a float32 slice without copying.
func FromFloat32s(v []float32, dims ...uint64) *Data {
	if len(dims) == 0 {
		dims = []uint64{uint64(len(v))}
	}
	d, err := NewMove(DTypeFloat32, bytesOf(v), dims...)
	if err != nil {
		panic(err)
	}
	return d
}

// FromFloat64s wraps a float64 slice without copying.
func FromFloat64s(v []float64, dims ...uint64) *Data {
	if len(dims) == 0 {
		dims = []uint64{uint64(len(v))}
	}
	d, err := NewMove(DTypeFloat64, bytesOf(v), dims...)
	if err != nil {
		panic(err)
	}
	return d
}

// FromInt32s wraps an int32 slice without copying.
func FromInt32s(v []int32, dims ...uint64) *Data {
	if len(dims) == 0 {
		dims = []uint64{uint64(len(v))}
	}
	d, err := NewMove(DTypeInt32, bytesOf(v), dims...)
	if err != nil {
		panic(err)
	}
	return d
}

// FromInt64s wraps an int64 slice without copying.
func FromInt64s(v []int64, dims ...uint64) *Data {
	if len(dims) == 0 {
		dims = []uint64{uint64(len(v))}
	}
	d, err := NewMove(DTypeInt64, bytesOf(v), dims...)
	if err != nil {
		panic(err)
	}
	return d
}

// DType returns the element type.
func (d *Data) DType() DType { return d.dtype }

// Dims returns the dimensions in C order. The returned slice must not be
// modified.
func (d *Data) Dims() []uint64 { return d.dims }

// NumDims returns the rank of the tensor.
func (d *Data) NumDims() int { return len(d.dims) }

// Len returns the number of elements.
func (d *Data) Len() uint64 { return elementCount(d.dims) }

// ByteLen returns the size of the payload in bytes (0 when empty).
func (d *Data) ByteLen() uint64 { return uint64(len(d.buf)) }

// HasData reports whether the buffer owns storage (false for hints created
// with NewEmpty).
func (d *Data) HasData() bool { return d.buf != nil }

// Bytes exposes the raw storage. The slice aliases the buffer; it is nil for
// empty Data.
func (d *Data) Bytes() []byte { return d.buf }

// SetBytes replaces the payload, adopting b, and sets the shape to a 1-D
// byte buffer if the current shape does not match. It is the primitive
// compressors use to emit their output into a caller-provided Data.
func (d *Data) SetBytes(b []byte) {
	d.buf = b
	if elementCount(d.dims)*uint64(d.dtype.Size()) != uint64(len(b)) {
		d.dtype = DTypeByte
		d.dims = []uint64{uint64(len(b))}
	}
}

// Become replaces the receiver's contents with those of src (shallow
// adoption: storage is shared). It is used to fill caller-provided output
// buffers.
func (d *Data) Become(src *Data) {
	d.dtype = src.dtype
	d.dims = cloneDims(src.dims)
	d.buf = src.buf
}

// Reshape changes the dimensions without touching the payload. The new shape
// must describe the same number of bytes.
func (d *Data) Reshape(dims ...uint64) error {
	if elementCount(dims)*uint64(d.dtype.Size()) != uint64(len(d.buf)) {
		return fmt.Errorf("%w: cannot reshape %d bytes of %s to %v",
			ErrInvalidDims, len(d.buf), d.dtype, dims)
	}
	d.dims = cloneDims(dims)
	return nil
}

// Clone returns a deep copy.
func (d *Data) Clone() *Data {
	c := &Data{dtype: d.dtype, dims: cloneDims(d.dims)}
	if d.buf != nil {
		c.buf = make([]byte, len(d.buf))
		copy(c.buf, d.buf)
	}
	return c
}

// Equal reports whether two buffers have identical type, shape and contents.
func (d *Data) Equal(o *Data) bool {
	if d.dtype != o.dtype || len(d.dims) != len(o.dims) {
		return false
	}
	for i := range d.dims {
		if d.dims[i] != o.dims[i] {
			return false
		}
	}
	return string(d.buf) == string(o.buf)
}

// String summarizes the buffer for diagnostics.
func (d *Data) String() string {
	return fmt.Sprintf("Data{%s %v, %d bytes}", d.dtype, d.dims, len(d.buf))
}

// Float32s returns the payload viewed as []float32. It panics if the dtype
// differs. The view aliases the storage.
func (d *Data) Float32s() []float32 { return typedView[float32](d, DTypeFloat32) }

// Float64s returns the payload viewed as []float64.
func (d *Data) Float64s() []float64 { return typedView[float64](d, DTypeFloat64) }

// Int8s returns the payload viewed as []int8.
func (d *Data) Int8s() []int8 { return typedView[int8](d, DTypeInt8) }

// Int16s returns the payload viewed as []int16.
func (d *Data) Int16s() []int16 { return typedView[int16](d, DTypeInt16) }

// Int32s returns the payload viewed as []int32.
func (d *Data) Int32s() []int32 { return typedView[int32](d, DTypeInt32) }

// Int64s returns the payload viewed as []int64.
func (d *Data) Int64s() []int64 { return typedView[int64](d, DTypeInt64) }

// Uint8s returns the payload viewed as []uint8.
func (d *Data) Uint8s() []uint8 { return typedView[uint8](d, DTypeUint8) }

// Uint16s returns the payload viewed as []uint16.
func (d *Data) Uint16s() []uint16 { return typedView[uint16](d, DTypeUint16) }

// Uint32s returns the payload viewed as []uint32.
func (d *Data) Uint32s() []uint32 { return typedView[uint32](d, DTypeUint32) }

// Uint64s returns the payload viewed as []uint64.
func (d *Data) Uint64s() []uint64 { return typedView[uint64](d, DTypeUint64) }

// AsFloat64s converts the payload to a fresh []float64 regardless of the
// stored type. Metrics modules use it to compute on a single numeric type.
func (d *Data) AsFloat64s() []float64 {
	n := int(d.Len())
	out := make([]float64, n)
	switch d.dtype {
	case DTypeFloat32:
		for i, v := range d.Float32s() {
			out[i] = float64(v)
		}
	case DTypeFloat64:
		copy(out, d.Float64s())
	case DTypeInt8:
		for i, v := range d.Int8s() {
			out[i] = float64(v)
		}
	case DTypeInt16:
		for i, v := range d.Int16s() {
			out[i] = float64(v)
		}
	case DTypeInt32:
		for i, v := range d.Int32s() {
			out[i] = float64(v)
		}
	case DTypeInt64:
		for i, v := range d.Int64s() {
			out[i] = float64(v)
		}
	case DTypeUint8, DTypeByte:
		for i, v := range d.buf {
			out[i] = float64(v)
		}
	case DTypeUint16:
		for i, v := range d.Uint16s() {
			out[i] = float64(v)
		}
	case DTypeUint32:
		for i, v := range d.Uint32s() {
			out[i] = float64(v)
		}
	case DTypeUint64:
		for i, v := range d.Uint64s() {
			out[i] = float64(v)
		}
	default:
		panic(fmt.Sprintf("core: AsFloat64s on %s data", d.dtype))
	}
	return out
}

// CastTo returns a new Data with elements converted to the destination
// numeric type (values are converted through float64; integer destinations
// round to nearest).
func (d *Data) CastTo(dst DType) (*Data, error) {
	if !d.dtype.Numeric() && d.dtype != DTypeByte {
		return nil, fmt.Errorf("%w: cannot cast from %s", ErrInvalidDType, d.dtype)
	}
	if !dst.Numeric() {
		return nil, fmt.Errorf("%w: cannot cast to %s", ErrInvalidDType, dst)
	}
	vals := d.AsFloat64s()
	out := NewData(dst, d.dims...)
	switch dst {
	case DTypeFloat32:
		o := out.Float32s()
		for i, v := range vals {
			o[i] = float32(v)
		}
	case DTypeFloat64:
		copy(out.Float64s(), vals)
	case DTypeInt8:
		o := out.Int8s()
		for i, v := range vals {
			o[i] = int8(math.RoundToEven(v))
		}
	case DTypeInt16:
		o := out.Int16s()
		for i, v := range vals {
			o[i] = int16(math.RoundToEven(v))
		}
	case DTypeInt32:
		o := out.Int32s()
		for i, v := range vals {
			o[i] = int32(math.RoundToEven(v))
		}
	case DTypeInt64:
		o := out.Int64s()
		for i, v := range vals {
			o[i] = int64(math.RoundToEven(v))
		}
	case DTypeUint8:
		o := out.Uint8s()
		for i, v := range vals {
			o[i] = uint8(math.RoundToEven(v))
		}
	case DTypeUint16:
		o := out.Uint16s()
		for i, v := range vals {
			o[i] = uint16(math.RoundToEven(v))
		}
	case DTypeUint32:
		o := out.Uint32s()
		for i, v := range vals {
			o[i] = uint32(math.RoundToEven(v))
		}
	case DTypeUint64:
		o := out.Uint64s()
		for i, v := range vals {
			o[i] = uint64(math.RoundToEven(v))
		}
	}
	return out, nil
}

// elementCount multiplies dimensions; an empty dim list means zero elements.
func elementCount(dims []uint64) uint64 {
	if len(dims) == 0 {
		return 0
	}
	n := uint64(1)
	for _, d := range dims {
		n *= d
	}
	return n
}

func cloneDims(dims []uint64) []uint64 {
	out := make([]uint64, len(dims))
	copy(out, dims)
	return out
}

// bytesOf reinterprets a typed slice as bytes without copying. Converting
// from a typed slice to bytes is always alignment-safe.
func bytesOf[T any](v []T) []byte {
	if len(v) == 0 {
		return []byte{}
	}
	var zero T
	size := int(unsafe.Sizeof(zero))
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*size)
}

// typedView reinterprets the payload as a typed slice. If the underlying
// buffer is misaligned for T (possible when the bytes came from IO), the
// payload is first migrated into an aligned allocation.
func typedView[T any](d *Data, want DType) []T {
	if d.dtype != want {
		panic(fmt.Sprintf("core: typed view of %s data as %s", d.dtype, want))
	}
	if len(d.buf) == 0 {
		return nil
	}
	var zero T
	size := int(unsafe.Sizeof(zero))
	if addr := uintptr(unsafe.Pointer(&d.buf[0])); addr%uintptr(size) != 0 {
		// Realign by copying into a typed allocation.
		aligned := make([]T, len(d.buf)/size)
		copy(bytesOf(aligned), d.buf)
		d.buf = bytesOf(aligned)
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&d.buf[0])), len(d.buf)/size)
}
