// Package stats provides the statistical machinery the paper's evaluation
// uses: descriptive statistics, percentiles, histograms for the Figure 3
// overhead distribution, and the Wilcoxon signed-rank test of §VI used to
// decide whether the interface overhead differs significantly from zero.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrTooFew reports too few observations for a test.
var ErrTooFew = errors.New("stats: too few observations")

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the middle value (mean of the two middle values for even
// lengths).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 <= q <= 1) with linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Min returns the smallest value.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		m = math.Min(m, x)
	}
	return m
}

// Max returns the largest value.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		m = math.Max(m, x)
	}
	return m
}

// Histogram bins xs into n equal-width bins over [lo, hi] and returns the
// counts plus the bin edges (n+1 values).
func Histogram(xs []float64, lo, hi float64, n int) (counts []int, edges []float64) {
	counts = make([]int, n)
	edges = make([]float64, n+1)
	width := (hi - lo) / float64(n)
	for i := 0; i <= n; i++ {
		edges[i] = lo + float64(i)*width
	}
	for _, x := range xs {
		if x < lo || x > hi {
			continue
		}
		b := int((x - lo) / width)
		if b >= n {
			b = n - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return counts, edges
}

// WilcoxonResult holds the outcome of a Wilcoxon signed-rank test.
type WilcoxonResult struct {
	// W is the smaller of the positive/negative rank sums.
	W float64
	// N is the number of non-zero differences used.
	N int
	// Z is the normal approximation test statistic.
	Z float64
	// P is the two-sided p-value (normal approximation with tie and
	// continuity corrections).
	P float64
}

// WilcoxonSignedRank tests the hypothesis that the paired differences
// a[i]-b[i] are symmetric about zero. It mirrors §VI's use: with p above
// the significance level there is insufficient evidence that the overhead
// differs from zero.
func WilcoxonSignedRank(a, b []float64) (WilcoxonResult, error) {
	if len(a) != len(b) {
		return WilcoxonResult{}, errors.New("stats: length mismatch")
	}
	type diff struct {
		abs  float64
		sign float64
	}
	var diffs []diff
	for i := range a {
		d := a[i] - b[i]
		if d == 0 {
			continue // standard practice: drop zero differences
		}
		s := 1.0
		if d < 0 {
			s = -1
		}
		diffs = append(diffs, diff{math.Abs(d), s})
	}
	n := len(diffs)
	if n < 6 {
		return WilcoxonResult{N: n}, ErrTooFew
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].abs < diffs[j].abs })
	// Assign mid-ranks, accumulating the tie correction term.
	ranks := make([]float64, n)
	tieCorrection := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && diffs[j].abs == diffs[i].abs {
			j++
		}
		mid := float64(i+j+1) / 2 // average of ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}
	wPlus, wMinus := 0.0, 0.0
	for i, d := range diffs {
		if d.sign > 0 {
			wPlus += ranks[i]
		} else {
			wMinus += ranks[i]
		}
	}
	w := math.Min(wPlus, wMinus)
	nf := float64(n)
	mean := nf * (nf + 1) / 4
	variance := nf*(nf+1)*(2*nf+1)/24 - tieCorrection/48
	if variance <= 0 {
		return WilcoxonResult{W: w, N: n, P: 1}, nil
	}
	// Continuity correction.
	z := (w - mean + 0.5) / math.Sqrt(variance)
	p := 2 * normalCDF(-math.Abs(z))
	if p > 1 {
		p = 1
	}
	return WilcoxonResult{W: w, N: n, Z: z, P: p}, nil
}

// normalCDF evaluates the standard normal CDF via erfc.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
