package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDescriptives(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if Median(xs) != 2.5 {
		t.Fatalf("median %v", Median(xs))
	}
	if Min(xs) != 1 || Max(xs) != 4 {
		t.Fatal("min/max wrong")
	}
	if math.Abs(Variance(xs)-5.0/3) > 1e-12 {
		t.Fatalf("variance %v", Variance(xs))
	}
	odd := []float64{5, 1, 9}
	if Median(odd) != 5 {
		t.Fatalf("odd median %v", Median(odd))
	}
}

func TestQuantileBounds(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if Quantile(xs, 0) != 10 || Quantile(xs, 1) != 50 {
		t.Fatal("extreme quantiles wrong")
	}
	if Quantile(xs, 0.25) != 20 {
		t.Fatalf("q25 %v", Quantile(xs, 0.25))
	}
	if Quantile(xs, 0.5) != 30 {
		t.Fatalf("q50 %v", Quantile(xs, 0.5))
	}
	// Interpolated.
	if got := Quantile([]float64{0, 1}, 0.75); got != 0.75 {
		t.Fatalf("interp %v", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a := math.Abs(math.Mod(q1, 1))
		b := math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		return Quantile(raw, a) <= Quantile(raw, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.55, 0.9, 1.0, -5, 7}
	counts, edges := Histogram(xs, 0, 1, 2)
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("counts %v", counts)
	}
	if edges[0] != 0 || edges[1] != 0.5 || edges[2] != 1 {
		t.Fatalf("edges %v", edges)
	}
}

func TestWilcoxonNoEffect(t *testing.T) {
	// Paired samples differing only by symmetric noise: p should be large.
	rng := rand.New(rand.NewSource(1))
	n := 100
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := rng.Float64() * 100
		a[i] = base + rng.NormFloat64()
		b[i] = base + rng.NormFloat64()
	}
	res, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.05 {
		t.Fatalf("no-effect pairs rejected: p=%v z=%v", res.P, res.Z)
	}
}

func TestWilcoxonDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 60
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := rng.Float64() * 100
		a[i] = base + 1.0 + rng.NormFloat64()*0.3 // consistent +1 shift
		b[i] = base
	}
	res, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Fatalf("clear shift not detected: p=%v", res.P)
	}
}

func TestWilcoxonHandlesTiesAndZeros(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} // all zero differences
	if _, err := WilcoxonSignedRank(a, b); err == nil {
		t.Fatal("all-zero differences should report too few observations")
	}
	// Heavy ties among differences must not produce NaN.
	c := []float64{2, 2, 2, 2, 0, 0, 0, 1, 1, 3}
	d := []float64{1, 1, 1, 1, 1, 1, 1, 0, 0, 0}
	res, err := WilcoxonSignedRank(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.P) || res.P < 0 || res.P > 1 {
		t.Fatalf("p out of range: %v", res.P)
	}
}

func TestWilcoxonLengthMismatch(t *testing.T) {
	if _, err := WilcoxonSignedRank([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestNormalCDF(t *testing.T) {
	if math.Abs(normalCDF(0)-0.5) > 1e-12 {
		t.Fatal("cdf(0) != 0.5")
	}
	if math.Abs(normalCDF(1.959964)-0.975) > 1e-4 {
		t.Fatalf("cdf(1.96) = %v", normalCDF(1.959964))
	}
}
