package mgard

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pressio/internal/core"
)

func smooth(dims []uint64, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	total := 1
	for _, d := range dims {
		total *= int(d)
	}
	out := make([]float32, total)
	for i := range out {
		out[i] = float32(30*math.Sin(float64(i)/40) + rng.NormFloat64()*0.02)
	}
	return out
}

func maxErr(a []float32, b []float32) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > worst {
			worst = d
		}
	}
	return worst
}

func TestForwardInverse1DExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(100)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 10
		}
		orig := append([]float64(nil), v...)
		starts := []int{0}
		forward1D(v, starts, n, 1)
		inverse1D(v, starts, n, 1)
		for i := range v {
			if math.Abs(v[i]-orig[i]) > 1e-9*math.Max(1, math.Abs(orig[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeRecomposeExact3D(t *testing.T) {
	dims := []uint64{7, 9, 11}
	vals := smooth(dims, 1)
	work := make([]float64, len(vals))
	for i, v := range vals {
		work[i] = float64(v)
	}
	orig := append([]float64(nil), work...)
	decompose(work, dims)
	recompose(work, dims)
	for i := range work {
		if math.Abs(work[i]-orig[i]) > 1e-8 {
			t.Fatalf("elem %d: %g vs %g", i, work[i], orig[i])
		}
	}
}

func TestBoundHolds(t *testing.T) {
	for _, dims := range [][]uint64{{100}, {17, 23}, {9, 11, 13}, {32, 32, 32}} {
		vals := smooth(dims, 2)
		for _, eb := range []float64{1, 0.1, 1e-3} {
			stream, err := CompressSlice(vals, dims, Params{Mode: core.BoundAbs, Bound: eb})
			if err != nil {
				t.Fatalf("dims %v eb %g: %v", dims, eb, err)
			}
			dec, outDims, err := DecompressSlice[float32](stream)
			if err != nil {
				t.Fatalf("dims %v eb %g: %v", dims, eb, err)
			}
			if len(outDims) != len(dims) {
				t.Fatalf("dims %v", outDims)
			}
			if worst := maxErr(vals, dec); worst > eb {
				t.Fatalf("dims %v eb %g: max err %g", dims, eb, worst)
			}
		}
	}
}

func TestBoundPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(300)
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)-3)))
		}
		eb := math.Pow(10, float64(-rng.Intn(5)))
		stream, err := CompressSlice(vals, []uint64{uint64(n)}, Params{Mode: core.BoundAbs, Bound: eb})
		if err != nil {
			return false
		}
		dec, _, err := DecompressSlice[float32](stream)
		if err != nil {
			return false
		}
		return maxErr(vals, dec) <= eb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRelBound(t *testing.T) {
	dims := []uint64{20, 20}
	vals := smooth(dims, 3)
	rel := 1e-3
	stream, err := CompressSlice(vals, dims, Params{Mode: core.BoundValueRangeRel, Bound: rel})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecompressSlice[float32](stream)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, float64(v))
		hi = math.Max(hi, float64(v))
	}
	if worst := maxErr(vals, dec); worst > rel*(hi-lo) {
		t.Fatalf("max err %g exceeds %g", worst, rel*(hi-lo))
	}
}

func TestMinPointsPerDimension(t *testing.T) {
	// §V: MGARD errors out rather than compressing dims < 3.
	for _, dims := range [][]uint64{{2}, {1, 10}, {10, 2}, {4, 4, 2}} {
		total := 1
		for _, d := range dims {
			total *= int(d)
		}
		vals := make([]float32, total)
		if _, err := CompressSlice(vals, dims, Params{Mode: core.BoundAbs, Bound: 0.1}); err == nil {
			t.Fatalf("dims %v: expected ErrTooSmall", dims)
		}
	}
}

func TestNonFiniteRejected(t *testing.T) {
	vals := []float32{1, 2, float32(math.NaN()), 4}
	if _, err := CompressSlice(vals, []uint64{4}, Params{Mode: core.BoundAbs, Bound: 0.1}); err == nil {
		t.Fatal("expected ErrNonFinite")
	}
}

func TestFloat64Path(t *testing.T) {
	dims := []uint64{15, 15}
	vals := make([]float64, 225)
	for i := range vals {
		vals[i] = math.Cos(float64(i) / 13)
	}
	eb := 1e-8
	stream, err := CompressSlice(vals, dims, Params{Mode: core.BoundAbs, Bound: eb})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecompressSlice[float64](stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Abs(vals[i]-dec[i]) > eb {
			t.Fatalf("elem %d error %g", i, math.Abs(vals[i]-dec[i]))
		}
	}
}

func TestCompressesSmoothData(t *testing.T) {
	dims := []uint64{32, 32, 32}
	vals := smooth(dims, 4)
	stream, err := CompressSlice(vals, dims, Params{Mode: core.BoundValueRangeRel, Bound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(vals)*4) / float64(len(stream)); ratio < 2 {
		t.Fatalf("ratio %f too low for smooth data", ratio)
	}
}

func TestCorruptStreams(t *testing.T) {
	dims := []uint64{8, 8}
	vals := smooth(dims, 5)
	stream, err := CompressSlice(vals, dims, Params{Mode: core.BoundAbs, Bound: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, 5, 8, len(stream) - 2} {
		if _, _, err := DecompressSlice[float32](stream[:cut]); err == nil {
			t.Fatalf("truncation at %d: expected error", cut)
		}
	}
	if _, _, err := DecompressSlice[float64](stream); err == nil {
		t.Fatal("expected dtype mismatch")
	}
}

func TestPluginRoundTripAndConfig(t *testing.T) {
	dims := []uint64{12, 12, 12}
	vals := smooth(dims, 6)
	in := core.FromFloat32s(vals, dims...)
	c, err := core.NewCompressor("mgard")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetOptions(core.NewOptions().SetValue(core.KeyAbs, 0.05)); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, dims...)
	if err != nil {
		t.Fatal(err)
	}
	if worst := maxErr(vals, dec.Float32s()); worst > 0.05 {
		t.Fatalf("max err %g", worst)
	}
	if v, err := c.Configuration().GetUint64("mgard:min_points_per_dim"); err != nil || v != 3 {
		t.Fatalf("configuration: %v %v", v, err)
	}
	// The plugin surfaces the §V failure mode for tiny dims.
	small := core.FromFloat32s(make([]float32, 4), 2, 2)
	if _, err := core.Compress(c, small); err == nil {
		t.Fatal("expected error for 2x2 input")
	}
}

func BenchmarkCompress3D(b *testing.B) {
	dims := []uint64{48, 48, 48}
	vals := smooth(dims, 1)
	p := Params{Mode: core.BoundValueRangeRel, Bound: 1e-3}
	b.SetBytes(int64(len(vals) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressSlice(vals, dims, p); err != nil {
			b.Fatal(err)
		}
	}
}
