// Package mgard implements a multilevel (multigrid) error-bounded lossy
// compressor in the style of MGARD (Ainsworth et al.): values are
// decomposed into hierarchical surpluses on a sequence of dyadic grids
// (linear-interpolation prediction from the next-coarser grid, applied
// separably per dimension), the surplus coefficients are uniformly
// quantized, and the codes are entropy coded with zig-zag varints plus a
// DEFLATE backend.
//
// Because interpolation errors accumulate across levels, the quantization
// bin starts at bound/2^d and the compressor *verifies* the reconstruction
// against the requested bound before emitting, shrinking the bin and
// retrying in the rare case the conservative estimate is insufficient. The
// emitted stream therefore always satisfies the pointwise bound.
//
// Mirroring the original MGARD behaviour the paper quotes in §V, the
// plugin refuses grids with fewer than 3 points in any dimension.
package mgard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"pressio/internal/core"
	"pressio/internal/lossless"
)

// Version is the compressor version reported through the plugin interface.
const Version = "0.1.0-go"

// ErrCorrupt reports a malformed mgard stream.
var ErrCorrupt = errors.New("mgard: corrupt stream")

// ErrNonFinite reports NaN or Inf input, which the multilevel transform
// cannot represent.
var ErrNonFinite = errors.New("mgard: non-finite values unsupported")

// ErrTooSmall mirrors MGARD's requirement of at least 3 points per
// dimension.
var ErrTooSmall = errors.New("mgard: requires at least 3 points in each dimension")

// Float constrains the element types the compressor accepts.
type Float interface {
	~float32 | ~float64
}

// Params configures a compression call.
type Params struct {
	// Mode selects absolute or value-range-relative interpretation of
	// Bound.
	Mode core.ErrorBoundMode
	// Bound is the pointwise error bound. Must be > 0.
	Bound float64
	// LosslessLevel is the DEFLATE effort (0 = default).
	LosslessLevel int
}

const magic = "MGG1"

// levels returns the number of dyadic levels for a grid of n points.
func levels(n int) int {
	l := 0
	for (1 << (l + 1)) <= n-1 {
		l++
	}
	return l
}

// forward1D replaces fine-grid values with hierarchical surpluses along one
// axis, for every line of the field. stride is the element distance along
// the axis, n the axis extent, and lines iterates all (start) offsets.
func forward1D(v []float64, starts []int, n, stride int) {
	maxL := levels(n)
	for l := 1; l <= maxL; l++ {
		h := 1 << (l - 1)
		step := 1 << l
		for _, s := range starts {
			for i := h; i < n; i += step {
				left := v[s+(i-h)*stride]
				var pred float64
				if i+h < n {
					pred = 0.5 * (left + v[s+(i+h)*stride])
				} else {
					pred = left
				}
				v[s+i*stride] -= pred
			}
		}
	}
}

// inverse1D undoes forward1D.
func inverse1D(v []float64, starts []int, n, stride int) {
	maxL := levels(n)
	for l := maxL; l >= 1; l-- {
		h := 1 << (l - 1)
		step := 1 << l
		for _, s := range starts {
			for i := h; i < n; i += step {
				left := v[s+(i-h)*stride]
				var pred float64
				if i+h < n {
					pred = 0.5 * (left + v[s+(i+h)*stride])
				} else {
					pred = left
				}
				v[s+i*stride] += pred
			}
		}
	}
}

// lineStarts enumerates the start offset of every 1-D line along dimension
// d for a tensor with the given dims (C order).
// maxGeomElems bounds the declared element count (and so every extent and
// partial product), keeping extent arithmetic overflow-free.
const maxGeomElems = 1 << 42

// checkedDims validates every extent and the total element count against
// maxGeomElems and returns a freshly built copy of dims plus the product.
// The copy, not the caller's slice, must be handed to the transform
// kernels: its elements are proven bounded here, so declared-shape input
// can never drive lineStarts or the 1-D passes past allocated storage.
func checkedDims(dims []uint64) ([]uint64, uint64, error) {
	if len(dims) == 0 {
		return nil, 0, fmt.Errorf("mgard: %w: no dimensions", core.ErrInvalidDims)
	}
	out := make([]uint64, len(dims))
	total := uint64(1)
	for i, d := range dims {
		if d < 1 || d > maxGeomElems || total > maxGeomElems/d {
			return nil, 0, fmt.Errorf("mgard: %w: dims %v exceed %d elements", core.ErrInvalidDims, dims, uint64(maxGeomElems))
		}
		total *= d
		out[i] = d
	}
	return out, total, nil
}

func lineStarts(dims []uint64, d int) ([]int, int, int) {
	n := int(dims[d])
	stride := 1
	for i := d + 1; i < len(dims); i++ {
		stride *= int(dims[i])
	}
	total := 1
	for _, v := range dims {
		total *= int(v)
	}
	lines := total / n
	starts := make([]int, 0, lines)
	// Iterate all indices with dimension d fixed at 0.
	var walk func(dim, off int)
	walk = func(dim, off int) {
		if dim == len(dims) {
			starts = append(starts, off)
			return
		}
		if dim == d {
			walk(dim+1, off)
			return
		}
		str := 1
		for i := dim + 1; i < len(dims); i++ {
			str *= int(dims[i])
		}
		for i := 0; i < int(dims[dim]); i++ {
			walk(dim+1, off+i*str)
		}
	}
	walk(0, 0)
	return starts, n, stride
}

// decompose applies the separable multilevel transform over all dims.
func decompose(v []float64, dims []uint64) {
	for d := range dims {
		if dims[d] < 2 {
			continue
		}
		starts, n, stride := lineStarts(dims, d)
		forward1D(v, starts, n, stride)
	}
}

// recompose inverts decompose (dims in reverse order).
func recompose(v []float64, dims []uint64) {
	for d := len(dims) - 1; d >= 0; d-- {
		if dims[d] < 2 {
			continue
		}
		starts, n, stride := lineStarts(dims, d)
		inverse1D(v, starts, n, stride)
	}
}

// CompressSlice compresses vals shaped dims under p. Every dimension must
// have at least 3 points.
func CompressSlice[T Float](vals []T, dims []uint64, p Params) ([]byte, error) {
	if p.Bound <= 0 || math.IsNaN(p.Bound) || math.IsInf(p.Bound, 0) {
		return nil, fmt.Errorf("mgard: bound %v must be positive and finite", p.Bound)
	}
	for _, d := range dims {
		if d < 3 {
			return nil, fmt.Errorf("%w: dims %v", ErrTooSmall, dims)
		}
	}
	dims, total64, err := checkedDims(dims)
	if err != nil {
		return nil, err
	}
	total := int(total64)
	if total != len(vals) {
		return nil, fmt.Errorf("mgard: %w: dims %v vs %d elements", core.ErrInvalidDims, dims, len(vals))
	}
	work := make([]float64, total)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range vals {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, ErrNonFinite
		}
		work[i] = f
		lo = math.Min(lo, f)
		hi = math.Max(hi, f)
	}
	eb := p.Bound
	if p.Mode == core.BoundValueRangeRel {
		eb = p.Bound * (hi - lo)
		if eb <= 0 {
			eb = math.SmallestNonzeroFloat32
		}
	}

	decompose(work, dims)

	// Start with bin = eb / 2^d and verify; shrink until the bound holds.
	bin := eb / float64(uint64(1)<<len(dims))
	var codes []int64
	for attempt := 0; ; attempt++ {
		if attempt > 12 {
			return nil, fmt.Errorf("mgard: could not satisfy bound %g", eb)
		}
		codes = quantize(work, bin)
		recon := dequantize(codes, bin)
		recompose(recon, dims)
		if worstErr(vals, recon) <= eb {
			break
		}
		bin /= 2
	}

	var payload []byte
	payload = binary.AppendUvarint(payload, uint64(len(codes)))
	for _, q := range codes {
		payload = binary.AppendVarint(payload, q)
	}
	packed, err := lossless.Deflate(payload, p.LosslessLevel)
	if err != nil {
		return nil, err
	}

	var out []byte
	out = append(out, magic...)
	out = append(out, dtypeByte[T]())
	out = append(out, byte(len(dims)))
	for _, d := range dims {
		out = binary.AppendUvarint(out, d)
	}
	out = binary.AppendUvarint(out, math.Float64bits(bin))
	out = append(out, packed...)
	return out, nil
}

func quantize(v []float64, bin float64) []int64 {
	codes := make([]int64, len(v))
	inv := 1 / (2 * bin)
	for i, x := range v {
		codes[i] = int64(math.Floor(x*inv + 0.5))
	}
	return codes
}

func dequantize(codes []int64, bin float64) []float64 {
	v := make([]float64, len(codes))
	for i, q := range codes {
		v[i] = float64(q) * 2 * bin
	}
	return v
}

func worstErr[T Float](orig []T, recon []float64) float64 {
	worst := 0.0
	for i := range orig {
		// Compare after rounding to the storage type, since decompression
		// returns T values.
		if d := math.Abs(float64(T(recon[i])) - float64(orig[i])); d > worst {
			worst = d
		}
	}
	return worst
}

// Header describes a compressed stream.
type Header struct {
	DType core.DType
	Dims  []uint64
	Bin   float64
}

// ParseHeader reads the stream header.
func ParseHeader(stream []byte) (Header, int, error) {
	var h Header
	if len(stream) < 6 || string(stream[:4]) != magic {
		return h, 0, ErrCorrupt
	}
	switch stream[4] {
	case 1:
		h.DType = core.DTypeFloat32
	case 2:
		h.DType = core.DTypeFloat64
	default:
		return h, 0, ErrCorrupt
	}
	rank := int(stream[5])
	if rank == 0 || rank > 16 {
		return h, 0, ErrCorrupt
	}
	pos := 6
	h.Dims = make([]uint64, rank)
	for i := range h.Dims {
		v, sz := binary.Uvarint(stream[pos:])
		if sz <= 0 || v == 0 || v > 1<<40 {
			return h, 0, ErrCorrupt
		}
		h.Dims[i] = v
		pos += sz
	}
	binBits, sz := binary.Uvarint(stream[pos:])
	if sz <= 0 {
		return h, 0, ErrCorrupt
	}
	pos += sz
	h.Bin = math.Float64frombits(binBits)
	if h.Bin <= 0 || math.IsNaN(h.Bin) || math.IsInf(h.Bin, 0) {
		return h, 0, ErrCorrupt
	}
	return h, pos, nil
}

// DecompressSlice decodes a stream produced by CompressSlice.
func DecompressSlice[T Float](stream []byte) ([]T, []uint64, error) {
	h, pos, err := ParseHeader(stream)
	if err != nil {
		return nil, nil, err
	}
	if h.DType != wantDType[T]() {
		return nil, nil, fmt.Errorf("mgard: %w: stream holds %s", core.ErrInvalidDType, h.DType)
	}
	payload, err := lossless.Inflate(stream[pos:])
	if err != nil {
		return nil, nil, err
	}
	count, sz := binary.Uvarint(payload)
	// Each code costs at least one payload byte, bounding allocations
	// against decompression bombs.
	if sz <= 0 || count > uint64(len(payload)) {
		return nil, nil, ErrCorrupt
	}
	dims, total, err := checkedDims(h.Dims)
	if err != nil {
		return nil, nil, ErrCorrupt
	}
	if count != total {
		return nil, nil, ErrCorrupt
	}
	codes := make([]int64, count)
	off := sz
	for i := range codes {
		v, sz := binary.Varint(payload[off:])
		if sz <= 0 {
			return nil, nil, ErrCorrupt
		}
		codes[i] = v
		off += sz
	}
	recon := dequantize(codes, h.Bin)
	recompose(recon, dims)
	out := make([]T, total)
	for i, v := range recon {
		out[i] = T(v)
	}
	return out, dims, nil
}

func dtypeByte[T Float]() byte {
	var zero T
	if _, ok := any(zero).(float32); ok {
		return 1
	}
	return 2
}

func wantDType[T Float]() core.DType {
	var zero T
	if _, ok := any(zero).(float32); ok {
		return core.DTypeFloat32
	}
	return core.DTypeFloat64
}
