package mgard

import (
	"fmt"

	"pressio/internal/core"
)

// Option keys the mgard plugin owns.
const (
	keyTolerance = "mgard:tolerance"
)

// plugin adapts the multilevel compressor to the framework.
type plugin struct {
	bound core.BoundConfig
	level int32
}

func init() {
	core.RegisterCompressor("mgard", func() core.CompressorPlugin {
		return &plugin{bound: core.BoundConfig{Mode: core.BoundAbs, Bound: 1e-3}}
	})
}

func (p *plugin) Prefix() string  { return "mgard" }
func (p *plugin) Version() string { return Version }

func (p *plugin) Options() *core.Options {
	o := core.NewOptions()
	p.bound.Describe("mgard", o)
	o.SetValue(keyTolerance, p.bound.Bound)
	o.SetValue(core.KeyLossless, p.level)
	return o
}

func (p *plugin) SetOptions(o *core.Options) error {
	if err := p.bound.ApplyOptions("mgard", o); err != nil {
		return err
	}
	if v, err := o.GetFloat64(keyTolerance); err == nil {
		p.bound = core.BoundConfig{Mode: core.BoundAbs, Bound: v}
	}
	if v, err := o.GetInt32(core.KeyLossless); err == nil {
		p.level = v
	}
	return nil
}

func (p *plugin) CheckOptions(o *core.Options) error {
	clone := *p
	if err := clone.SetOptions(o); err != nil {
		return err
	}
	if clone.bound.Bound <= 0 {
		return fmt.Errorf("%w: mgard tolerance must be positive", core.ErrInvalidOption)
	}
	return nil
}

func (p *plugin) Configuration() *core.Options {
	cfg := core.StandardConfiguration(core.ThreadSafetyMultiple, "stable", Version, false)
	cfg.SetValue("mgard:min_points_per_dim", uint64(3))
	return cfg
}

func (p *plugin) params() Params {
	return Params{Mode: p.bound.Mode, Bound: p.bound.Bound, LosslessLevel: int(p.level)}
}

func (p *plugin) CompressImpl(in, out *core.Data) error {
	var stream []byte
	var err error
	switch in.DType() {
	case core.DTypeFloat32:
		stream, err = CompressSlice(in.Float32s(), in.Dims(), p.params())
	case core.DTypeFloat64:
		stream, err = CompressSlice(in.Float64s(), in.Dims(), p.params())
	default:
		return fmt.Errorf("%w: mgard supports float32/float64, got %s", core.ErrInvalidDType, in.DType())
	}
	if err != nil {
		return err
	}
	out.Become(core.NewBytes(stream))
	return nil
}

func (p *plugin) DecompressImpl(in, out *core.Data) error {
	h, _, err := ParseHeader(in.Bytes())
	if err != nil {
		return err
	}
	switch h.DType {
	case core.DTypeFloat32:
		vals, dims, err := DecompressSlice[float32](in.Bytes())
		if err != nil {
			return err
		}
		out.Become(core.FromFloat32s(vals, dims...))
	case core.DTypeFloat64:
		vals, dims, err := DecompressSlice[float64](in.Bytes())
		if err != nil {
			return err
		}
		out.Become(core.FromFloat64s(vals, dims...))
	default:
		return ErrCorrupt
	}
	return nil
}

func (p *plugin) Clone() core.CompressorPlugin {
	clone := *p
	return &clone
}
