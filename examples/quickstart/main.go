// Quickstart is the Go port of the paper's Appendix A example: compress a
// 300x300x300 float64 buffer with the sz compressor at an absolute error
// bound of 0.5, attach the "size" metric, and print the compression ratio.
// As in the paper, switching to another compressor means changing only the
// plugin name and the option lines.
package main

import (
	"fmt"
	"log"
	"math"

	"pressio/internal/core"

	_ "pressio/internal/lossless"
	_ "pressio/internal/metrics"
	_ "pressio/internal/sz"
	_ "pressio/internal/zfp"
)

func makeInputData() []float64 {
	vals := make([]float64, 300*300*300)
	i := 0
	for x := 0; x < 300; x++ {
		for y := 0; y < 300; y++ {
			for z := 0; z < 300; z++ {
				vals[i] = math.Sin(float64(x)/30)*math.Cos(float64(y)/40) + float64(z)/300
				i++
			}
		}
	}
	return vals
}

func main() {
	// Get a handle to a compressor (pressio_get_compressor(library, "sz")).
	compressor, err := core.NewCompressor("sz")
	if err != nil {
		log.Fatal(err)
	}

	// Configure metrics (pressio_new_metrics(..., {"size"}, 1)).
	metrics, err := core.NewMetrics("size")
	if err != nil {
		log.Fatal(err)
	}
	compressor.SetMetrics(metrics)

	// Configure the compressor: an absolute error bound of 0.5, exactly
	// the Appendix A settings. To use zfp instead, change "sz" above and
	// these two option names — nothing else.
	options := core.NewOptions().
		SetValue("sz:error_bound_mode_str", "abs").
		SetValue("sz:abs_err_bound", 0.5)
	if err := compressor.CheckOptions(options); err != nil {
		log.Fatal(err)
	}
	if err := compressor.SetOptions(options); err != nil {
		log.Fatal(err)
	}

	// Load a 300x300x300 dataset (pressio_data_new_move).
	inputData := core.FromFloat64s(makeInputData(), 300, 300, 300)

	// Set up compressed and decompressed buffers (pressio_data_new_empty).
	compressed := core.NewEmpty(core.DTypeByte, 0)
	decompressed := core.NewEmpty(core.DTypeFloat64, 300, 300, 300)

	// Compress and decompress the data.
	if err := compressor.Compress(inputData, compressed); err != nil {
		log.Fatal(err)
	}
	if err := compressor.Decompress(compressed, decompressed); err != nil {
		log.Fatal(err)
	}

	// Get the compression ratio (pressio_compressor_get_metrics_results).
	results := compressor.MetricsResults()
	ratio, err := results.GetFloat64("size:compression_ratio")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compression ratio: %f\n", ratio)
}
