// Hurricane surveys error-bounded lossy compressors on a CLOUD-like
// atmospheric field — the workload the paper's §V measurements use. It
// sweeps several compressors over several value-range relative bounds and
// prints the ratio/quality trade-off table an application scientist would
// use to choose a compressor, all through the generic interface.
package main

import (
	"fmt"
	"log"

	"pressio/internal/core"
	"pressio/internal/sdrbench"

	_ "pressio/internal/bitgroom"
	_ "pressio/internal/fpzip"
	_ "pressio/internal/lossless"
	_ "pressio/internal/metrics"
	_ "pressio/internal/mgard"
	_ "pressio/internal/sz"
	_ "pressio/internal/tthresh"
	_ "pressio/internal/zfp"
)

func main() {
	cloud := sdrbench.HurricaneCloud(32, 64, 64, 2021)
	fmt.Printf("dataset: CLOUD-like field, dims %v, %d MB\n\n",
		cloud.Dims(), cloud.ByteLen()/(1<<20))

	compressors := []string{"sz", "sz_omp", "zfp", "mgard", "tthresh", "shuffle"}
	bounds := []float64{1e-2, 1e-3, 1e-4}

	fmt.Printf("%-10s %10s %12s %10s %14s %12s\n",
		"compressor", "rel bound", "ratio", "psnr", "max_abs_err", "compress_ms")
	for _, name := range compressors {
		for _, bound := range bounds {
			c, err := core.NewCompressor(name)
			if err != nil {
				log.Fatal(err)
			}
			// One flat option set configures every plugin: each consumes
			// the keys it understands (tthresh's Frobenius eps rides
			// along; the lossless shuffle ignores both).
			opts := core.NewOptions().
				SetValue(core.KeyRel, bound).
				SetValue("tthresh:eps", bound)
			if err := c.SetOptions(opts); err != nil {
				log.Fatal(err)
			}
			m, err := core.NewMetrics("size", "time", "error_stat")
			if err != nil {
				log.Fatal(err)
			}
			c.SetMetrics(m)

			comp, err := core.Compress(c, cloud)
			if err != nil {
				fmt.Printf("%-10s %10.0e %12s\n", name, bound, "failed: "+err.Error())
				continue
			}
			if _, err := core.Decompress(c, comp, cloud.DType(), cloud.Dims()...); err != nil {
				log.Fatal(err)
			}
			res := c.MetricsResults()
			ratio, _ := res.GetFloat64("size:compression_ratio")
			psnr, _ := res.GetFloat64("error_stat:psnr")
			maxErr, _ := res.GetFloat64("error_stat:max_abs_error")
			ms, _ := res.GetFloat64("time:compress")
			fmt.Printf("%-10s %10.0e %12.2f %10.2f %14.4g %12.2f\n",
				name, bound, ratio, psnr, maxErr, ms)
			if name == "shuffle" {
				break // lossless: the bound sweep is meaningless
			}
		}
	}
}
