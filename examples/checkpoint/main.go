// Checkpoint demonstrates compression inside a simulation checkpoint loop:
// each timestep's state is compressed in parallel with the chunking
// meta-compressor and stored as a dataset in an h5lite container, and the
// many-dependent pipeline forwards each step's measured ratio as a
// configuration hint for the next — two of the paper's meta-compressor use
// cases in one workflow.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"pressio/internal/core"
	"pressio/internal/h5lite"
	"pressio/internal/meta"

	_ "pressio/internal/lossless"
	_ "pressio/internal/metrics"
	_ "pressio/internal/pio"
	_ "pressio/internal/sz"
	_ "pressio/internal/zfp"
)

const (
	steps = 6
	nz    = 24
	ny    = 48
	nx    = 48
)

// simulate advances a toy heat-diffusion state one step.
func simulate(state []float32, step int) {
	for i := range state {
		z := i / (ny * nx)
		r := i % (ny * nx)
		y := r / nx
		x := r % nx
		state[i] = float32(
			50*math.Sin(float64(x)/9+float64(step)/3)*math.Cos(float64(y)/7) +
				20*math.Exp(-math.Abs(float64(z)-float64(nz)/2)/6))
	}
}

func main() {
	dir, err := os.MkdirTemp("", "checkpoint")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "run.h5l")

	// The checkpoint compressor: parallel chunking over an error-bounded
	// child, all configured through one flat option set.
	proto, err := core.NewCompressor("chunking")
	if err != nil {
		log.Fatal(err)
	}
	err = proto.SetOptions(core.NewOptions().
		SetValue("chunking:compressor", "sz_threadsafe").
		SetValue("chunking:chunk_rows", uint64(6)).
		SetValue(core.KeyAbs, 1e-2))
	if err != nil {
		log.Fatal(err)
	}

	// Collect the timesteps (a real code would stream them).
	var timesteps []*core.Data
	state := make([]float32, nz*ny*nx)
	for s := 0; s < steps; s++ {
		simulate(state, s)
		d := core.FromFloat32s(append([]float32(nil), state...), nz, ny, nx)
		timesteps = append(timesteps, d)
	}

	// Many-dependent pipeline: each step's ratio informs the next bound
	// (tighten when compression is cheap, relax when it is not).
	fmt.Printf("%-6s %12s %10s\n", "step", "compressed", "ratio")
	var lastRatio float64
	compressed, err := meta.CompressManyDependent(proto, timesteps, []string{"size"},
		func(step int, results *core.Options) *core.Options {
			r, err := results.GetFloat64("size:compression_ratio")
			if err != nil {
				return nil
			}
			lastRatio = r
			if r > 20 {
				return core.NewOptions().SetValue(core.KeyAbs, 5e-3)
			}
			return core.NewOptions().SetValue(core.KeyAbs, 1e-2)
		})
	if err != nil {
		log.Fatal(err)
	}

	// Store every compressed timestep in one container; the container
	// itself applies no filter since the payloads are already compressed.
	f := h5lite.Create(path)
	var totalRaw, totalComp uint64
	for s, comp := range compressed {
		name := fmt.Sprintf("step%03d", s)
		if err := f.WriteDataset(name, comp, h5lite.DatasetOptions{}); err != nil {
			log.Fatal(err)
		}
		totalRaw += timesteps[s].ByteLen()
		totalComp += comp.ByteLen()
		fmt.Printf("%-6d %12d %10.2f\n", s, comp.ByteLen(),
			float64(timesteps[s].ByteLen())/float64(comp.ByteLen()))
	}
	if err := f.Save(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheckpoint file: %d datasets, overall ratio %.2f (last step ratio %.2f)\n",
		len(compressed), float64(totalRaw)/float64(totalComp), lastRatio)

	// Restart path: reload a step and verify the bound held.
	g, err := h5lite.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	stored, err := g.ReadDataset("step003")
	if err != nil {
		log.Fatal(err)
	}
	restored := core.NewEmpty(core.DTypeFloat32, nz, ny, nx)
	if err := proto.Decompress(core.NewBytes(stored.Bytes()), restored); err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	orig := timesteps[3].Float32s()
	for i, v := range restored.Float32s() {
		if d := math.Abs(float64(v - orig[i])); d > worst {
			worst = d
		}
	}
	fmt.Printf("restart check: step003 max error %.4g (bound 1e-2: %v)\n", worst, worst <= 1e-2)
}
