// Streaming demonstrates the §VIII future-work features implemented in
// this reproduction: framed streaming compression over any registered
// compressor with an asynchronous pipelined writer, and one-shot
// asynchronous compression overlapping independent buffers.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"math"

	"pressio/internal/core"
	"pressio/internal/stream"

	_ "pressio/internal/lossless"
	_ "pressio/internal/sz"
)

func main() {
	// --- Streaming: compress an unbounded byte stream in frames ---------
	payload := make([]byte, 0, 1<<20)
	for i := 0; len(payload) < 1<<20; i++ {
		// A slowly varying byte stream (e.g. instrument telemetry).
		payload = append(payload, byte(128+100*math.Sin(float64(i)/500)))
	}

	var sink bytes.Buffer
	w, err := stream.NewWriter(&sink, "flate", nil,
		stream.WithFrameSize(1<<16), stream.WithAsync(4))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := w.Write(payload); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d bytes into %d compressed bytes (%.1fx) in %d-byte frames\n",
		len(payload), sink.Len(), float64(len(payload))/float64(sink.Len()), 1<<16)

	r, err := stream.NewReader(&sink, "flate", nil)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := io.ReadAll(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored %d bytes, identical: %v\n\n", len(restored), bytes.Equal(restored, payload))

	// --- Async: overlap compression of independent timesteps ------------
	c, err := core.NewCompressor("sz_threadsafe")
	if err != nil {
		log.Fatal(err)
	}
	if err := c.SetOptions(core.NewOptions().SetValue(core.KeyAbs, 1e-3)); err != nil {
		log.Fatal(err)
	}
	var pending []<-chan stream.AsyncResult
	for step := 0; step < 4; step++ {
		vals := make([]float32, 64*64)
		for i := range vals {
			vals[i] = float32(math.Sin(float64(i)/40 + float64(step)))
		}
		in := core.FromFloat32s(vals, 64, 64)
		pending = append(pending, stream.CompressAsync(c, in))
	}
	for step, ch := range pending {
		res := <-ch
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("timestep %d compressed asynchronously: %d bytes\n", step, res.Data.ByteLen())
	}
}
