// Optimizer demonstrates the configuration-search workflow the paper's
// LibPressio-Opt enables: hit a fixed compression ratio on any compressor,
// respect a quality floor, and race compressor types through the switch
// meta-compressor — all without compressor-specific code.
package main

import (
	"fmt"
	"log"

	"pressio/internal/core"
	"pressio/internal/opt"
	"pressio/internal/sdrbench"

	_ "pressio/internal/lossless"
	_ "pressio/internal/meta"
	_ "pressio/internal/metrics"
	_ "pressio/internal/mgard"
	_ "pressio/internal/sz"
	_ "pressio/internal/zfp"
)

func main() {
	data := sdrbench.ScaleLetKF(16, 48, 48, 7)
	fmt.Printf("dataset: weather-like field, dims %v\n\n", data.Dims())

	// 1. Fixed ratio: "give me exactly 16x" (the FRaZ use case).
	c, err := core.NewCompressor("sz")
	if err != nil {
		log.Fatal(err)
	}
	res, err := opt.TuneRatio(c, data, 16, opt.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed ratio 16x on sz: bound=%.4g ratio=%.2f psnr=%.1f dB (%d evaluations)\n",
		res.Bound, res.Ratio, res.PSNR, res.Evaluations)

	// 2. Quality floor: best ratio with PSNR >= 80 dB.
	res, err = opt.TunePSNR(c, data, 80, opt.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("psnr floor 80 dB on sz:  bound=%.4g ratio=%.2f psnr=%.1f dB\n",
		res.Bound, res.Ratio, res.PSNR)

	// 3. Race compressor types at a fixed bound.
	names := []string{"sz", "sz_omp", "zfp", "mgard", "shuffle"}
	best, results, err := opt.BestCompressor(names, data,
		core.NewOptions().SetValue(core.KeyAbs, res.Bound))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrace at abs bound %.4g:\n", res.Bound)
	for _, name := range names {
		r, ok := results[name]
		if !ok {
			fmt.Printf("  %-10s failed\n", name)
			continue
		}
		fmt.Printf("  %-10s ratio=%8.2f psnr=%6.1f dB\n", name, r.Ratio, r.PSNR)
	}
	fmt.Printf("winner: %s\n", best)
}
