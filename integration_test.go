// End-to-end integration tests: build the real pressio CLI binary and
// drive it as a user would — file-based round trips and the external
// worker protocol across a genuine process boundary.
package pressio

import (
	"encoding/binary"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"pressio/internal/core"
	"pressio/internal/launch"
)

var (
	cliOnce sync.Once
	cliBin  string
	cliErr  string
)

func buildCLI(t *testing.T) string {
	t.Helper()
	cliOnce.Do(func() {
		dir, err := os.MkdirTemp("", "pressio-cli")
		if err != nil {
			cliErr = err.Error()
			return
		}
		bin := filepath.Join(dir, "pressio")
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/pressio").CombinedOutput()
		if err != nil {
			cliErr = string(out)
			return
		}
		cliBin = bin
	})
	if cliBin == "" {
		t.Skipf("go build unavailable: %s", cliErr)
	}
	return cliBin
}

func TestCLIBinaryRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	n := 48 * 48
	vals := make([]float32, n)
	raw := make([]byte, 4*n)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) / 14 * math.Pi))
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(vals[i]))
	}
	if err := os.WriteFile(in, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin,
		"-compressor", "sz", "-mode", "roundtrip",
		"-input", in, "-dims", "48,48", "-dtype", "float32",
		"-o", "pressio:abs=0.001", "-metrics", "size,error_stat").CombinedOutput()
	if err != nil {
		t.Fatalf("cli failed: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "size:compression_ratio=") {
		t.Fatalf("missing ratio in output:\n%s", text)
	}
	if !strings.Contains(text, "error_stat:max_abs_error=") {
		t.Fatalf("missing error stat in output:\n%s", text)
	}
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, "error_stat:max_abs_error="); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("unparseable %q", line)
			}
			if v > 0.001 {
				t.Fatalf("CLI round trip violated bound: %v", v)
			}
		}
	}
}

func TestWorkerProtocolAcrossProcessBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCLI(t)
	vals := make([]float32, 64*64)
	for i := range vals {
		vals[i] = float32(math.Cos(float64(i) / 9))
	}
	in := core.FromFloat32s(vals, 64, 64)
	ext := launch.External{Binary: bin, Args: []string{"-worker"}}
	comp, dur, err := ext.Compress("sz_threadsafe", map[string]string{"pressio:abs": "0.01"}, in)
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatal("no duration measured")
	}
	if comp.ByteLen() == 0 || comp.ByteLen() >= in.ByteLen() {
		t.Fatalf("worker compression size %d", comp.ByteLen())
	}
	// Decode the worker's stream in-process: bound must hold end-to-end.
	c, err := core.NewCompressor("sz_threadsafe")
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec.Float32s() {
		if math.Abs(float64(v-vals[i])) > 0.01 {
			t.Fatalf("elem %d: cross-process bound violated", i)
		}
	}
}
