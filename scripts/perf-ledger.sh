#!/bin/sh
# Perf-ledger workflow (see docs/OBSERVABILITY.md):
#
#   scripts/perf-ledger.sh record [--quick]
#       Measure a fresh ledger on this machine and write BENCH_<date>.json
#       at the repo root, ready to commit. Run it without --quick on a quiet
#       machine when a PR intentionally shifts the performance envelope.
#
#   scripts/perf-ledger.sh check [--quick] [--md out.md]
#       Measure a fresh ledger and gate it against the most recent committed
#       BENCH_*.json with the default (generous) tolerances. Exits non-zero
#       on a regression. --md additionally writes the comparison as a
#       markdown table (CI puts it in the job summary). With no committed
#       ledger the check records nothing and passes.
set -eu

cd "$(dirname "$0")/.."

mode="${1:-check}"
[ $# -gt 0 ] && shift

quick=""
md=""
while [ $# -gt 0 ]; do
    case "$1" in
    --quick) quick="-quick" ;;
    --md)
        shift
        md="$1"
        ;;
    *)
        echo "usage: scripts/perf-ledger.sh [record|check] [--quick] [--md out.md]" >&2
        exit 2
        ;;
    esac
    shift
done

case "$mode" in
record)
    out="BENCH_$(date -u +%Y-%m-%d).json"
    echo "==> recording perf ledger to $out"
    go run ./cmd/pressio-bench -experiment ledger $quick -ledger-out "$out"
    echo "==> commit $out to make it the regression baseline"
    ;;
check)
    echo "==> perf-ledger gate (fresh measurement vs most recent BENCH_*.json)"
    if [ -n "$md" ]; then
        go run ./cmd/pressio-bench -experiment ledger-diff $quick -ledger-md "$md"
    else
        go run ./cmd/pressio-bench -experiment ledger-diff $quick
    fi
    ;;
*)
    echo "usage: scripts/perf-ledger.sh [record|check] [--quick] [--md out.md]" >&2
    exit 2
    ;;
esac
