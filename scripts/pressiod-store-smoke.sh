#!/bin/sh
# pressiod object-store smoke test: build pressiod and pressio-fsck, start
# the daemon with -store-dir, PUT a large multi-chunk object and read it
# back byte-exact (full GET, hyperslab, HTTP range), then SIGKILL the
# daemon in the middle of a PUT load, restart it on the same directory, and
# require that every acknowledged write survived the crash byte-for-byte.
# After a clean SIGTERM drain, pressio-fsck must report the store clean
# (exit 0) — the same exit-code contract pinned by fsck_cli_test.go.
#
# Usage: scripts/pressiod-store-smoke.sh   (also run by the CI store-smoke job)
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
loadpid=""
cleanup() {
    [ -n "$loadpid" ] && kill "$loadpid" 2>/dev/null || true
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "==> build pressiod and pressio-fsck"
go build -o "$tmp/pressiod" ./cmd/pressiod
go build -o "$tmp/pressio-fsck" ./cmd/pressio-fsck

start_daemon() {
    # $1: log file. Sets $pid and $base.
    "$tmp/pressiod" -addr 127.0.0.1:0 -compressor noop \
        -store-dir "$tmp/store" -scrub-interval 2s -lame-duck 200ms \
        >/dev/null 2>"$1" &
    pid=$!
    addr=""
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's/^pressiod: listening on \([^ ]*\).*/\1/p' "$1")
        [ -n "$addr" ] && break
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$addr" ]; then
        echo "pressiod never reported a listen address:" >&2
        cat "$1" >&2
        exit 1
    fi
    i=0
    until curl -fsS "http://$addr/readyz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ $i -ge 50 ] && { echo "/readyz never became ready" >&2; cat "$1" >&2; exit 1; }
        sleep 0.1
    done
    base="http://$addr"
}

echo "==> start daemon with -store-dir (store recovery gates /readyz)"
start_daemon "$tmp/log"

echo "==> PUT a 2 MiB object (8 flate-filtered chunks)"
dd if=/dev/urandom of="$tmp/big.bin" bs=65536 count=32 2>/dev/null
curl -fsS -X PUT --data-binary @"$tmp/big.bin" \
    "$base/objects/smoke/big?dims=524288&dtype=float32&filter=flate&chunk_rows=65536" \
    -o "$tmp/put.json"
grep -q '"chunks": *8' "$tmp/put.json" || {
    echo "PUT info did not report 8 chunks:" >&2
    cat "$tmp/put.json" >&2
    exit 1
}

echo "==> full GET is byte-exact and carries the shape headers"
curl -fsS -D "$tmp/h" "$base/objects/smoke/big" -o "$tmp/big.out"
cmp "$tmp/big.bin" "$tmp/big.out" || { echo "full GET not byte-exact" >&2; exit 1; }
grep -qi '^x-pressio-dtype: float32' "$tmp/h" || {
    echo "GET response missing X-Pressio-Dtype:" >&2
    cat "$tmp/h" >&2
    exit 1
}

echo "==> HTTP range GET answers 206 with the exact slice"
curl -fsS -D "$tmp/h" -H 'Range: bytes=100000-101023' \
    "$base/objects/smoke/big" -o "$tmp/slice.out"
grep -q ' 206' "$tmp/h" || { echo "range GET did not answer 206" >&2; cat "$tmp/h" >&2; exit 1; }
grep -qi '^content-range: bytes 100000-101023/2097152' "$tmp/h" || {
    echo "range GET Content-Range wrong:" >&2
    cat "$tmp/h" >&2
    exit 1
}
dd if="$tmp/big.bin" of="$tmp/slice.want" bs=1 skip=100000 count=1024 2>/dev/null
cmp "$tmp/slice.want" "$tmp/slice.out" || { echo "range GET not byte-exact" >&2; exit 1; }

echo "==> SIGKILL the daemon in the middle of a PUT load"
dd if=/dev/zero of="$tmp/small.bin" bs=4096 count=1 2>/dev/null
: >"$tmp/acked"
(
    i=0
    while [ $i -lt 10000 ]; do
        if curl -fsS -X PUT --data-binary @"$tmp/small.bin" \
            "$base/objects/load/$i?dims=1024&dtype=float32&filter=flate&chunk_rows=256" \
            -o /dev/null 2>/dev/null; then
            echo "load/$i" >>"$tmp/acked"
        else
            exit 0 # daemon is gone; stop generating load
        fi
        i=$((i + 1))
    done
) &
loadpid=$!
i=0
while [ "$(wc -l <"$tmp/acked")" -lt 5 ] && [ $i -lt 100 ]; do
    sleep 0.1
    i=$((i + 1))
done
[ "$(wc -l <"$tmp/acked")" -ge 1 ] || { echo "load loop never got an ack" >&2; exit 1; }
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
wait "$loadpid" 2>/dev/null || true
loadpid=""
acked=$(wc -l <"$tmp/acked")
echo "    killed with $acked acknowledged writes in the journal"

echo "==> offline fsck sees the crash debris (informational)"
"$tmp/pressio-fsck" "$tmp/store" >"$tmp/fsck-precheck" 2>&1 || true
sed 's/^/    /' "$tmp/fsck-precheck"

echo "==> restart on the same directory: recovery replays the journal"
start_daemon "$tmp/log2"
grep -q '"store.open"' "$tmp/log2" || {
    echo "restart log has no store.open recovery event:" >&2
    cat "$tmp/log2" >&2
    exit 1
}

echo "==> the large object is still byte-exact after the crash"
curl -fsS "$base/objects/smoke/big" -o "$tmp/big.out2"
cmp "$tmp/big.bin" "$tmp/big.out2" || { echo "big object damaged by crash" >&2; exit 1; }

echo "==> every acknowledged write survived ($acked objects)"
while IFS= read -r name; do
    curl -fsS "$base/objects/$name" -o "$tmp/got.bin" || {
        echo "acknowledged object $name lost after crash" >&2
        exit 1
    }
    cmp -s "$tmp/small.bin" "$tmp/got.bin" || {
        echo "acknowledged object $name not byte-exact after crash" >&2
        exit 1
    }
done <"$tmp/acked"

echo "==> SIGTERM and graceful drain (checkpoints and closes the store)"
kill -TERM "$pid"
wait "$pid" # must exit 0: a clean drain within the deadline
pid=""

echo "==> offline fsck reports the store clean (exit 0)"
"$tmp/pressio-fsck" "$tmp/store"

echo "==> pressiod store smoke OK"
