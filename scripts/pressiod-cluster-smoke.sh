#!/bin/sh
# pressiod cluster smoke test: build the daemon, start three shard processes
# and one router over them, wait for fleet readiness, push compress/
# decompress round-trips through the router (verifying byte-exact recovery),
# check trace continuity across the router→shard hop (the caller's
# traceparent id must appear in BOTH the router's and the serving shard's
# /tracez), check the cluster.* counters surface in /metricz, then SIGKILL
# one shard and require round-trips to keep succeeding through failover.
# Finally SIGTERM everything and require clean (exit 0) drains.
#
# Usage: scripts/pressiod-cluster-smoke.sh   (also run by the CI cluster-smoke job)
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do
        kill "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "==> build pressiod"
go build -o "$tmp/pressiod" ./cmd/pressiod

# wait_addr LOGFILE: echo the address from "pressiod: listening on ADDR".
wait_addr() {
    i=0
    while [ $i -lt 100 ]; do
        a=$(sed -n 's/^pressiod: listening on \([^ ]*\).*/\1/p' "$1")
        if [ -n "$a" ]; then
            echo "$a"
            return 0
        fi
        sleep 0.1
        i=$((i + 1))
    done
    echo "pressiod never reported a listen address:" >&2
    cat "$1" >&2
    return 1
}

echo "==> start three shards (flate, so round-trips are byte-exact)"
n=1
while [ $n -le 3 ]; do
    "$tmp/pressiod" -addr 127.0.0.1:0 -compressor flate \
        -lame-duck 100ms 2>"$tmp/shard$n.log" &
    eval "shard${n}_pid=$!"
    pids="$pids $!"
    n=$((n + 1))
done
shard1=$(wait_addr "$tmp/shard1.log")
shard2=$(wait_addr "$tmp/shard2.log")
shard3=$(wait_addr "$tmp/shard3.log")

echo "==> start router over $shard1,$shard2,$shard3"
"$tmp/pressiod" -addr 127.0.0.1:0 -router -peers "$shard1,$shard2,$shard3" \
    -replicas 2 -health-interval 200ms -compressor flate \
    -lame-duck 100ms 2>"$tmp/router.log" &
router_pid=$!
pids="$pids $router_pid"
router=$(wait_addr "$tmp/router.log")
base="http://$router"

echo "==> wait for router /readyz (health checker classified the fleet)"
i=0
until curl -fsS "$base/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ $i -ge 50 ] && { echo "router /readyz never became ready" >&2; cat "$tmp/router.log" >&2; exit 1; }
    sleep 0.1
done

echo "==> round-trip through the router (byte-exact)"
dd if=/dev/urandom of="$tmp/x.bin" bs=4096 count=4 2>/dev/null
curl -fsS --data-binary @"$tmp/x.bin" \
    "$base/compress?dims=4096&dtype=float32" -o "$tmp/x.z"
curl -fsS --data-binary @"$tmp/x.z" \
    "$base/decompress?dims=4096&dtype=float32" -o "$tmp/x.out"
cmp -s "$tmp/x.bin" "$tmp/x.out" || {
    echo "routed round-trip did not restore the payload" >&2
    exit 1
}

echo "==> trace continuity: caller's traceparent survives the router->shard hop"
trace_id=0123456789abcdef0123456789abcdef
curl -fsS -D "$tmp/h" -H "Traceparent: 00-$trace_id-00f067aa0ba902b7-01" \
    --data-binary @"$tmp/x.bin" \
    "$base/compress?dims=4096&dtype=float32" -o /dev/null
got_id=$(sed -n 's/^[Xx]-[Pp]ressio-[Rr]equest-[Ii]d: \([0-9a-f]*\).*/\1/p' "$tmp/h")
if [ "$got_id" != "$trace_id" ]; then
    echo "router response id $got_id, want caller's $trace_id" >&2
    cat "$tmp/h" >&2
    exit 1
fi
curl -fsS "$base/tracez?id=$trace_id" >"$tmp/router-trace.json"
grep -q '"daemon.route"' "$tmp/router-trace.json" || {
    echo "router /tracez has no daemon.route span for $trace_id:" >&2
    cat "$tmp/router-trace.json" >&2
    exit 1
}
hop_found=0
for shard in "$shard1" "$shard2" "$shard3"; do
    if curl -fsS "http://$shard/tracez?id=$trace_id" 2>/dev/null |
        grep -q '"daemon.compress"'; then
        hop_found=1
        break
    fi
done
if [ "$hop_found" -ne 1 ]; then
    echo "no shard retained the caller's trace id $trace_id; continuity broken" >&2
    exit 1
fi

echo "==> cluster counters surface in /metricz"
curl -fsS "$base/metricz" -o "$tmp/metrics"
grep -q '^pressio_cluster_requests_total ' "$tmp/metrics" || {
    echo "/metricz has no pressio_cluster_requests_total sample" >&2
    exit 1
}
# Every non-comment line must still be well-formed exposition, per-peer
# series (host:port baked into the sanitized name) included.
if grep -vE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9eE.]+|)$' "$tmp/metrics"; then
    echo "/metricz contains malformed exposition lines (printed above)" >&2
    exit 1
fi

echo "==> SIGKILL shard 1 ($shard1); round-trips must survive via failover"
kill -KILL "$shard1_pid"
n=1
while [ $n -le 5 ]; do
    dd if=/dev/urandom of="$tmp/k$n.bin" bs=4096 count=1 2>/dev/null
    curl -fsS --data-binary @"$tmp/k$n.bin" \
        "$base/compress?dims=1024&dtype=float32" -o "$tmp/k$n.z"
    curl -fsS --data-binary @"$tmp/k$n.z" \
        "$base/decompress?dims=1024&dtype=float32" -o "$tmp/k$n.out"
    cmp -s "$tmp/k$n.bin" "$tmp/k$n.out" || {
        echo "round-trip $n lost data after the shard kill" >&2
        exit 1
    }
    n=$((n + 1))
done

echo "==> failover/peer-down reflected in cluster metrics"
curl -fsS "$base/metricz" -o "$tmp/metrics2"
grep -Eq '^pressio_cluster_(failovers|peer_down|local_fallback)_total [1-9]' "$tmp/metrics2" || {
    echo "no failover/peer-down/local-fallback counter moved after the kill" >&2
    grep '^pressio_cluster' "$tmp/metrics2" >&2 || true
    exit 1
}

echo "==> SIGTERM router and surviving shards; require clean drains"
kill -TERM "$router_pid"
wait "$router_pid"
kill -TERM "$shard2_pid" "$shard3_pid"
wait "$shard2_pid"
wait "$shard3_pid"
pids=""

echo "==> pressiod cluster smoke OK"
cat "$tmp/router.log"
