#!/bin/sh
# pressiod smoke test: build the daemon, start it on an ephemeral port, wait
# for readiness, push one compress/decompress round-trip through the HTTP
# data plane, then SIGTERM it and require a clean (exit 0) graceful drain.
#
# Usage: scripts/pressiod-smoke.sh   (also run by the CI pressiod-smoke job)
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "==> build pressiod"
go build -o "$tmp/pressiod" ./cmd/pressiod

echo "==> start daemon (ephemeral port, breaker+guard over sz_threadsafe)"
"$tmp/pressiod" -addr 127.0.0.1:0 -compressor sz_threadsafe -breaker -guard \
    -o pressio:abs=0.01 -lame-duck 200ms 2>"$tmp/log" &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/^pressiod: listening on \([^ ]*\).*/\1/p' "$tmp/log")
    [ -n "$addr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "pressiod never reported a listen address:" >&2
    cat "$tmp/log" >&2
    exit 1
fi
base="http://$addr"

echo "==> wait for /readyz on $addr"
i=0
until curl -fsS "$base/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ $i -ge 50 ] && { echo "/readyz never became ready" >&2; exit 1; }
    sleep 0.1
done
curl -fsS "$base/healthz" >/dev/null

echo "==> compress/decompress round-trip"
dd if=/dev/zero of="$tmp/x.bin" bs=4096 count=4 2>/dev/null
curl -fsS --data-binary @"$tmp/x.bin" \
    "$base/compress?dims=4096&dtype=float32" -o "$tmp/x.sz"
curl -fsS --data-binary @"$tmp/x.sz" \
    "$base/decompress?dims=4096&dtype=float32" -o "$tmp/x.out"
out_bytes=$(wc -c <"$tmp/x.out")
if [ "$out_bytes" -ne 16384 ]; then
    echo "round-trip produced $out_bytes bytes, want 16384" >&2
    exit 1
fi

echo "==> SIGTERM and graceful drain"
kill -TERM "$pid"
wait "$pid" # must exit 0: a clean drain within the deadline
pid=""

echo "==> pressiod smoke OK"
cat "$tmp/log"
