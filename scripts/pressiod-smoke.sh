#!/bin/sh
# pressiod smoke test: build the daemon, start it on an ephemeral port, wait
# for readiness, push one compress/decompress round-trip through the HTTP
# data plane (checking the observability headers and that /metricz serves
# valid Prometheus exposition), then SIGTERM it and require a clean (exit 0)
# graceful drain.
#
# Usage: scripts/pressiod-smoke.sh   (also run by the CI pressiod-smoke job)
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "==> build pressiod"
go build -o "$tmp/pressiod" ./cmd/pressiod

echo "==> start daemon (ephemeral port, breaker+guard over sz_threadsafe)"
"$tmp/pressiod" -addr 127.0.0.1:0 -compressor sz_threadsafe -breaker -guard \
    -o pressio:abs=0.01 -lame-duck 200ms 2>"$tmp/log" &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/^pressiod: listening on \([^ ]*\).*/\1/p' "$tmp/log")
    [ -n "$addr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "pressiod never reported a listen address:" >&2
    cat "$tmp/log" >&2
    exit 1
fi
base="http://$addr"

echo "==> wait for /readyz on $addr"
i=0
until curl -fsS "$base/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ $i -ge 50 ] && { echo "/readyz never became ready" >&2; exit 1; }
    sleep 0.1
done
curl -fsS "$base/healthz" >/dev/null

echo "==> health endpoints carry explicit Content-Type and no-store"
for path in /healthz /readyz; do
    curl -fsS -D "$tmp/h" "$base$path" >/dev/null
    grep -qi '^content-type: text/plain; charset=utf-8' "$tmp/h" || {
        echo "$path missing text/plain Content-Type:" >&2
        cat "$tmp/h" >&2
        exit 1
    }
    grep -qi '^cache-control: no-store' "$tmp/h" || {
        echo "$path missing Cache-Control: no-store:" >&2
        cat "$tmp/h" >&2
        exit 1
    }
done

echo "==> compress/decompress round-trip"
dd if=/dev/zero of="$tmp/x.bin" bs=4096 count=4 2>/dev/null
curl -fsS -D "$tmp/h" --data-binary @"$tmp/x.bin" \
    "$base/compress?dims=4096&dtype=float32" -o "$tmp/x.sz"
curl -fsS --data-binary @"$tmp/x.sz" \
    "$base/decompress?dims=4096&dtype=float32" -o "$tmp/x.out"
out_bytes=$(wc -c <"$tmp/x.out")
if [ "$out_bytes" -ne 16384 ]; then
    echo "round-trip produced $out_bytes bytes, want 16384" >&2
    exit 1
fi

echo "==> response carries a request id whose span tree is on /tracez"
req_id=$(sed -n 's/^[Xx]-[Pp]ressio-[Rr]equest-[Ii]d: \([0-9a-f]*\).*/\1/p' "$tmp/h")
if [ -z "$req_id" ]; then
    echo "compress response carried no X-Pressio-Request-Id:" >&2
    cat "$tmp/h" >&2
    exit 1
fi
grep -qi '^traceparent: 00-' "$tmp/h" || {
    echo "compress response carried no traceparent:" >&2
    cat "$tmp/h" >&2
    exit 1
}
curl -fsS "$base/tracez?id=$req_id" >"$tmp/trace.json"
grep -q '"daemon.compress"' "$tmp/trace.json" || {
    echo "/tracez?id=$req_id has no daemon.compress span:" >&2
    cat "$tmp/trace.json" >&2
    exit 1
}

echo "==> /metricz parses as Prometheus text exposition"
curl -fsS -D "$tmp/h" "$base/metricz" -o "$tmp/metrics"
grep -qi '^content-type: text/plain; version=0.0.4' "$tmp/h" || {
    echo "/metricz missing exposition Content-Type:" >&2
    cat "$tmp/h" >&2
    exit 1
}
grep -qi '^cache-control: no-store' "$tmp/h" || {
    echo "/metricz missing Cache-Control: no-store" >&2
    exit 1
}
# Every non-comment line must be "<name>[{labels}] <value>"; the round-trip
# above guarantees at least the request counter is present.
if grep -vE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9eE.]+|)$' "$tmp/metrics"; then
    echo "/metricz contains malformed exposition lines (printed above)" >&2
    exit 1
fi
grep -q '^pressio_service_daemon_requests_total ' "$tmp/metrics" || {
    echo "/metricz has no pressio_service_daemon_requests_total sample" >&2
    exit 1
}
grep -q '^pressio_service_daemon_latency_seconds_bucket{le="' "$tmp/metrics" || {
    echo "/metricz has no request-latency histogram buckets" >&2
    exit 1
}
curl -fsS "$base/metricz?format=json" | grep -q '"counters"' || {
    echo "/metricz?format=json did not return the JSON rendering" >&2
    exit 1
}

echo "==> SIGTERM and graceful drain"
kill -TERM "$pid"
wait "$pid" # must exit 0: a clean drain within the deadline
pid=""

echo "==> pressiod smoke OK"
cat "$tmp/log"
