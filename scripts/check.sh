#!/bin/sh
# Tier-2 quality gate: build + vet + pressiolint the whole module, race-test
# the concurrency-sensitive packages (the tracing layer, the parallel
# meta-compressors, the core wrapper, and the serving layer), run the
# deterministic chaos tests of the resilience and serving layers, smoke-test
# the pressiod daemon end to end (SIGTERM graceful drain included),
# smoke-test the sharded cluster topology (3 shards + router, SIGKILL
# failover, cross-process trace continuity), smoke-test the crash-consistent
# object store (SIGKILL mid-load, recovery, byte-exact reads, clean fsck),
# smoke-fuzz the stream decoders, run the disabled-tracing overhead
# benchmark that guards the "near-zero cost when off" promise, and gate a
# quick perf-ledger measurement against the most recent committed
# BENCH_<date>.json (see docs/OBSERVABILITY.md).
#
# Usage: scripts/check.sh   (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> pressiolint ./... (all seventeen analyzers, vs lint-baseline.sarif)"
go run ./cmd/pressiolint -baseline lint-baseline.sarif ./...

echo "==> go test -race (trace, obslog, meta, core, service, daemon, cluster, store, fsx)"
go test -race ./internal/trace/... ./internal/obslog/... ./internal/meta/... \
    ./internal/core/... ./internal/service/... ./internal/daemon/ \
    ./internal/cluster/ ./internal/store/ ./internal/fsx/

echo "==> chaos tests under race detector (resilience, faultinject, service, daemon, cluster)"
go test -race -run 'TestChaos' ./internal/resilience/ ./internal/faultinject/ \
    ./internal/service/ ./internal/daemon/ ./internal/cluster/

echo "==> store crash matrix (kill at every declared crash point, zero acked loss)"
go test -race -run 'TestCrash' ./internal/store/

echo "==> pressiod smoke (start, /readyz, round-trip, SIGTERM, clean drain)"
scripts/pressiod-smoke.sh

echo "==> pressiod cluster smoke (3 shards + router, SIGKILL failover, trace continuity)"
scripts/pressiod-cluster-smoke.sh

echo "==> pressiod store smoke (PUT, SIGKILL mid-load, recovery, byte-exact, fsck clean)"
scripts/pressiod-store-smoke.sh

echo "==> fuzz smoke (decoders, 5s each; corpora replay known crashers)"
go test -fuzz 'FuzzDecompressSlice' -fuzztime 5s ./internal/sz/
go test -fuzz 'FuzzDecompressSlice' -fuzztime 5s ./internal/zfp/
go test -fuzz 'FuzzDecompressSlice' -fuzztime 5s ./internal/fpzip/
go test -fuzz 'FuzzDecodeFrame' -fuzztime 5s ./internal/resilience/
go test -fuzz 'FuzzDecodeRecord' -fuzztime 5s ./internal/store/

echo "==> disabled-tracing overhead benchmark"
go test -run '^$' -bench 'BenchmarkStartDisabled' -benchtime 100ms ./internal/trace/
go test -run '^$' -bench 'BenchmarkDispatchDirectImpl|BenchmarkDispatchWrappedUntraced' -benchtime 100ms .

echo "==> perf-ledger regression gate (quick mode, vs most recent BENCH_*.json)"
scripts/perf-ledger.sh check --quick

echo "==> check OK"
