#!/bin/sh
# Tier-2 quality gate: build + vet + pressiolint the whole module, race-test
# the concurrency-sensitive packages (the tracing layer, the parallel
# meta-compressors, and the core wrapper), and run the disabled-tracing
# overhead benchmark that guards the "near-zero cost when off" promise.
#
# Usage: scripts/check.sh   (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> pressiolint ./... (all nine analyzers)"
go run ./cmd/pressiolint ./...

echo "==> go test -race (trace, meta, core)"
go test -race ./internal/trace/... ./internal/meta/... ./internal/core/...

echo "==> disabled-tracing overhead benchmark"
go test -run '^$' -bench 'BenchmarkStartDisabled' -benchtime 100ms ./internal/trace/
go test -run '^$' -bench 'BenchmarkDispatchDirectImpl|BenchmarkDispatchWrappedUntraced' -benchtime 100ms .

echo "==> check OK"
