// Ablation benchmarks for the design decisions DESIGN.md calls out: each
// pair/sweep isolates one choice (quantization interval count, lossless
// backend effort, byte-shuffle pre-pass, chunked parallelism, sparse
// masking) so its cost and benefit are measurable independently. Ratios
// are reported through b.ReportMetric as "ratio".
package pressio

import (
	"testing"

	"pressio/internal/core"
	"pressio/internal/lossless"
	"pressio/internal/sdrbench"
	"pressio/internal/sz"
)

// --- SZ: quantization interval count ---------------------------------------

func benchSZIntervals(b *testing.B, intervals uint32) {
	in := loadBenchData()
	p := sz.Params{Mode: core.BoundValueRangeRel, Bound: 1e-3, MaxQuantIntervals: intervals}
	b.SetBytes(int64(in.ByteLen()))
	for i := 0; i < b.N; i++ {
		stream, err := sz.CompressSlice(in.Float32s(), in.Dims(), p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(in.ByteLen())/float64(len(stream)), "ratio")
	}
}

func BenchmarkAblationSZIntervals256(b *testing.B)   { benchSZIntervals(b, 256) }
func BenchmarkAblationSZIntervals4096(b *testing.B)  { benchSZIntervals(b, 4096) }
func BenchmarkAblationSZIntervals65536(b *testing.B) { benchSZIntervals(b, 65536) }

// --- SZ: DEFLATE backend effort ---------------------------------------------

func benchSZLossless(b *testing.B, level int) {
	in := loadBenchData()
	p := sz.Params{Mode: core.BoundValueRangeRel, Bound: 1e-3, LosslessLevel: level}
	b.SetBytes(int64(in.ByteLen()))
	for i := 0; i < b.N; i++ {
		stream, err := sz.CompressSlice(in.Float32s(), in.Dims(), p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(in.ByteLen())/float64(len(stream)), "ratio")
	}
}

func BenchmarkAblationSZBackendFast(b *testing.B) { benchSZLossless(b, 1) }
func BenchmarkAblationSZBackendBest(b *testing.B) { benchSZLossless(b, 9) }

// --- Lossless: byte shuffle before DEFLATE ----------------------------------

func benchShuffle(b *testing.B, shuffle bool) {
	in := loadBenchData()
	raw := in.Bytes()
	b.SetBytes(int64(len(raw)))
	for i := 0; i < b.N; i++ {
		src := raw
		if shuffle {
			src = lossless.Shuffle(raw, 4)
		}
		packed, err := lossless.Deflate(src, 6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(raw))/float64(len(packed)), "ratio")
	}
}

func BenchmarkAblationDeflatePlain(b *testing.B)    { benchShuffle(b, false) }
func BenchmarkAblationDeflateShuffled(b *testing.B) { benchShuffle(b, true) }

// --- Chunking: parallel scaling ----------------------------------------------

func benchChunking(b *testing.B, workers int32) {
	in, _ := sdrbench.Generate(sdrbench.NameScaleLetKF, 2, 42)
	c, err := core.NewCompressor("chunking")
	if err != nil {
		b.Fatal(err)
	}
	if err := c.SetOptions(core.NewOptions().
		SetValue("chunking:compressor", "sz_threadsafe").
		SetValue("chunking:nthreads", workers).
		SetValue("chunking:chunk_rows", uint64(2)).
		SetValue(core.KeyRel, 1e-3)); err != nil {
		b.Fatal(err)
	}
	out := core.NewEmpty(core.DTypeByte, 0)
	b.SetBytes(int64(in.ByteLen()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Compress(in, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationChunkingSerial(b *testing.B)   { benchChunking(b, 1) }
func BenchmarkAblationChunkingParallel(b *testing.B) { benchChunking(b, 0) } // GOMAXPROCS

// --- Sparse masking vs dense child -------------------------------------------

func benchSparse(b *testing.B, masked bool) {
	cloud := sdrbench.HurricaneCloud(16, 32, 32, 42)
	name := "fpzip"
	opts := core.NewOptions()
	if masked {
		name = "sparse"
		opts.SetValue("sparse:compressor", "fpzip").SetValue("sparse:threshold", 1e-6)
	}
	c, err := core.NewCompressor(name)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.SetOptions(opts); err != nil {
		b.Fatal(err)
	}
	out := core.NewEmpty(core.DTypeByte, 0)
	b.SetBytes(int64(cloud.ByteLen()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Compress(cloud, out); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(cloud.ByteLen())/float64(out.ByteLen()), "ratio")
	}
}

func BenchmarkAblationSparseMasked(b *testing.B) { benchSparse(b, true) }
func BenchmarkAblationSparseDense(b *testing.B)  { benchSparse(b, false) }
