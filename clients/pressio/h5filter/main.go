// Command h5filter is the generic equivalent of the per-compressor
// h5filter-sz and h5filter-zfp tools: because the h5lite container accepts
// any registered compressor as its chunk filter through the generic
// interface, supporting a new compressor costs zero additional lines here.
package main

import (
	"flag"
	"fmt"
	"os"

	"pressio/internal/core"

	_ "pressio/internal/bitgroom"
	_ "pressio/internal/fpzip"
	_ "pressio/internal/lossless"
	_ "pressio/internal/meta"
	_ "pressio/internal/mgard"
	_ "pressio/internal/pio"
	_ "pressio/internal/sz"
	_ "pressio/internal/tthresh"
	_ "pressio/internal/zfp"
)

func main() {
	var (
		mode    = flag.String("mode", "write", "write or read")
		input   = flag.String("input", "", "flat binary input (write) / container (read)")
		output  = flag.String("output", "", "container (write) / flat binary (read)")
		dims    = flag.String("dims", "", "dims for the input, slowest first")
		dtype   = flag.String("dtype", "float32", "element type")
		dataset = flag.String("dataset", "data", "dataset name in the container")
		filter  = flag.String("filter", "sz", "any registered compressor")
		bound   = flag.Float64("bound", 1e-4, "pressio:abs bound for lossy filters")
		rows    = flag.Uint64("chunk-rows", 16, "rows per chunk")
	)
	flag.Parse()
	if err := run(*mode, *input, *output, *dims, *dtype, *dataset, *filter, *bound, *rows); err != nil {
		fmt.Fprintln(os.Stderr, "h5filter:", err)
		os.Exit(1)
	}
}

func run(mode, input, output, dims, dtype, dataset, filter string, bound float64, rows uint64) error {
	h5, err := core.NewIO("h5lite")
	if err != nil {
		return err
	}
	switch mode {
	case "write":
		posix, err := core.NewIO("posix")
		if err != nil {
			return err
		}
		if err := posix.SetOptions(core.NewOptions().SetValue(core.KeyIOPath, input)); err != nil {
			return err
		}
		hint, err := core.ParseShape(dims, dtype)
		if err != nil {
			return err
		}
		data, err := posix.Read(hint)
		if err != nil {
			return err
		}
		err = h5.SetOptions(core.NewOptions().
			SetValue(core.KeyIOPath, output).
			SetValue("h5:dataset", dataset).
			SetValue("h5:filter", filter).
			SetValue("h5:filter_abs", bound).
			SetValue("h5:chunk_rows", rows))
		if err != nil {
			return err
		}
		return h5.Write(data)
	case "read":
		err = h5.SetOptions(core.NewOptions().
			SetValue(core.KeyIOPath, input).
			SetValue("h5:dataset", dataset))
		if err != nil {
			return err
		}
		data, err := h5.Read(nil)
		if err != nil {
			return err
		}
		return os.WriteFile(output, data.Bytes(), 0o644)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}
