package writer

import (
	"bytes"
	"math"
	"testing"

	"pressio/internal/core"
	_ "pressio/internal/lossless"
	_ "pressio/internal/sz"
	_ "pressio/internal/zfp"
)

func sample(n int) []byte {
	d := core.NewData(core.DTypeFloat32, uint64(n))
	v := d.Float32s()
	for i := range v {
		v[i] = float32(math.Sin(float64(i) / 7))
	}
	return d.Bytes()
}

func TestGenericWriterRoundTripAnyCompressor(t *testing.T) {
	for _, name := range []string{"sz_threadsafe", "zfp", "flate"} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, name,
			core.NewOptions().SetValue(core.KeyAbs, 0.001),
			core.DTypeFloat32, 16, 16)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		raw := sample(256)
		if _, err := w.Write(raw[:512]); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(raw[512:]); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		got, err := ReadFrame(&buf, &buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if got.DType() != core.DTypeFloat32 || got.Len() != 256 {
			t.Fatalf("%s: frame %v", name, got)
		}
		orig := core.NewData(core.DTypeFloat32, 256)
		copy(orig.Bytes(), raw)
		for i, v := range got.Float32s() {
			if math.Abs(float64(v-orig.Float32s()[i])) > 0.001 {
				t.Fatalf("%s: elem %d bound violated", name, i)
			}
		}
	}
}

func TestWriterValidation(t *testing.T) {
	if _, err := NewWriter(&bytes.Buffer{}, "nope", nil, core.DTypeFloat32, 4); err == nil {
		t.Fatal("unknown compressor should fail")
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "flate", nil, core.DTypeFloat32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 32)); err == nil {
		t.Fatal("overflow should fail")
	}
	if err := w.Close(); err == nil {
		t.Fatal("underfilled close should fail")
	}
	if _, err := w.Write([]byte{1}); err == nil {
		t.Fatal("write after close should fail")
	}
}
