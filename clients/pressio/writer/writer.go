// Package writer is the generic stream adapter ("binding") that replaces
// the per-compressor sz-writer and zfp-writer packages: it works with any
// registered compressor because all configuration flows through the
// generic option interface, and the frame records which plugin produced it.
package writer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"pressio/internal/core"
)

// Writer buffers a Data tensor and writes one compressed frame on Close:
// [uvarint name length][compressor name][uvarint stream length][stream]
// [uvarint dtype][uvarint rank][dims...].
type Writer struct {
	dst    io.Writer
	comp   *core.Compressor
	data   *core.Data
	fill   int // payload bytes received so far
	closed bool
}

// NewWriter adapts dst using the named compressor configured by opts.
func NewWriter(dst io.Writer, compressor string, opts *core.Options, dtype core.DType, dims ...uint64) (*Writer, error) {
	c, err := core.NewCompressor(compressor)
	if err != nil {
		return nil, err
	}
	if opts != nil {
		if err := c.SetOptions(opts); err != nil {
			return nil, err
		}
	}
	return &Writer{dst: dst, comp: c, data: core.NewData(dtype, dims...)}, nil
}

// Write implements io.Writer over the tensor's raw bytes, filled in order.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("writer: write after close")
	}
	buf := w.data.Bytes()
	if w.fill+len(p) > len(buf) {
		return 0, fmt.Errorf("writer: overflow: %d bytes into a %d byte tensor", w.fill+len(p), len(buf))
	}
	copy(buf[w.fill:], p)
	w.fill += len(p)
	return len(p), nil
}

// Close compresses the tensor and emits the frame.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.fill != len(w.data.Bytes()) {
		return fmt.Errorf("writer: wrote %d of %d bytes", w.fill, len(w.data.Bytes()))
	}
	out, err := core.Compress(w.comp, w.data)
	if err != nil {
		return err
	}
	var hdr []byte
	name := w.comp.Prefix()
	hdr = binary.AppendUvarint(hdr, uint64(len(name)))
	hdr = append(hdr, name...)
	hdr = binary.AppendUvarint(hdr, out.ByteLen())
	hdr = binary.AppendUvarint(hdr, uint64(w.data.DType()))
	hdr = binary.AppendUvarint(hdr, uint64(w.data.NumDims()))
	for _, d := range w.data.Dims() {
		hdr = binary.AppendUvarint(hdr, d)
	}
	if _, err := w.dst.Write(hdr); err != nil {
		return err
	}
	_, err = w.dst.Write(out.Bytes())
	return err
}

// ReadFrame decodes one frame produced by Writer, reconstructing with the
// compressor named inside the frame.
func ReadFrame(r io.ByteReader, body io.Reader) (*core.Data, error) {
	nameLen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(body, nameBuf); err != nil {
		return nil, err
	}
	streamLen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	dtypeU, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	rank, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	dims := make([]uint64, rank)
	for i := range dims {
		if dims[i], err = binary.ReadUvarint(r); err != nil {
			return nil, err
		}
	}
	stream := make([]byte, streamLen)
	if _, err := io.ReadFull(body, stream); err != nil {
		return nil, err
	}
	c, err := core.NewCompressor(string(nameBuf))
	if err != nil {
		return nil, err
	}
	return core.Decompress(c, core.NewBytes(stream), core.DType(dtypeU), dims...)
}
