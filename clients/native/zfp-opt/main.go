// Command zfp-opt is the zfp twin of clients/native/sz-opt: the identical
// optimizer workflow (fixed-ratio search, PSNR-floor search, bound sweep)
// reimplemented against zfp's fixed-accuracy API — the second copy of code
// the generic optimizer renders unnecessary.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"pressio/internal/zfp"
)

func main() {
	var (
		input    = flag.String("input", "", "flat binary float32 input")
		dimsFlag = flag.String("dims", "", "dims, slowest first")
		ratio    = flag.Float64("target-ratio", 0, "target compression ratio (0 = off)")
		psnr     = flag.Float64("target-psnr", 0, "PSNR floor in dB (0 = off)")
		sweep    = flag.Bool("sweep", false, "report a bound sweep instead of searching")
		tol      = flag.Float64("tolerance", 0.1, "acceptable relative deviation")
		maxIters = flag.Int("max-iters", 32, "bisection iterations")
	)
	flag.Parse()
	if err := run(*input, *dimsFlag, *ratio, *psnr, *sweep, *tol, *maxIters); err != nil {
		fmt.Fprintln(os.Stderr, "zfp-opt:", err)
		os.Exit(1)
	}
}

type evaluation struct {
	bound float64
	ratio float64
	psnr  float64
	maxE  float64
}

func run(input, dimsFlag string, targetRatio, targetPSNR float64, sweep bool, tol float64, maxIters int) error {
	raw, err := os.ReadFile(input)
	if err != nil {
		return err
	}
	var dims []uint64
	for _, p := range strings.Split(dimsFlag, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return fmt.Errorf("bad dims: %v", err)
		}
		dims = append(dims, v)
	}
	vals := make([]float32, len(raw)/4)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, float64(v))
		hi = math.Max(hi, float64(v))
	}
	rng := hi - lo
	if rng <= 0 {
		rng = 1
	}

	evaluate := func(bound float64) (evaluation, error) {
		stream, err := zfp.CompressSlice(vals, dims, zfp.Params{Mode: zfp.ModeFixedAccuracy, Tolerance: bound})
		if err != nil {
			return evaluation{}, err
		}
		dec, _, err := zfp.DecompressSlice[float32](stream)
		if err != nil {
			return evaluation{}, err
		}
		ev := evaluation{bound: bound, ratio: float64(len(raw)) / float64(len(stream))}
		mse := 0.0
		for i := range vals {
			d := math.Abs(float64(vals[i]) - float64(dec[i]))
			if d > ev.maxE {
				ev.maxE = d
			}
			mse += d * d
		}
		mse /= float64(len(vals))
		if mse > 0 {
			ev.psnr = 20*math.Log10(rng) - 10*math.Log10(mse)
		} else {
			ev.psnr = math.Inf(1)
		}
		return ev, nil
	}

	loB, hiB := math.Log(rng*1e-9), math.Log(rng*0.5)
	switch {
	case sweep:
		fmt.Printf("%14s %10s %10s %12s\n", "bound", "ratio", "psnr", "max_abs_err")
		for _, exp := range []float64{-7, -6, -5, -4, -3, -2} {
			ev, err := evaluate(rng * math.Pow(10, exp))
			if err != nil {
				return err
			}
			fmt.Printf("%14g %10.3f %10.2f %12.4g\n", ev.bound, ev.ratio, ev.psnr, ev.maxE)
		}
		return nil
	case targetRatio > 0:
		evLo, err := evaluate(math.Exp(loB))
		if err != nil {
			return err
		}
		evHi, err := evaluate(math.Exp(hiB))
		if err != nil {
			return err
		}
		if evLo.ratio > targetRatio || evHi.ratio < targetRatio {
			return fmt.Errorf("target ratio %.1f outside achievable range [%.2f, %.2f]",
				targetRatio, evLo.ratio, evHi.ratio)
		}
		var best evaluation
		for i := 0; i < maxIters; i++ {
			mid := (loB + hiB) / 2
			ev, err := evaluate(math.Exp(mid))
			if err != nil {
				return err
			}
			best = ev
			if math.Abs(ev.ratio-targetRatio) <= tol*targetRatio {
				break
			}
			if ev.ratio < targetRatio {
				loB = mid
			} else {
				hiB = mid
			}
		}
		fmt.Printf("bound=%g\nratio=%f\npsnr=%f\nmax_abs_err=%g\n", best.bound, best.ratio, best.psnr, best.maxE)
		return nil
	case targetPSNR > 0:
		evLo, err := evaluate(math.Exp(loB))
		if err != nil {
			return err
		}
		if evLo.psnr < targetPSNR {
			return fmt.Errorf("PSNR %.1f below floor %.1f even at the smallest bound", evLo.psnr, targetPSNR)
		}
		best := evLo
		for i := 0; i < maxIters && hiB-loB > 0.05; i++ {
			mid := (loB + hiB) / 2
			ev, err := evaluate(math.Exp(mid))
			if err != nil {
				return err
			}
			if ev.psnr >= targetPSNR {
				best = ev
				loB = mid
			} else {
				hiB = mid
			}
		}
		fmt.Printf("bound=%g\nratio=%f\npsnr=%f\nmax_abs_err=%g\n", best.bound, best.ratio, best.psnr, best.maxE)
		return nil
	default:
		return fmt.Errorf("specify -target-ratio, -target-psnr, or -sweep")
	}
}
