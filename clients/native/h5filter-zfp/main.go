// Command h5filter-zfp is the zfp twin of h5filter-sz: the same chunked
// container workflow reimplemented against zfp's native API and parameter
// vocabulary (mode/tolerance/rate/precision instead of bound modes).
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"pressio/internal/zfp"
)

const containerMagic = "H5ZF"

func main() {
	var (
		mode      = flag.String("mode", "write", "write (compress into container) or read")
		input     = flag.String("input", "", "flat binary input (write) / container (read)")
		output    = flag.String("output", "", "container path (write) / flat binary (read)")
		dimsFlag  = flag.String("dims", "", "dims, slowest first (write)")
		rows      = flag.Uint64("chunk-rows", 16, "rows per chunk along the slowest dim")
		zfpMode   = flag.String("zfp-mode", "accuracy", "accuracy, rate, or precision")
		tolerance = flag.Float64("tolerance", 1e-3, "tolerance (accuracy mode)")
		rate      = flag.Float64("rate", 16, "bits per value (rate mode)")
		precision = flag.Uint("precision", 32, "bit planes (precision mode)")
	)
	flag.Parse()
	var err error
	switch *mode {
	case "write":
		err = write(*input, *output, *dimsFlag, *rows, *zfpMode, *tolerance, *rate, *precision)
	case "read":
		err = read(*input, *output)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "h5filter-zfp:", err)
		os.Exit(1)
	}
}

func write(input, output, dimsFlag string, chunkRows uint64,
	zfpMode string, tolerance, rate float64, precision uint) error {
	raw, err := os.ReadFile(input)
	if err != nil {
		return err
	}
	var dims []uint64
	for _, p := range strings.Split(dimsFlag, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return fmt.Errorf("bad dims: %v", err)
		}
		dims = append(dims, v)
	}
	if len(dims) == 0 {
		return fmt.Errorf("missing -dims")
	}
	vals := make([]float32, len(raw)/4)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	var params zfp.Params
	switch zfpMode {
	case "accuracy":
		params = zfp.Params{Mode: zfp.ModeFixedAccuracy, Tolerance: tolerance}
	case "rate":
		params = zfp.Params{Mode: zfp.ModeFixedRate, Rate: rate}
	case "precision":
		params = zfp.Params{Mode: zfp.ModeFixedPrecision, Precision: precision}
	default:
		return fmt.Errorf("unknown zfp mode %q", zfpMode)
	}

	rowLen := uint64(1)
	for _, d := range dims[1:] {
		rowLen *= d
	}
	if chunkRows == 0 || chunkRows > dims[0] {
		chunkRows = dims[0]
	}
	var hdr []byte
	hdr = append(hdr, containerMagic...)
	hdr = append(hdr, byte(len(dims)))
	for _, d := range dims {
		hdr = binary.AppendUvarint(hdr, d)
	}
	hdr = binary.AppendUvarint(hdr, chunkRows)
	var chunks [][]byte
	for start := uint64(0); start < dims[0]; start += chunkRows {
		rows := chunkRows
		if start+rows > dims[0] {
			rows = dims[0] - start
		}
		chunkDims := append([]uint64{rows}, dims[1:]...)
		chunk := vals[start*rowLen : (start+rows)*rowLen]
		stream, err := zfp.CompressSlice(chunk, chunkDims, params)
		if err != nil {
			return err
		}
		chunks = append(chunks, stream)
	}
	hdr = binary.AppendUvarint(hdr, uint64(len(chunks)))
	out := hdr
	for _, c := range chunks {
		out = binary.AppendUvarint(out, uint64(len(c)))
		out = append(out, c...)
	}
	if err := os.WriteFile(output, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("stored_ratio=%f\n", float64(len(raw))/float64(len(out)))
	return nil
}

func read(input, output string) error {
	b, err := os.ReadFile(input)
	if err != nil {
		return err
	}
	if len(b) < 5 || string(b[:4]) != containerMagic {
		return fmt.Errorf("not an h5filter-zfp container")
	}
	rank := int(b[4])
	pos := 5
	dims := make([]uint64, rank)
	for i := range dims {
		v, sz := binary.Uvarint(b[pos:])
		if sz <= 0 {
			return fmt.Errorf("corrupt container")
		}
		dims[i] = v
		pos += sz
	}
	if _, sz := binary.Uvarint(b[pos:]); sz > 0 {
		pos += sz
	}
	nChunks, szN := binary.Uvarint(b[pos:])
	if szN <= 0 {
		return fmt.Errorf("corrupt container")
	}
	pos += szN
	var vals []float32
	for i := uint64(0); i < nChunks; i++ {
		l, szL := binary.Uvarint(b[pos:])
		if szL <= 0 || pos+szL+int(l) > len(b) {
			return fmt.Errorf("corrupt container")
		}
		pos += szL
		chunk, _, err := zfp.DecompressSlice[float32](b[pos : pos+int(l)])
		if err != nil {
			return err
		}
		pos += int(l)
		vals = append(vals, chunk...)
	}
	raw := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	if output != "" {
		return os.WriteFile(output, raw, 0o644)
	}
	return nil
}
