package main

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestFilterWriteRead(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	container := filepath.Join(dir, "x.h5sz")
	out := filepath.Join(dir, "x.out")

	n := 20 * 16
	vals := make([]float32, n)
	buf := make([]byte, 4*n)
	for i := range vals {
		vals[i] = float32(math.Cos(float64(i) / 10))
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(vals[i]))
	}
	if err := os.WriteFile(in, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := write(in, container, "20,16", 6, "abs", 0.01); err != nil {
		t.Fatal(err)
	}
	ci, err := os.Stat(container)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Size() >= int64(4*n) {
		t.Fatalf("container did not compress: %d bytes", ci.Size())
	}
	if err := read(container, out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 4*n {
		t.Fatalf("restored %d bytes", len(raw))
	}
	for i := range vals {
		got := math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		if math.Abs(float64(got-vals[i])) > 0.01 {
			t.Fatalf("elem %d bound violated", i)
		}
	}
}

func TestFilterRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("not a container"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := read(bad, ""); err == nil {
		t.Fatal("garbage container should fail")
	}
}
