// Command h5filter-sz implements an HDF5-style chunked dataset filter for
// the sz compressor only: it stores a dataset split into chunks, each
// compressed with the native sz API, inside its own hand-rolled container
// format. A second copy of all of this exists in h5filter-zfp with zfp's
// parameter vocabulary — the per-compressor filter duplication Table II
// measures against the generic clients/pressio/h5filter.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"pressio/internal/core"
	"pressio/internal/sz"
)

const containerMagic = "H5SZ"

func main() {
	var (
		mode     = flag.String("mode", "write", "write (compress into container) or read")
		input    = flag.String("input", "", "flat binary input (write) / container (read)")
		output   = flag.String("output", "", "container path (write) / flat binary (read)")
		dimsFlag = flag.String("dims", "", "dims, slowest first (write)")
		rows     = flag.Uint64("chunk-rows", 16, "rows per chunk along the slowest dim")
		mode2    = flag.String("error-bound-mode", "rel", "abs or rel")
		bound    = flag.Float64("bound", 1e-4, "sz error bound")
	)
	flag.Parse()
	var err error
	switch *mode {
	case "write":
		err = write(*input, *output, *dimsFlag, *rows, *mode2, *bound)
	case "read":
		err = read(*input, *output)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "h5filter-sz:", err)
		os.Exit(1)
	}
}

func write(input, output, dimsFlag string, chunkRows uint64, boundMode string, bound float64) error {
	raw, err := os.ReadFile(input)
	if err != nil {
		return err
	}
	var dims []uint64
	for _, p := range strings.Split(dimsFlag, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return fmt.Errorf("bad dims: %v", err)
		}
		dims = append(dims, v)
	}
	if len(dims) == 0 {
		return fmt.Errorf("missing -dims")
	}
	vals := make([]float32, len(raw)/4)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	var bm core.ErrorBoundMode
	switch boundMode {
	case "abs":
		bm = core.BoundAbs
	case "rel":
		bm = core.BoundValueRangeRel
	default:
		return fmt.Errorf("unknown bound mode %q", boundMode)
	}
	params := sz.Params{Mode: bm, Bound: bound}

	rowLen := uint64(1)
	for _, d := range dims[1:] {
		rowLen *= d
	}
	if chunkRows == 0 || chunkRows > dims[0] {
		chunkRows = dims[0]
	}
	// Container: magic, rank, dims, chunkRows, chunk count, then
	// length-prefixed sz streams.
	var hdr []byte
	hdr = append(hdr, containerMagic...)
	hdr = append(hdr, byte(len(dims)))
	for _, d := range dims {
		hdr = binary.AppendUvarint(hdr, d)
	}
	hdr = binary.AppendUvarint(hdr, chunkRows)
	var chunks [][]byte
	for start := uint64(0); start < dims[0]; start += chunkRows {
		rows := chunkRows
		if start+rows > dims[0] {
			rows = dims[0] - start
		}
		chunkDims := append([]uint64{rows}, dims[1:]...)
		chunk := vals[start*rowLen : (start+rows)*rowLen]
		stream, err := sz.CompressSlice(chunk, chunkDims, params)
		if err != nil {
			return err
		}
		chunks = append(chunks, stream)
	}
	hdr = binary.AppendUvarint(hdr, uint64(len(chunks)))
	out := hdr
	for _, c := range chunks {
		out = binary.AppendUvarint(out, uint64(len(c)))
		out = append(out, c...)
	}
	if err := os.WriteFile(output, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("stored_ratio=%f\n", float64(len(raw))/float64(len(out)))
	return nil
}

func read(input, output string) error {
	b, err := os.ReadFile(input)
	if err != nil {
		return err
	}
	if len(b) < 5 || string(b[:4]) != containerMagic {
		return fmt.Errorf("not an h5filter-sz container")
	}
	rank := int(b[4])
	pos := 5
	dims := make([]uint64, rank)
	for i := range dims {
		v, sz := binary.Uvarint(b[pos:])
		if sz <= 0 {
			return fmt.Errorf("corrupt container")
		}
		dims[i] = v
		pos += sz
	}
	if _, sz := binary.Uvarint(b[pos:]); sz > 0 {
		pos += sz // chunkRows (recomputable from per-chunk headers)
	}
	nChunks, szN := binary.Uvarint(b[pos:])
	if szN <= 0 {
		return fmt.Errorf("corrupt container")
	}
	pos += szN
	var vals []float32
	for i := uint64(0); i < nChunks; i++ {
		l, szL := binary.Uvarint(b[pos:])
		if szL <= 0 || pos+szL+int(l) > len(b) {
			return fmt.Errorf("corrupt container")
		}
		pos += szL
		chunk, _, err := sz.DecompressFloat32(b[pos : pos+int(l)])
		if err != nil {
			return err
		}
		pos += int(l)
		vals = append(vals, chunk...)
	}
	raw := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	if output != "" {
		return os.WriteFile(output, raw, 0o644)
	}
	return nil
}
