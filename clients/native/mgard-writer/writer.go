// Package mgardwriter is the third copy of the per-compressor stream
// adapter "binding" (after sz-writer and zfp-writer), rewritten for mgard's
// API — including its own twist, the >= 3 points-per-dimension restriction
// that surfaces only at Close time.
package mgardwriter

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"pressio/internal/core"
	"pressio/internal/mgard"
)

// Writer buffers float32 values and writes one mgard-compressed frame on
// Close: [uvarint stream length][mgard stream].
type Writer struct {
	dst    io.Writer
	dims   []uint64
	params mgard.Params
	vals   []float32
	closed bool
}

// NewWriter adapts dst; dims describes the tensor being streamed and every
// extent must be at least 3 (checked at Close, as mgard reports it).
func NewWriter(dst io.Writer, dims []uint64, mode core.ErrorBoundMode, bound float64) *Writer {
	return &Writer{dst: dst, dims: dims, params: mgard.Params{Mode: mode, Bound: bound}}
}

// WriteValues appends values to the pending tensor.
func (w *Writer) WriteValues(vals []float32) error {
	if w.closed {
		return errors.New("mgardwriter: write after close")
	}
	w.vals = append(w.vals, vals...)
	return nil
}

// Write implements io.Writer over raw little-endian float32 bytes.
func (w *Writer) Write(p []byte) (int, error) {
	if len(p)%4 != 0 {
		return 0, errors.New("mgardwriter: partial float32 write")
	}
	vals := make([]float32, len(p)/4)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[4*i:]))
	}
	if err := w.WriteValues(vals); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Close compresses the buffered tensor and emits the frame.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	want := uint64(1)
	for _, d := range w.dims {
		want *= d
	}
	if uint64(len(w.vals)) != want {
		return fmt.Errorf("mgardwriter: wrote %d values, dims %v need %d", len(w.vals), w.dims, want)
	}
	stream, err := mgard.CompressSlice(w.vals, w.dims, w.params)
	if err != nil {
		return err
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(len(stream)))
	if _, err := w.dst.Write(hdr); err != nil {
		return err
	}
	_, err = w.dst.Write(stream)
	return err
}

// ReadFrame decodes one frame produced by Writer.
func ReadFrame(r io.ByteReader, body io.Reader) ([]float32, []uint64, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, nil, err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(body, buf); err != nil {
		return nil, nil, err
	}
	return mgard.DecompressSlice[float32](buf)
}
