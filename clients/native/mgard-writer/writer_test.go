package mgardwriter

import (
	"bytes"
	"math"
	"testing"

	"pressio/internal/core"
)

func TestWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, []uint64{8, 32}, core.BoundAbs, 0.01)
	vals := make([]float32, 256)
	for i := range vals {
		vals[i] = float32(math.Cos(float64(i) / 11))
	}
	if err := w.WriteValues(vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, dims, err := ReadFrame(&buf, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 2 || dims[0] != 8 {
		t.Fatalf("dims %v", dims)
	}
	for i := range vals {
		if math.Abs(float64(got[i]-vals[i])) > 0.01 {
			t.Fatalf("elem %d bound violated", i)
		}
	}
}

func TestWriterMinDims(t *testing.T) {
	// mgard's >= 3 points-per-dimension restriction surfaces at Close.
	var buf bytes.Buffer
	w := NewWriter(&buf, []uint64{2, 2}, core.BoundAbs, 0.5)
	_ = w.WriteValues([]float32{1, 2, 3, 4})
	if err := w.Close(); err == nil {
		t.Fatal("2x2 close should fail")
	}
}
