// Command zchecker is a *native* compression-quality analysis tool in the
// mold of Z-Checker before it adopted a generic interface: it supports four
// compressors, each integrated through its own API with its own parameter
// plumbing, its own stream handling, and a per-compressor switch in every
// code path. Adding a fifth compressor means touching all of them —
// contrast with cmd/pressio-zchecker, where any registered plugin works.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"pressio/internal/core"
	"pressio/internal/fpzip"
	"pressio/internal/mgard"
	"pressio/internal/sz"
	"pressio/internal/zfp"
)

func main() {
	var (
		input       = flag.String("input", "", "flat binary float32 input")
		dimsFlag    = flag.String("dims", "", "dims, slowest first")
		compressors = flag.String("compressors", "sz,zfp,mgard,fpzip", "subset of sz,zfp,mgard,fpzip")
		bound       = flag.Float64("bound", 1e-3, "value-range relative bound (where supported)")
	)
	flag.Parse()
	if err := run(*input, *dimsFlag, *compressors, *bound); err != nil {
		fmt.Fprintln(os.Stderr, "zchecker:", err)
		os.Exit(1)
	}
}

func run(input, dimsFlag, compressors string, bound float64) error {
	raw, err := os.ReadFile(input)
	if err != nil {
		return err
	}
	var dims []uint64
	for _, p := range strings.Split(dimsFlag, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return fmt.Errorf("bad dims: %v", err)
		}
		dims = append(dims, v)
	}
	vals := make([]float32, len(raw)/4)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}

	fmt.Printf("%-8s %12s %12s %12s %12s\n", "comp", "ratio", "max_abs_err", "psnr", "pearson")
	for _, name := range strings.Split(compressors, ",") {
		name = strings.TrimSpace(name)
		var stream []byte
		var dec []float32
		var err error
		// Every compressor needs its own integration: different parameter
		// structs, different bound semantics, different decompress calls.
		switch name {
		case "sz":
			stream, err = sz.CompressSlice(vals, dims,
				sz.Params{Mode: core.BoundValueRangeRel, Bound: bound})
			if err == nil {
				dec, _, err = sz.DecompressSlice[float32](stream)
			}
		case "zfp":
			lo, hi := rangeOf(vals)
			tol := bound * (hi - lo)
			if tol <= 0 {
				tol = 1e-12
			}
			stream, err = zfp.CompressSlice(vals, dims,
				zfp.Params{Mode: zfp.ModeFixedAccuracy, Tolerance: tol})
			if err == nil {
				dec, _, err = zfp.DecompressSlice[float32](stream)
			}
		case "mgard":
			stream, err = mgard.CompressSlice(vals, dims,
				mgard.Params{Mode: core.BoundValueRangeRel, Bound: bound})
			if err == nil {
				dec, _, err = mgard.DecompressSlice[float32](stream)
			}
		case "fpzip":
			// fpzip has no error bound: translate the requested quality
			// into a precision by hand (the kind of adapter logic the
			// paper notes Z-Checker had to carry per compressor).
			prec := uint(32)
			if bound > 0 {
				prec = uint(math.Max(8, math.Min(32, math.Ceil(-math.Log2(bound))+9)))
			}
			stream, err = fpzip.CompressSlice(vals, dims, fpzip.Params{Precision: prec})
			if err == nil {
				dec, _, err = fpzip.DecompressSlice[float32](stream)
			}
		default:
			fmt.Printf("%-8s unsupported by this tool\n", name)
			continue
		}
		if err != nil {
			fmt.Printf("%-8s error: %v\n", name, err)
			continue
		}
		ratio := float64(len(raw)) / float64(len(stream))
		maxErr, psnr, pear := quality(vals, dec)
		ksD, ksP := ksTest(vals, dec)
		ac1 := errorAutocorr(vals, dec)
		fmt.Printf("%-8s %12.3f %12.4g %12.2f %12.6f  ks_d=%.4f ks_p=%.3f autocorr=%.3f\n",
			name, ratio, maxErr, psnr, pear, ksD, ksP, ac1)
		printDiffHistogram(vals, dec)
	}
	return nil
}

// ksTest computes the two-sample Kolmogorov-Smirnov statistic and its
// asymptotic p-value by hand — in the generic tool this is one more metric
// plugin name, here it is another block of statistics code the tool must
// carry itself.
func ksTest(orig, dec []float32) (d, p float64) {
	as := make([]float64, len(orig))
	bs := make([]float64, len(dec))
	for i := range orig {
		as[i] = float64(orig[i])
		bs[i] = float64(dec[i])
	}
	sort.Float64s(as)
	sort.Float64s(bs)
	i, j := 0, 0
	na, nb := float64(len(as)), float64(len(bs))
	for i < len(as) && j < len(bs) {
		va, vb := as[i], bs[j]
		if va <= vb {
			i++
		}
		if vb <= va {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	en := math.Sqrt(na * nb / (na + nb))
	lambda := (en + 0.12 + 0.11/en) * d
	if lambda <= 0 {
		return d, 1
	}
	sum, sign := 0.0, 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p = math.Max(0, math.Min(1, 2*sum))
	return d, p
}

// errorAutocorr computes the lag-1 autocorrelation of the pointwise errors.
func errorAutocorr(orig, dec []float32) float64 {
	n := len(orig)
	if n < 3 {
		return 0
	}
	errs := make([]float64, n)
	for i := range orig {
		errs[i] = float64(dec[i]) - float64(orig[i])
	}
	a, b := errs[:n-1], errs[1:]
	m := float64(n - 1)
	var sa, sb, saa, sbb, sab float64
	for i := range a {
		sa += a[i]
		sb += b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
		sab += a[i] * b[i]
	}
	cov := sab - sa*sb/m
	va := saa - sa*sa/m
	vb := sbb - sb*sb/m
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// printDiffHistogram renders a 9-bin histogram of the pointwise
// differences, the hand-rolled equivalent of the diff_pdf metric plugin.
func printDiffHistogram(orig, dec []float32) {
	lo, hi := math.Inf(1), math.Inf(-1)
	diffs := make([]float64, len(orig))
	for i := range orig {
		diffs[i] = float64(dec[i]) - float64(orig[i])
		lo = math.Min(lo, diffs[i])
		hi = math.Max(hi, diffs[i])
	}
	if lo == hi {
		lo, hi = lo-1, hi+1
	}
	const bins = 9
	counts := make([]int, bins)
	width := (hi - lo) / bins
	for _, d := range diffs {
		b := int((d - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	for b, c := range counts {
		bar := ""
		if peak > 0 {
			for k := 0; k < c*30/peak; k++ {
				bar += "#"
			}
		}
		fmt.Printf("         diff[%+.3g, %+.3g): %s\n", lo+float64(b)*width, lo+float64(b+1)*width, bar)
	}
}

func rangeOf(vals []float32) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, float64(v))
		hi = math.Max(hi, float64(v))
	}
	return lo, hi
}

func quality(orig, dec []float32) (maxErr, psnr, pearson float64) {
	n := float64(len(orig))
	var mse, sa, sb, saa, sbb, sab float64
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range orig {
		a, b := float64(orig[i]), float64(dec[i])
		d := math.Abs(a - b)
		if d > maxErr {
			maxErr = d
		}
		mse += d * d
		sa += a
		sb += b
		saa += a * a
		sbb += b * b
		sab += a * b
		lo, hi = math.Min(lo, a), math.Max(hi, a)
	}
	mse /= n
	if mse > 0 && hi > lo {
		psnr = 20*math.Log10(hi-lo) - 10*math.Log10(mse)
	} else {
		psnr = math.Inf(1)
	}
	cov := sab - sa*sb/n
	va := saa - sa*sa/n
	vb := sbb - sb*sb/n
	if va > 0 && vb > 0 {
		pearson = cov / math.Sqrt(va*vb)
	} else {
		pearson = 1
	}
	return maxErr, psnr, pearson
}
