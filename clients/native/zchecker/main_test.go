package main

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestNativeZCheckerSurvey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.bin")
	n := 24 * 24
	buf := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[4*i:],
			math.Float32bits(float32(math.Sin(float64(i)/9)*30)))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "24,24", "sz,zfp,mgard,fpzip", 1e-3); err != nil {
		t.Fatal(err)
	}
	// Unsupported names are reported but do not abort — the brittleness of
	// a per-compressor tool is in its source, not its exit code.
	if err := run(path, "24,24", "tthresh,sz", 1e-3); err != nil {
		t.Fatal(err)
	}
}

func TestNativeZCheckerStats(t *testing.T) {
	orig := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	same := append([]float32(nil), orig...)
	d, p := ksTest(orig, same)
	if d != 0 || p < 0.99 {
		t.Fatalf("identical samples: D=%v p=%v", d, p)
	}
	if ac := errorAutocorr(orig, same); ac != 0 {
		t.Fatalf("zero-error autocorr %v", ac)
	}
	maxErr, psnr, pear := quality(orig, same)
	if maxErr != 0 || !math.IsInf(psnr, 1) || pear != 1 {
		t.Fatalf("identical quality: %v %v %v", maxErr, psnr, pear)
	}
}
