// Command opt-race is the *native* "which compressor is best at this
// bound" tool: the third piece needed to match the generic optimizer's
// feature set (cmd/pressio-opt -search), integrating each compressor by
// hand. Supporting a new compressor means another case in every switch;
// the generic tool gets it for free from the registry.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"pressio/internal/core"
	"pressio/internal/fpzip"
	"pressio/internal/mgard"
	"pressio/internal/sz"
	"pressio/internal/zfp"
)

func main() {
	var (
		input    = flag.String("input", "", "flat binary float32 input")
		dimsFlag = flag.String("dims", "", "dims, slowest first")
		bound    = flag.Float64("bound", 1e-3, "absolute error bound (translated per compressor)")
	)
	flag.Parse()
	if err := run(*input, *dimsFlag, *bound); err != nil {
		fmt.Fprintln(os.Stderr, "opt-race:", err)
		os.Exit(1)
	}
}

func run(input, dimsFlag string, bound float64) error {
	raw, err := os.ReadFile(input)
	if err != nil {
		return err
	}
	var dims []uint64
	for _, p := range strings.Split(dimsFlag, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return fmt.Errorf("bad dims: %v", err)
		}
		dims = append(dims, v)
	}
	vals := make([]float32, len(raw)/4)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}

	type entry struct {
		name  string
		ratio float64
		psnr  float64
	}
	var results []entry
	best := entry{ratio: -1}

	record := func(name string, stream []byte, dec []float32, err error) {
		if err != nil {
			fmt.Printf("%-8s failed: %v\n", name, err)
			return
		}
		e := entry{name: name, ratio: float64(len(raw)) / float64(len(stream))}
		mse := 0.0
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range vals {
			d := float64(vals[i]) - float64(dec[i])
			mse += d * d
			lo = math.Min(lo, float64(vals[i]))
			hi = math.Max(hi, float64(vals[i]))
		}
		mse /= float64(len(vals))
		if mse > 0 && hi > lo {
			e.psnr = 20*math.Log10(hi-lo) - 10*math.Log10(mse)
		} else {
			e.psnr = math.Inf(1)
		}
		results = append(results, e)
		if e.ratio > best.ratio {
			best = e
		}
	}

	// sz: absolute bound maps directly.
	{
		stream, err := sz.CompressSlice(vals, dims, sz.Params{Mode: core.BoundAbs, Bound: bound})
		var dec []float32
		if err == nil {
			dec, _, err = sz.DecompressSlice[float32](stream)
		}
		record("sz", stream, dec, err)
	}
	// zfp: absolute bound is the fixed-accuracy tolerance.
	{
		stream, err := zfp.CompressSlice(vals, dims, zfp.Params{Mode: zfp.ModeFixedAccuracy, Tolerance: bound})
		var dec []float32
		if err == nil {
			dec, _, err = zfp.DecompressSlice[float32](stream)
		}
		record("zfp", stream, dec, err)
	}
	// mgard: absolute bound maps directly, but small dims may be refused.
	{
		stream, err := mgard.CompressSlice(vals, dims, mgard.Params{Mode: core.BoundAbs, Bound: bound})
		var dec []float32
		if err == nil {
			dec, _, err = mgard.DecompressSlice[float32](stream)
		}
		record("mgard", stream, dec, err)
	}
	// fpzip: no bound; pick a precision that should be at least as good.
	{
		prec := uint(32)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			lo = math.Min(lo, float64(v))
			hi = math.Max(hi, float64(v))
		}
		if hi > lo && bound > 0 {
			rel := bound / (hi - lo)
			prec = uint(math.Max(8, math.Min(32, math.Ceil(-math.Log2(rel))+9)))
		}
		stream, err := fpzip.CompressSlice(vals, dims, fpzip.Params{Precision: prec})
		var dec []float32
		if err == nil {
			dec, _, err = fpzip.DecompressSlice[float32](stream)
		}
		record("fpzip", stream, dec, err)
	}

	fmt.Printf("%-8s %10s %10s\n", "comp", "ratio", "psnr")
	for _, e := range results {
		fmt.Printf("%-8s %10.3f %10.2f\n", e.name, e.ratio, e.psnr)
	}
	if best.ratio > 0 {
		fmt.Printf("best=%s\n", best.name)
	}
	return nil
}
