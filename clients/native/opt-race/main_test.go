package main

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestRaceRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.bin")
	n := 32 * 32
	buf := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[4*i:],
			math.Float32bits(float32(math.Cos(float64(i)/11)*20)))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "32,32", 0.01); err != nil {
		t.Fatal(err)
	}
}

func TestRaceMissingInput(t *testing.T) {
	if err := run("/nonexistent", "4", 0.1); err == nil {
		t.Fatal("missing input should fail")
	}
}
