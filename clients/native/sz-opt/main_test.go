package main

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func writeBin(t *testing.T, path string, n int) {
	t.Helper()
	buf := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[4*i:],
			math.Float32bits(float32(math.Sin(float64(i)/20)*50)))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestNativeOptRatioMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.bin")
	writeBin(t, path, 64*64)
	if err := run(path, "64,64", 10, 0, false, 0.1, 32); err != nil {
		t.Fatal(err)
	}
}

func TestNativeOptPSNRMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.bin")
	writeBin(t, path, 64*64)
	if err := run(path, "64,64", 0, 70, false, 0.1, 32); err != nil {
		t.Fatal(err)
	}
}

func TestNativeOptSweepMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.bin")
	writeBin(t, path, 32*32)
	if err := run(path, "32,32", 0, 0, true, 0.1, 32); err != nil {
		t.Fatal(err)
	}
}

func TestNativeOptNoTarget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.bin")
	writeBin(t, path, 16)
	if err := run(path, "16", 0, 0, false, 0.1, 32); err == nil {
		t.Fatal("missing target should fail")
	}
}
