// Package szwriter is a *native* io.Writer/io.Reader adapter ("binding")
// for the sz compressor alone — the Go analogue of the per-compressor
// language bindings Table II counts (zfp_jll, pyzfp, zfp-sys, ...). A
// structurally identical copy exists for zfp in clients/native/zfp-writer;
// the generic clients/pressio/writer package replaces both.
package szwriter

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"pressio/internal/core"
	"pressio/internal/sz"
)

// Writer buffers float32 values and writes one sz-compressed frame on
// Close: [uvarint stream length][sz stream].
type Writer struct {
	dst    io.Writer
	dims   []uint64
	params sz.Params
	vals   []float32
	closed bool
}

// NewWriter adapts dst; dims describes the tensor being streamed.
func NewWriter(dst io.Writer, dims []uint64, mode core.ErrorBoundMode, bound float64) *Writer {
	return &Writer{dst: dst, dims: dims, params: sz.Params{Mode: mode, Bound: bound}}
}

// WriteValues appends values to the pending tensor.
func (w *Writer) WriteValues(vals []float32) error {
	if w.closed {
		return errors.New("szwriter: write after close")
	}
	w.vals = append(w.vals, vals...)
	return nil
}

// Write implements io.Writer over raw little-endian float32 bytes.
func (w *Writer) Write(p []byte) (int, error) {
	if len(p)%4 != 0 {
		return 0, errors.New("szwriter: partial float32 write")
	}
	vals := make([]float32, len(p)/4)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[4*i:]))
	}
	if err := w.WriteValues(vals); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Close compresses the buffered tensor and emits the frame.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	want := uint64(1)
	for _, d := range w.dims {
		want *= d
	}
	if uint64(len(w.vals)) != want {
		return fmt.Errorf("szwriter: wrote %d values, dims %v need %d", len(w.vals), w.dims, want)
	}
	stream, err := sz.CompressSlice(w.vals, w.dims, w.params)
	if err != nil {
		return err
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(len(stream)))
	if _, err := w.dst.Write(hdr); err != nil {
		return err
	}
	_, err = w.dst.Write(stream)
	return err
}

// ReadFrame decodes one frame produced by Writer.
func ReadFrame(r io.ByteReader, body io.Reader) ([]float32, []uint64, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, nil, err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(body, buf); err != nil {
		return nil, nil, err
	}
	return sz.DecompressSlice[float32](buf)
}
