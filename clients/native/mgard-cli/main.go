// Command mgard-cli is the *native* command line interface for the
// mgard-family multilevel compressor only — the third reimplementation of
// the same workflow counted by Table II.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"pressio/internal/core"
	"pressio/internal/mgard"
)

func main() {
	var (
		mode      = flag.String("mode", "roundtrip", "compress, decompress, or roundtrip")
		input     = flag.String("input", "", "input file (flat binary)")
		output    = flag.String("output", "", "output file")
		dimsFlag  = flag.String("dims", "", "comma separated dims, slowest first (all >= 3)")
		dtypeFlag = flag.String("dtype", "float32", "float32 or float64")
		boundMode = flag.String("error-bound-mode", "abs", "abs or rel")
		tolerance = flag.Float64("tolerance", 1e-3, "error tolerance")
		lossless  = flag.Int("lossless-level", 0, "DEFLATE effort for the backend")
	)
	flag.Parse()
	if err := run(*mode, *input, *output, *dimsFlag, *dtypeFlag, *boundMode,
		*tolerance, *lossless); err != nil {
		fmt.Fprintln(os.Stderr, "mgard-cli:", err)
		os.Exit(1)
	}
}

func run(mode, input, output, dimsFlag, dtypeFlag, boundMode string,
	tolerance float64, lossless int) error {
	var bm core.ErrorBoundMode
	switch boundMode {
	case "abs":
		bm = core.BoundAbs
	case "rel":
		bm = core.BoundValueRangeRel
	default:
		return fmt.Errorf("unknown error bound mode %q", boundMode)
	}
	params := mgard.Params{Mode: bm, Bound: tolerance, LosslessLevel: lossless}

	switch mode {
	case "compress", "roundtrip":
		raw, err := os.ReadFile(input)
		if err != nil {
			return err
		}
		dims, err := parseDims(dimsFlag)
		if err != nil {
			return err
		}
		stream, err := compressRaw(raw, dims, dtypeFlag, params)
		if err != nil {
			return err
		}
		if mode == "compress" {
			if output != "" {
				if err := os.WriteFile(output, stream, 0o644); err != nil {
					return err
				}
			}
			fmt.Printf("compression_ratio=%f\n", float64(len(raw))/float64(len(stream)))
			return nil
		}
		dec, err := decompressRaw(stream, dtypeFlag)
		if err != nil {
			return err
		}
		printQuality(raw, dec, dtypeFlag, len(stream))
		if output != "" {
			return os.WriteFile(output, dec, 0o644)
		}
	case "decompress":
		stream, err := os.ReadFile(input)
		if err != nil {
			return err
		}
		raw, err := decompressRaw(stream, dtypeFlag)
		if err != nil {
			return err
		}
		if output != "" {
			return os.WriteFile(output, raw, 0o644)
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

func parseDims(s string) ([]uint64, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -dims")
	}
	var dims []uint64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad dims %q: %v", s, err)
		}
		if v < 3 {
			return nil, fmt.Errorf("mgard requires at least 3 points per dimension, got %d", v)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func compressRaw(raw []byte, dims []uint64, dtype string, p mgard.Params) ([]byte, error) {
	switch dtype {
	case "float32":
		return mgard.CompressSlice(bytesToF32(raw), dims, p)
	case "float64":
		return mgard.CompressSlice(bytesToF64(raw), dims, p)
	default:
		return nil, fmt.Errorf("mgard-cli supports float32/float64, got %q", dtype)
	}
}

func decompressRaw(stream []byte, dtype string) ([]byte, error) {
	switch dtype {
	case "float32":
		vals, _, err := mgard.DecompressSlice[float32](stream)
		if err != nil {
			return nil, err
		}
		return f32ToBytes(vals), nil
	case "float64":
		vals, _, err := mgard.DecompressSlice[float64](stream)
		if err != nil {
			return nil, err
		}
		return f64ToBytes(vals), nil
	default:
		return nil, fmt.Errorf("mgard-cli supports float32/float64, got %q", dtype)
	}
}

func printQuality(orig, dec []byte, dtype string, compressedLen int) {
	var a, b []float64
	if dtype == "float32" {
		for _, v := range bytesToF32(orig) {
			a = append(a, float64(v))
		}
		for _, v := range bytesToF32(dec) {
			b = append(b, float64(v))
		}
	} else {
		a = bytesToF64(orig)
		b = bytesToF64(dec)
	}
	maxErr, mse := 0.0, 0.0
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > maxErr {
			maxErr = d
		}
		mse += d * d
		lo, hi = math.Min(lo, a[i]), math.Max(hi, a[i])
	}
	mse /= float64(len(a))
	fmt.Printf("compression_ratio=%f\n", float64(len(orig))/float64(compressedLen))
	fmt.Printf("max_abs_error=%g\n", maxErr)
	if mse > 0 && hi > lo {
		fmt.Printf("psnr=%f\n", 20*math.Log10(hi-lo)-10*math.Log10(mse))
	}
}

func bytesToF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func f32ToBytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

func bytesToF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func f64ToBytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}
