package main

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func writeBin(t *testing.T, path string, n int) []float32 {
	t.Helper()
	vals := make([]float32, n)
	buf := make([]byte, 4*n)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) / 12))
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(vals[i]))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestNativeCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	out := filepath.Join(dir, "x.out")
	vals := writeBin(t, in, 32*32)
	if err := run("roundtrip", in, out, "32,32", "float32", "abs", 0.01, 0); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		got := math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		if math.Abs(float64(got-vals[i])) > 0.01 {
			t.Fatalf("elem %d bound violated", i)
		}
	}
}

func TestNativeCLIMinDims(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	writeBin(t, in, 4)
	// The CLI surfaces mgard's >= 3 points-per-dim restriction at parse time.
	if err := run("roundtrip", in, "", "2,2", "float32", "abs", 0.1, 0); err == nil {
		t.Fatal("dims < 3 should fail")
	}
}
