package main

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func writeBin(t *testing.T, path string, n int) []float32 {
	t.Helper()
	vals := make([]float32, n)
	buf := make([]byte, 4*n)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) / 12))
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(vals[i]))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestNativeCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	out := filepath.Join(dir, "x.out")
	vals := writeBin(t, in, 32*32)
	if err := run("roundtrip", in, out, "32,32", "float32", "abs", 0.01, 65536, 0, 0); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		got := math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		if math.Abs(float64(got-vals[i])) > 0.01 {
			t.Fatalf("elem %d bound violated", i)
		}
	}
}

func TestNativeCLICompressDecompress(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	comp := filepath.Join(dir, "x.sz")
	out := filepath.Join(dir, "x.out")
	writeBin(t, in, 24*24)
	if err := run("compress", in, comp, "24,24", "float32", "rel", 1e-3, 65536, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("decompress", comp, out, "", "float32", "rel", 1e-3, 65536, 0, 0); err != nil {
		t.Fatal(err)
	}
	oi, err := os.Stat(out)
	if err != nil || oi.Size() != 4*24*24 {
		t.Fatalf("output %v err %v", oi, err)
	}
}

func TestNativeCLIParallelVariant(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	writeBin(t, in, 16*64)
	if err := run("roundtrip", in, "", "16,64", "float32", "abs", 0.05, 65536, 0, 4); err != nil {
		t.Fatal(err)
	}
}

func TestNativeCLIErrors(t *testing.T) {
	if err := run("compress", "/missing", "", "4", "float32", "abs", 0.1, 65536, 0, 0); err == nil {
		t.Fatal("missing input should fail")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	writeBin(t, in, 8)
	if err := run("compress", in, "", "8", "float32", "psnr", 0.1, 65536, 0, 0); err == nil {
		t.Fatal("unknown bound mode should fail")
	}
	if err := run("compress", in, "", "8", "int32", "abs", 0.1, 65536, 0, 0); err == nil {
		t.Fatal("unsupported dtype should fail")
	}
}
