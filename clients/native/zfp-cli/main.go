// Command zfp-cli is the *native* command line interface for the
// zfp-family compressor only. Note how little it shares with sz-cli even
// though both do the same job: the mode vocabulary (rate/precision/
// accuracy instead of abs/rel bounds), the parameter plumbing and the IO
// handling are all reimplemented — the duplication Table II quantifies.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"pressio/internal/zfp"
)

func main() {
	var (
		mode      = flag.String("mode", "roundtrip", "compress, decompress, or roundtrip")
		input     = flag.String("input", "", "input file (flat binary)")
		output    = flag.String("output", "", "output file")
		dimsFlag  = flag.String("dims", "", "comma separated dims, slowest first")
		dtypeFlag = flag.String("dtype", "float32", "float32 or float64")
		zfpMode   = flag.String("zfp-mode", "accuracy", "accuracy, rate, or precision")
		tolerance = flag.Float64("tolerance", 1e-3, "absolute error tolerance (accuracy mode)")
		rate      = flag.Float64("rate", 16, "bits per value (rate mode)")
		precision = flag.Uint("precision", 32, "bit planes (precision mode)")
	)
	flag.Parse()
	if err := run(*mode, *input, *output, *dimsFlag, *dtypeFlag, *zfpMode,
		*tolerance, *rate, *precision); err != nil {
		fmt.Fprintln(os.Stderr, "zfp-cli:", err)
		os.Exit(1)
	}
}

func parseDims(s string) ([]uint64, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -dims")
	}
	var dims []uint64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad dims %q: %v", s, err)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func buildParams(mode string, tolerance, rate float64, precision uint) (zfp.Params, error) {
	switch mode {
	case "accuracy":
		return zfp.Params{Mode: zfp.ModeFixedAccuracy, Tolerance: tolerance}, nil
	case "rate":
		return zfp.Params{Mode: zfp.ModeFixedRate, Rate: rate}, nil
	case "precision":
		return zfp.Params{Mode: zfp.ModeFixedPrecision, Precision: precision}, nil
	default:
		return zfp.Params{}, fmt.Errorf("unknown zfp mode %q", mode)
	}
}

func run(mode, input, output, dimsFlag, dtypeFlag, zfpMode string,
	tolerance, rate float64, precision uint) error {
	params, err := buildParams(zfpMode, tolerance, rate, precision)
	if err != nil {
		return err
	}
	switch mode {
	case "compress":
		raw, err := os.ReadFile(input)
		if err != nil {
			return err
		}
		dims, err := parseDims(dimsFlag)
		if err != nil {
			return err
		}
		stream, err := compressRaw(raw, dims, dtypeFlag, params)
		if err != nil {
			return err
		}
		if output != "" {
			if err := os.WriteFile(output, stream, 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("compression_ratio=%f\n", float64(len(raw))/float64(len(stream)))
	case "decompress":
		stream, err := os.ReadFile(input)
		if err != nil {
			return err
		}
		raw, err := decompressRaw(stream, dtypeFlag)
		if err != nil {
			return err
		}
		if output != "" {
			if err := os.WriteFile(output, raw, 0o644); err != nil {
				return err
			}
		}
	case "roundtrip":
		raw, err := os.ReadFile(input)
		if err != nil {
			return err
		}
		dims, err := parseDims(dimsFlag)
		if err != nil {
			return err
		}
		stream, err := compressRaw(raw, dims, dtypeFlag, params)
		if err != nil {
			return err
		}
		dec, err := decompressRaw(stream, dtypeFlag)
		if err != nil {
			return err
		}
		printQuality(raw, dec, dtypeFlag, len(stream))
		if output != "" {
			if err := os.WriteFile(output, dec, 0o644); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

func compressRaw(raw []byte, dims []uint64, dtype string, p zfp.Params) ([]byte, error) {
	switch dtype {
	case "float32":
		return zfp.CompressSlice(bytesToF32(raw), dims, p)
	case "float64":
		return zfp.CompressSlice(bytesToF64(raw), dims, p)
	default:
		return nil, fmt.Errorf("zfp-cli supports float32/float64, got %q", dtype)
	}
}

func decompressRaw(stream []byte, dtype string) ([]byte, error) {
	switch dtype {
	case "float32":
		vals, _, err := zfp.DecompressSlice[float32](stream)
		if err != nil {
			return nil, err
		}
		return f32ToBytes(vals), nil
	case "float64":
		vals, _, err := zfp.DecompressSlice[float64](stream)
		if err != nil {
			return nil, err
		}
		return f64ToBytes(vals), nil
	default:
		return nil, fmt.Errorf("zfp-cli supports float32/float64, got %q", dtype)
	}
}

func printQuality(orig, dec []byte, dtype string, compressedLen int) {
	var a, b []float64
	if dtype == "float32" {
		for _, v := range bytesToF32(orig) {
			a = append(a, float64(v))
		}
		for _, v := range bytesToF32(dec) {
			b = append(b, float64(v))
		}
	} else {
		a = bytesToF64(orig)
		b = bytesToF64(dec)
	}
	maxErr, mse := 0.0, 0.0
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > maxErr {
			maxErr = d
		}
		mse += d * d
		lo, hi = math.Min(lo, a[i]), math.Max(hi, a[i])
	}
	mse /= float64(len(a))
	fmt.Printf("compression_ratio=%f\n", float64(len(orig))/float64(compressedLen))
	fmt.Printf("max_abs_error=%g\n", maxErr)
	if mse > 0 && hi > lo {
		fmt.Printf("psnr=%f\n", 20*math.Log10(hi-lo)-10*math.Log10(mse))
	}
}

func bytesToF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func f32ToBytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

func bytesToF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func f64ToBytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}
