package main

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func writeBin(t *testing.T, path string, n int) []float32 {
	t.Helper()
	vals := make([]float32, n)
	buf := make([]byte, 4*n)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) / 12))
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(vals[i]))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestNativeCLIAccuracyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	out := filepath.Join(dir, "x.out")
	vals := writeBin(t, in, 32*32)
	if err := run("roundtrip", in, out, "32,32", "float32", "accuracy", 0.01, 16, 32); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		got := math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		if math.Abs(float64(got-vals[i])) > 0.01 {
			t.Fatalf("elem %d bound violated", i)
		}
	}
}

func TestNativeCLIRateAndPrecisionModes(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	writeBin(t, in, 16*16)
	if err := run("roundtrip", in, "", "16,16", "float32", "rate", 0, 8, 32); err != nil {
		t.Fatal(err)
	}
	if err := run("roundtrip", in, "", "16,16", "float32", "precision", 0, 16, 20); err != nil {
		t.Fatal(err)
	}
	if err := run("roundtrip", in, "", "16,16", "float32", "psnr", 0, 16, 20); err == nil {
		t.Fatal("unknown zfp mode should fail")
	}
}
