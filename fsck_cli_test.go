// CLI contract tests for pressio-fsck: scripts (and the store smoke test)
// depend on its exit codes, so they are pinned here across a real process
// boundary — 0 clean, 1 problems found, 2 usage or operational error.
package pressio

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"pressio/internal/core"
	"pressio/internal/store"
)

var (
	fsckOnce sync.Once
	fsckBin  string
	fsckErr  string
)

func buildFsck(t *testing.T) string {
	t.Helper()
	fsckOnce.Do(func() {
		dir, err := os.MkdirTemp("", "pressio-fsck")
		if err != nil {
			fsckErr = err.Error()
			return
		}
		bin := filepath.Join(dir, "pressio-fsck")
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/pressio-fsck").CombinedOutput()
		if err != nil {
			fsckErr = string(out)
			return
		}
		fsckBin = bin
	})
	if fsckBin == "" {
		t.Skipf("go build unavailable: %s", fsckErr)
	}
	return fsckBin
}

func runFsck(t *testing.T, args ...string) (int, string) {
	t.Helper()
	out, err := exec.Command(buildFsck(t), args...).CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("pressio-fsck did not run: %v\n%s", err, out)
	}
	return exitErr.ExitCode(), string(out)
}

func TestFsckCLIExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	dir := t.TempDir()

	// Build a small store: one uncompressed object whose payload bytes are
	// recognizable on disk.
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 32)
	for i := range vals {
		vals[i] = float64(i) + 0.25
	}
	data := core.FromFloat64s(vals, uint64(len(vals)))
	info, err := s.Put("cli/victim", data, store.PutOptions{ChunkRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint so the journaled payloads are gone: later damage is then
	// not rebuildable and repair must quarantine rather than restore.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Exit 0: a clean store, and -json emits a parseable typed report.
	code, out := runFsck(t, "-json", dir)
	if code != 0 {
		t.Fatalf("clean store: exit %d\n%s", code, out)
	}
	var rep store.FsckReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output not a FsckReport: %v\n%s", err, out)
	}
	if rep.Objects != 1 || len(rep.CorruptChunks) != 0 {
		t.Fatalf("clean report: %+v", rep)
	}

	// Exit 2: usage error (no directory) and operational error (not a dir).
	if code, _ := runFsck(t); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code, _ := runFsck(t, filepath.Join(dir, "no/such/store")); code != 2 {
		t.Fatalf("missing dir: exit %d, want 2", code)
	}

	// Exit 1: flip one payload byte (the object is uncompressed, so its raw
	// bytes appear verbatim in the segment) and check mode must object.
	segPath := filepath.Join(dir, "objects", info.Segment)
	disk, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	off := bytes.Index(disk, data.Bytes()[:64])
	if off < 0 {
		t.Fatal("payload bytes not found in segment")
	}
	disk[off+3] ^= 0x10
	if err := os.WriteFile(segPath, disk, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out = runFsck(t, dir)
	if code != 1 {
		t.Fatalf("corrupt store: exit %d\n%s", code, out)
	}

	// Repair quarantines the damage and leaves a consistent store: exit 0,
	// and a follow-up check agrees.
	code, out = runFsck(t, "-repair", dir)
	if code != 0 {
		t.Fatalf("repair: exit %d\n%s", code, out)
	}
	code, out = runFsck(t, "-json", dir)
	if code != 0 {
		t.Fatalf("post-repair check: exit %d\n%s", code, out)
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.AlreadyQuarantined != 1 {
		t.Fatalf("post-repair report should show 1 quarantined chunk: %+v", rep)
	}
}
