GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-2 gate: vet + race tests on the concurrency-sensitive packages +
# the disabled-tracing overhead benchmark. See scripts/check.sh.
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./...
