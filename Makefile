GO ?= go

.PHONY: build test lint lint-baseline check bench ledger ledger-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static analysis: pressiolint enforces the plugin invariants (option-key
# constants, init-time registration, thread-safety honesty, handled errors,
# deterministic codecs), the flow-sensitive rules (lock pairing, buffer
# ownership, option/type consistency, error-path write ordering), the
# interprocedural rules (goroutine leaks, request-context flow, locks held
# across blocking operations, hot-path allocations), and the taint rules
# over untrusted decode input (decompression bombs, unbounded spins, wild
# indexing). Use `-json` or `-sarif` for machine-readable output,
# `-baseline lint-baseline.sarif` to gate on new findings only. See
# docs/STATIC_ANALYSIS.md.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/pressiolint ./...

# Re-record the committed SARIF baseline after fixing or waiving findings:
# `-baseline` runs then gate on new findings only and warn (without failing)
# when entries here go stale.
lint-baseline:
	$(GO) run ./cmd/pressiolint -sarif ./... > lint-baseline.sarif || true

# Tier-2 gate: vet + pressiolint + race tests on the concurrency-sensitive
# packages + the disabled-tracing overhead benchmark. See scripts/check.sh.
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./...

# Perf ledger: `make ledger` records a full BENCH_<date>.json on this
# machine (commit it to move the regression baseline); `make ledger-check`
# gates a quick fresh measurement against the most recent committed one.
# See docs/OBSERVABILITY.md.
ledger:
	sh scripts/perf-ledger.sh record

ledger-check:
	sh scripts/perf-ledger.sh check --quick
